//! Compressed Sparse Row (CSR) storage.
//!
//! The paper (Section 3): "A related scheme is the Compressed Sparse Row
//! (CSR) format, in which the roles of rows and columns are reversed" —
//! i.e. for an `n x n` matrix with `nz` non-zeros, CSR stores
//!
//! * `a(nz)`   — the non-zero values in row order (here [`CsrMatrix::values`]),
//! * `col(nz)` — the column number of each value ([`CsrMatrix::col_idx`]),
//! * `row(n+1)` — pointers to the first entry of each row
//!   ([`CsrMatrix::row_ptr`]); the paper's code iterates
//!   `DO i = row(j), row(j+1)-1`.

use crate::coo::CooMatrix;
use crate::dense::DenseMatrix;
use crate::error::SparseError;
use serde::{Deserialize, Serialize};

/// Compressed Sparse Row matrix.
///
/// ```
/// use hpf_sparse::{gen, CsrMatrix};
///
/// let a = gen::poisson_2d(4, 4); // 16x16, 5-point stencil
/// assert_eq!(a.n_rows(), 16);
/// assert_eq!(a.get(0, 0), 4.0);
/// let q = a.matvec(&vec![1.0; 16]).unwrap();
/// // Row sums of the Laplacian vanish in the interior.
/// assert_eq!(q[5], 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    /// `row` in the paper: `row_ptr[i]..row_ptr[i+1]` spans row `i`.
    row_ptr: Vec<usize>,
    /// `col` in the paper: the column of each stored value.
    col_idx: Vec<usize>,
    /// `a` in the paper: the stored values, row by row.
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build directly from raw arrays, validating the invariants.
    pub fn from_raw(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self, SparseError> {
        if row_ptr.len() != n_rows + 1 {
            return Err(SparseError::MalformedPointer(format!(
                "row_ptr has length {}, expected {}",
                row_ptr.len(),
                n_rows + 1
            )));
        }
        if row_ptr[0] != 0 {
            return Err(SparseError::MalformedPointer(
                "row_ptr[0] must be 0".to_string(),
            ));
        }
        if *row_ptr.last().unwrap() != values.len() {
            return Err(SparseError::MalformedPointer(format!(
                "row_ptr[n] = {} but there are {} values",
                row_ptr.last().unwrap(),
                values.len()
            )));
        }
        if col_idx.len() != values.len() {
            return Err(SparseError::DimensionMismatch(format!(
                "col_idx has {} entries, values has {}",
                col_idx.len(),
                values.len()
            )));
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(SparseError::MalformedPointer(
                "row_ptr must be non-decreasing".to_string(),
            ));
        }
        for &c in &col_idx {
            if c >= n_cols {
                return Err(SparseError::IndexOutOfBounds {
                    what: "col",
                    index: c,
                    bound: n_cols,
                });
            }
        }
        Ok(CsrMatrix {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Build from COO, sorting row-major and summing duplicates.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let mut entries = coo.entries().to_vec();
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let n_rows = coo.n_rows();
        let mut row_ptr = vec![0usize; n_rows + 1];
        let mut col_idx = Vec::with_capacity(entries.len());
        let mut values: Vec<f64> = Vec::with_capacity(entries.len());
        let mut prev: Option<(usize, usize)> = None;
        for (r, c, v) in entries {
            if prev == Some((r, c)) {
                // Duplicate coordinate: accumulate.
                *values.last_mut().unwrap() += v;
            } else {
                col_idx.push(c);
                values.push(v);
                row_ptr[r + 1] = col_idx.len();
                prev = Some((r, c));
            }
        }
        // Rows with no entries inherit the previous pointer.
        for i in 1..=n_rows {
            if row_ptr[i] < row_ptr[i - 1] {
                row_ptr[i] = row_ptr[i - 1];
            }
        }
        CsrMatrix {
            n_rows,
            n_cols: coo.n_cols(),
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Build from a dense matrix.
    pub fn from_dense(d: &DenseMatrix) -> Self {
        Self::from_coo(&CooMatrix::from_dense(d))
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    pub fn is_square(&self) -> bool {
        self.n_rows == self.n_cols
    }

    /// The paper's `row(n+1)` pointer array.
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The paper's `col(nz)` index array.
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// The paper's `a(nz)` value array.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// (column, value) pairs of row `i`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let span = self.row_ptr[i]..self.row_ptr[i + 1];
        self.col_idx[span.clone()]
            .iter()
            .copied()
            .zip(self.values[span].iter().copied())
    }

    /// Number of stored entries in row `i`.
    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Value at `(i, j)` (zero if not stored).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.row(i).find(|&(c, _)| c == j).map_or(0.0, |(_, v)| v)
    }

    /// Serial CSR matvec `q = A p` — the paper's Figure 2 inner kernel:
    ///
    /// ```fortran
    /// FORALL( j=1:n )
    ///   DO i = row(j), row(j+1)-1
    ///     q(j) = q(j) + a(i) * p(col(i))
    /// ```
    pub fn matvec(&self, p: &[f64]) -> Result<Vec<f64>, SparseError> {
        if p.len() != self.n_cols {
            return Err(SparseError::DimensionMismatch(format!(
                "matvec: x has {} entries, matrix has {} columns",
                p.len(),
                self.n_cols
            )));
        }
        let mut q = vec![0.0; self.n_rows];
        for j in 0..self.n_rows {
            let mut acc = 0.0;
            for k in self.row_ptr[j]..self.row_ptr[j + 1] {
                acc += self.values[k] * p[self.col_idx[k]];
            }
            q[j] = acc;
        }
        Ok(q)
    }

    /// `q = Aᵀ p` without forming the transpose (scatter order; this is
    /// the access pattern that, per Section 2.1, negates row-layout
    /// optimisations for BiCG).
    pub fn matvec_transpose(&self, p: &[f64]) -> Result<Vec<f64>, SparseError> {
        if p.len() != self.n_rows {
            return Err(SparseError::DimensionMismatch(format!(
                "matvec_transpose: x has {} entries, matrix has {} rows",
                p.len(),
                self.n_rows
            )));
        }
        let mut q = vec![0.0; self.n_cols];
        for i in 0..self.n_rows {
            let pi = p[i];
            if pi == 0.0 {
                continue;
            }
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                q[self.col_idx[k]] += self.values[k] * pi;
            }
        }
        Ok(q)
    }

    /// Explicit transpose (CSR of Aᵀ).
    pub fn transpose(&self) -> CsrMatrix {
        Self::from_coo(&self.to_coo().transpose())
    }

    /// Convert to COO.
    pub fn to_coo(&self) -> CooMatrix {
        let mut coo = CooMatrix::new(self.n_rows, self.n_cols);
        for i in 0..self.n_rows {
            for (c, v) in self.row(i) {
                coo.push(i, c, v)
                    .expect("indices validated at construction");
            }
        }
        coo
    }

    /// Convert to dense.
    pub fn to_dense(&self) -> DenseMatrix {
        self.to_coo().to_dense()
    }

    /// Extract the main diagonal (length `min(n_rows, n_cols)`).
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.n_rows.min(self.n_cols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// Symmetry check within absolute tolerance.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.n_rows {
            for (j, v) in self.row(i) {
                if (v - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Scale all values by `s`.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.values {
            *v *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 6x6 example of the paper's Figure 1.
    pub fn figure1_matrix() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            vec![11.0, 12.0, 0.0, 0.0, 15.0, 0.0],
            vec![21.0, 22.0, 0.0, 24.0, 0.0, 26.0],
            vec![31.0, 0.0, 33.0, 0.0, 0.0, 0.0],
            vec![0.0, 42.0, 0.0, 44.0, 0.0, 0.0],
            vec![51.0, 0.0, 0.0, 0.0, 55.0, 0.0],
            vec![0.0, 62.0, 0.0, 0.0, 0.0, 66.0],
        ])
        .unwrap()
    }

    #[test]
    fn figure1_roundtrip() {
        let d = figure1_matrix();
        let csr = CsrMatrix::from_dense(&d);
        assert_eq!(csr.nnz(), 15);
        assert_eq!(csr.to_dense(), d);
        assert_eq!(csr.get(1, 3), 24.0);
        assert_eq!(csr.get(0, 3), 0.0);
    }

    #[test]
    fn row_ptr_shape() {
        let csr = CsrMatrix::from_dense(&figure1_matrix());
        assert_eq!(csr.row_ptr().len(), 7);
        assert_eq!(csr.row_ptr()[0], 0);
        assert_eq!(*csr.row_ptr().last().unwrap(), 15);
        assert_eq!(csr.row_nnz(0), 3);
        assert_eq!(csr.row_nnz(1), 4);
    }

    #[test]
    fn matvec_matches_dense() {
        let d = figure1_matrix();
        let csr = CsrMatrix::from_dense(&d);
        let x: Vec<f64> = (1..=6).map(|i| i as f64).collect();
        let want = d.matvec(&x).unwrap();
        let got = csr.matvec(&x).unwrap();
        for (a, b) in want.iter().zip(got.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn matvec_transpose_matches_dense() {
        let d = figure1_matrix();
        let csr = CsrMatrix::from_dense(&d);
        let x: Vec<f64> = (1..=6).map(|i| (i as f64).sqrt()).collect();
        let want = d.matvec_transpose(&x).unwrap();
        let got = csr.matvec_transpose(&x).unwrap();
        for (a, b) in want.iter().zip(got.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_explicit_matches() {
        let csr = CsrMatrix::from_dense(&figure1_matrix());
        let t = csr.transpose();
        assert_eq!(t.to_dense(), figure1_matrix().transpose());
    }

    #[test]
    fn empty_rows_ok() {
        let coo = CooMatrix::from_triplets(4, 4, vec![(0, 0, 1.0), (3, 3, 2.0)]).unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        assert_eq!(csr.row_nnz(1), 0);
        assert_eq!(csr.row_nnz(2), 0);
        assert_eq!(csr.matvec(&[1.0; 4]).unwrap(), vec![1.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn from_raw_validation() {
        // Good.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]).is_ok());
        // Bad pointer length.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 2], vec![0, 1], vec![1.0, 2.0]).is_err());
        // First pointer nonzero.
        assert!(CsrMatrix::from_raw(2, 2, vec![1, 1, 2], vec![0, 1], vec![1.0, 2.0]).is_err());
        // Decreasing pointer.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
        // Column out of range.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 2], vec![1.0, 2.0]).is_err());
        // Endpoint mismatch.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 3], vec![0, 1], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn symmetry_and_diagonal() {
        let d = DenseMatrix::from_rows(&[
            vec![4.0, 1.0, 0.0],
            vec![1.0, 5.0, 2.0],
            vec![0.0, 2.0, 6.0],
        ])
        .unwrap();
        let csr = CsrMatrix::from_dense(&d);
        assert!(csr.is_symmetric(0.0));
        assert_eq!(csr.diagonal(), vec![4.0, 5.0, 6.0]);
        let mut a = csr.clone();
        a.scale(2.0);
        assert_eq!(a.get(1, 2), 4.0);
    }

    #[test]
    fn duplicate_coo_entries_summed() {
        let coo = CooMatrix::from_triplets_summing(2, 2, vec![(0, 1, 1.0), (0, 1, 2.0)]).unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        assert_eq!(csr.get(0, 1), 3.0);
        assert_eq!(csr.nnz(), 1);
    }
}
