//! Coordinate (triplet) sparse format — the assembly format.
//!
//! COO is the natural target of matrix generators and file readers; it is
//! converted to CSR/CSC (the paper's two storage schemes, Section 3) for
//! computation.

use crate::dense::DenseMatrix;
use crate::error::SparseError;
use serde::{Deserialize, Serialize};

/// One (row, column, value) triplet.
pub type Triplet = (usize, usize, f64);

/// Coordinate-format sparse matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CooMatrix {
    n_rows: usize,
    n_cols: usize,
    entries: Vec<Triplet>,
}

impl CooMatrix {
    /// Empty matrix of the given shape.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        CooMatrix {
            n_rows,
            n_cols,
            entries: Vec::new(),
        }
    }

    /// Build from triplets, validating indices. Duplicate coordinates are
    /// rejected (use [`CooMatrix::from_triplets_summing`] to accumulate).
    pub fn from_triplets(
        n_rows: usize,
        n_cols: usize,
        triplets: Vec<Triplet>,
    ) -> Result<Self, SparseError> {
        let mut m = CooMatrix::new(n_rows, n_cols);
        for (r, c, v) in triplets {
            m.push(r, c, v)?;
        }
        let mut seen: Vec<(usize, usize)> = m.entries.iter().map(|&(r, c, _)| (r, c)).collect();
        seen.sort_unstable();
        for w in seen.windows(2) {
            if w[0] == w[1] {
                return Err(SparseError::DuplicateEntry {
                    row: w[0].0,
                    col: w[0].1,
                });
            }
        }
        Ok(m)
    }

    /// Build from triplets, summing duplicate coordinates (finite-element
    /// style assembly).
    pub fn from_triplets_summing(
        n_rows: usize,
        n_cols: usize,
        mut triplets: Vec<Triplet>,
    ) -> Result<Self, SparseError> {
        for &(r, c, _) in &triplets {
            Self::check_bounds(n_rows, n_cols, r, c)?;
        }
        triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut entries: Vec<Triplet> = Vec::with_capacity(triplets.len());
        for (r, c, v) in triplets {
            match entries.last_mut() {
                Some(&mut (lr, lc, ref mut lv)) if lr == r && lc == c => *lv += v,
                _ => entries.push((r, c, v)),
            }
        }
        Ok(CooMatrix {
            n_rows,
            n_cols,
            entries,
        })
    }

    fn check_bounds(n_rows: usize, n_cols: usize, r: usize, c: usize) -> Result<(), SparseError> {
        if r >= n_rows {
            return Err(SparseError::IndexOutOfBounds {
                what: "row",
                index: r,
                bound: n_rows,
            });
        }
        if c >= n_cols {
            return Err(SparseError::IndexOutOfBounds {
                what: "col",
                index: c,
                bound: n_cols,
            });
        }
        Ok(())
    }

    /// Append one entry (no duplicate check).
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<(), SparseError> {
        Self::check_bounds(self.n_rows, self.n_cols, row, col)?;
        self.entries.push((row, col, value));
        Ok(())
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    pub fn entries(&self) -> &[Triplet] {
        &self.entries
    }

    /// Drop explicit zeros.
    pub fn prune_zeros(&mut self) {
        self.entries.retain(|&(_, _, v)| v != 0.0);
    }

    /// Sort entries row-major (row, then column) in place.
    pub fn sort_row_major(&mut self) {
        self.entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
    }

    /// Sort entries column-major (column, then row) in place.
    pub fn sort_col_major(&mut self) {
        self.entries.sort_unstable_by_key(|&(r, c, _)| (c, r));
    }

    /// Convert to a dense matrix (summing duplicates).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.n_rows, self.n_cols);
        for &(r, c, v) in &self.entries {
            d[(r, c)] += v;
        }
        d
    }

    /// Build from a dense matrix, keeping non-zero entries.
    pub fn from_dense(d: &DenseMatrix) -> Self {
        let mut m = CooMatrix::new(d.n_rows(), d.n_cols());
        for i in 0..d.n_rows() {
            for (j, &v) in d.row(i).iter().enumerate() {
                if v != 0.0 {
                    m.entries.push((i, j, v));
                }
            }
        }
        m
    }

    /// Transpose (swap row/column of every entry).
    pub fn transpose(&self) -> CooMatrix {
        CooMatrix {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            entries: self.entries.iter().map(|&(r, c, v)| (c, r, v)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_validates_bounds() {
        let mut m = CooMatrix::new(2, 2);
        assert!(m.push(0, 0, 1.0).is_ok());
        assert!(matches!(
            m.push(2, 0, 1.0),
            Err(SparseError::IndexOutOfBounds { what: "row", .. })
        ));
        assert!(matches!(
            m.push(0, 5, 1.0),
            Err(SparseError::IndexOutOfBounds { what: "col", .. })
        ));
    }

    #[test]
    fn duplicates_rejected() {
        let err = CooMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, 2.0)]).unwrap_err();
        assert_eq!(err, SparseError::DuplicateEntry { row: 0, col: 0 });
    }

    #[test]
    fn duplicates_summed_when_asked() {
        let m = CooMatrix::from_triplets_summing(2, 2, vec![(0, 0, 1.0), (0, 0, 2.0), (1, 1, 5.0)])
            .unwrap();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.to_dense()[(0, 0)], 3.0);
    }

    #[test]
    fn dense_roundtrip() {
        let d = DenseMatrix::from_rows(&[vec![0.0, 1.5], vec![2.5, 0.0]]).unwrap();
        let coo = CooMatrix::from_dense(&d);
        assert_eq!(coo.nnz(), 2);
        assert_eq!(coo.to_dense(), d);
    }

    #[test]
    fn transpose_swaps_shape() {
        let m = CooMatrix::from_triplets(2, 3, vec![(0, 2, 7.0)]).unwrap();
        let t = m.transpose();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.entries()[0], (2, 0, 7.0));
    }

    #[test]
    fn prune_zeros_removes_explicit_zeros() {
        let mut m = CooMatrix::from_triplets(2, 2, vec![(0, 0, 0.0), (1, 1, 1.0)]).unwrap();
        m.prune_zeros();
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn sorting_orders() {
        let mut m =
            CooMatrix::from_triplets(2, 2, vec![(1, 0, 1.0), (0, 1, 2.0), (0, 0, 3.0)]).unwrap();
        m.sort_row_major();
        assert_eq!(
            m.entries()
                .iter()
                .map(|&(r, c, _)| (r, c))
                .collect::<Vec<_>>(),
            vec![(0, 0), (0, 1), (1, 0)]
        );
        m.sort_col_major();
        assert_eq!(
            m.entries()
                .iter()
                .map(|&(r, c, _)| (r, c))
                .collect::<Vec<_>>(),
            vec![(0, 0), (1, 0), (0, 1)]
        );
    }
}
