//! # hpf-sparse — sparse matrix substrate
//!
//! Storage schemes, generators and serial kernels for the reproduction of
//! *"High Performance Fortran and Possible Extensions to support
//! Conjugate Gradient Algorithms"* (Dincer et al., NPAC SCCS-703 /
//! HPDC'96).
//!
//! The paper's Section 3 considers "the compressed row and compressed
//! column schemes which can store any sparse matrix"; this crate provides
//! both ([`CsrMatrix`], [`CscMatrix`]) plus the assembly ([`CooMatrix`])
//! and dense ([`DenseMatrix`]) formats, synthetic generators for every
//! matrix family the paper's argument needs ([`gen`]), structure metrics
//! ([`stats`]), and a small Matrix Market reader/writer ([`io`]).

pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod dia;
pub mod ell;
pub mod error;
pub mod gen;
pub mod io;
pub mod stats;

pub use coo::{CooMatrix, Triplet};
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use dia::DiaMatrix;
pub use ell::EllMatrix;
pub use error::SparseError;
