//! ELLPACK (ELL) storage — a structure-exploiting scheme.
//!
//! The paper (Section 3): "A number of sparse storage schemes are
//! described in [Barrett et al.], some of which can exploit additional
//! information about the sparsity structure of the matrix." ELLPACK is
//! the canonical such scheme: if every row has at most `K` nonzeros, the
//! matrix is stored as two dense `n x K` arrays (values and column
//! indices, short rows padded) — regular strides that vectorise well and
//! distribute with plain `(BLOCK, *)` directives, at the cost of padding
//! waste when row lengths vary (quantified by [`EllMatrix::padding_ratio`],
//! which is exactly why the paper's irregular matrices need the
//! Section 5.2 machinery instead).

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::error::SparseError;
use serde::{Deserialize, Serialize};

/// ELLPACK-format sparse matrix: row-major `n_rows x width` slabs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EllMatrix {
    n_rows: usize,
    n_cols: usize,
    /// Max nonzeros per row (the slab width `K`).
    width: usize,
    /// `n_rows * width` padded values (0.0 in padding slots).
    values: Vec<f64>,
    /// `n_rows * width` padded column indices; padding slots repeat the
    /// row's last valid column (a standard ELL convention making the
    /// kernel branch-free) or 0 for empty rows.
    col_idx: Vec<usize>,
    /// Actual nonzero count (excludes padding).
    nnz: usize,
}

impl EllMatrix {
    /// Build from CSR.
    pub fn from_csr(a: &CsrMatrix) -> Self {
        let n_rows = a.n_rows();
        let width = (0..n_rows).map(|i| a.row_nnz(i)).max().unwrap_or(0);
        let mut values = vec![0.0; n_rows * width];
        let mut col_idx = vec![0usize; n_rows * width];
        for i in 0..n_rows {
            let mut k = 0usize;
            let mut last_col = 0usize;
            for (c, v) in a.row(i) {
                values[i * width + k] = v;
                col_idx[i * width + k] = c;
                last_col = c;
                k += 1;
            }
            for pad in k..width {
                col_idx[i * width + pad] = last_col;
            }
        }
        EllMatrix {
            n_rows,
            n_cols: a.n_cols(),
            width,
            values,
            col_idx,
            nnz: a.nnz(),
        }
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Stored slots (including padding).
    pub fn stored_slots(&self) -> usize {
        self.n_rows * self.width
    }

    /// Fraction of stored slots that are padding: 0.0 for perfectly
    /// uniform rows, approaching 1.0 for power-law structures — the
    /// quantitative reason ELL suits Section 5.2.1's regular case only.
    pub fn padding_ratio(&self) -> f64 {
        if self.stored_slots() == 0 {
            return 0.0;
        }
        1.0 - self.nnz as f64 / self.stored_slots() as f64
    }

    /// `q = A p` over the regular slab (fixed trip count per row).
    pub fn matvec(&self, p: &[f64]) -> Result<Vec<f64>, SparseError> {
        if p.len() != self.n_cols {
            return Err(SparseError::DimensionMismatch(format!(
                "matvec: x has {} entries, matrix has {} columns",
                p.len(),
                self.n_cols
            )));
        }
        let mut q = vec![0.0; self.n_rows];
        for i in 0..self.n_rows {
            let base = i * self.width;
            let mut acc = 0.0;
            for k in 0..self.width {
                acc += self.values[base + k] * p[self.col_idx[base + k]];
            }
            q[i] = acc;
        }
        Ok(q)
    }

    /// Convert back to CSR (padding dropped).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut coo = CooMatrix::new(self.n_rows, self.n_cols);
        for i in 0..self.n_rows {
            for k in 0..self.width {
                let v = self.values[i * self.width + k];
                if v != 0.0 {
                    coo.push(i, self.col_idx[i * self.width + k], v)
                        .expect("indices validated at construction");
                }
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    /// Convert to dense.
    pub fn to_dense(&self) -> DenseMatrix {
        self.to_csr().to_dense()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn roundtrip_uniform_matrix() {
        let a = gen::poisson_2d(6, 6);
        let ell = EllMatrix::from_csr(&a);
        assert_eq!(ell.width(), 5);
        assert_eq!(ell.nnz(), a.nnz());
        assert_eq!(ell.to_dense(), a.to_dense());
    }

    #[test]
    fn matvec_matches_csr() {
        let a = gen::random_spd(50, 4, 3);
        let ell = EllMatrix::from_csr(&a);
        let x: Vec<f64> = (0..50).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let want = a.matvec(&x).unwrap();
        let got = ell.matvec(&x).unwrap();
        for (u, v) in want.iter().zip(got.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn padding_small_for_uniform_large_for_powerlaw() {
        let uniform = EllMatrix::from_csr(&gen::poisson_2d(10, 10));
        let irregular = EllMatrix::from_csr(&gen::power_law_spd(200, 60, 1.0, 4));
        assert!(
            uniform.padding_ratio() < 0.45,
            "{}",
            uniform.padding_ratio()
        );
        assert!(
            irregular.padding_ratio() > 0.8,
            "{}",
            irregular.padding_ratio()
        );
        assert!(irregular.padding_ratio() < 1.0);
    }

    #[test]
    fn matvec_dimension_checked() {
        let ell = EllMatrix::from_csr(&gen::poisson_2d(3, 3));
        assert!(ell.matvec(&[1.0; 5]).is_err());
        assert!(ell.matvec(&[1.0; 9]).is_ok());
    }

    #[test]
    fn empty_rows_handled() {
        let coo = CooMatrix::from_triplets(4, 4, vec![(0, 1, 2.0), (3, 3, 5.0)]).unwrap();
        let a = CsrMatrix::from_coo(&coo);
        let ell = EllMatrix::from_csr(&a);
        assert_eq!(ell.width(), 1);
        assert_eq!(ell.matvec(&[1.0; 4]).unwrap(), vec![2.0, 0.0, 0.0, 5.0]);
        assert_eq!(ell.to_dense(), a.to_dense());
    }

    #[test]
    fn zero_width_matrix() {
        let coo = CooMatrix::new(3, 3);
        let a = CsrMatrix::from_coo(&coo);
        let ell = EllMatrix::from_csr(&a);
        assert_eq!(ell.width(), 0);
        assert_eq!(ell.padding_ratio(), 0.0);
        assert_eq!(ell.matvec(&[1.0; 3]).unwrap(), vec![0.0; 3]);
    }
}
