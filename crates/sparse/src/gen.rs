//! Synthetic matrix generators.
//!
//! The paper motivates CG with "computationally expensive scientific and
//! engineering applications, e.g. structural analysis, fluid dynamics,
//! aerodynamics, lattice gauge simulation, and circuit simulation"
//! (Section 1) and its extension proposals hinge on sparsity *structure*:
//! uniform nnz per row/column (Section 5.2.1) versus "a very irregular
//! grid model in which some grid points may have many neighbours, while
//! others have very few" (Section 5.2.2). These generators produce
//! exactly those families, plus a matrix with a prescribed number of
//! distinct eigenvalues for the Section 2 convergence claim
//! ("CG will generally converge ... in at most n_e iterations, where n_e
//! is the number of distinct eigenvalues").

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// 2-D Poisson problem (5-point stencil) on an `nx` x `ny` grid with
/// Dirichlet boundaries: the classic CFD/structural model problem.
/// Symmetric positive definite, n = nx*ny, ≤ 5 entries per row.
pub fn poisson_2d(nx: usize, ny: usize) -> CsrMatrix {
    assert!(nx > 0 && ny > 0);
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * ny + j;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..nx {
        for j in 0..ny {
            let me = idx(i, j);
            coo.push(me, me, 4.0).unwrap();
            if i > 0 {
                coo.push(me, idx(i - 1, j), -1.0).unwrap();
            }
            if i + 1 < nx {
                coo.push(me, idx(i + 1, j), -1.0).unwrap();
            }
            if j > 0 {
                coo.push(me, idx(i, j - 1), -1.0).unwrap();
            }
            if j + 1 < ny {
                coo.push(me, idx(i, j + 1), -1.0).unwrap();
            }
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// 3-D Poisson problem (7-point stencil) on an `nx` x `ny` x `nz` grid.
pub fn poisson_3d(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
    assert!(nx > 0 && ny > 0 && nz > 0);
    let n = nx * ny * nz;
    let idx = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                let me = idx(i, j, k);
                coo.push(me, me, 6.0).unwrap();
                if i > 0 {
                    coo.push(me, idx(i - 1, j, k), -1.0).unwrap();
                }
                if i + 1 < nx {
                    coo.push(me, idx(i + 1, j, k), -1.0).unwrap();
                }
                if j > 0 {
                    coo.push(me, idx(i, j - 1, k), -1.0).unwrap();
                }
                if j + 1 < ny {
                    coo.push(me, idx(i, j + 1, k), -1.0).unwrap();
                }
                if k > 0 {
                    coo.push(me, idx(i, j, k - 1), -1.0).unwrap();
                }
                if k + 1 < nz {
                    coo.push(me, idx(i, j, k + 1), -1.0).unwrap();
                }
            }
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// Symmetric positive-definite banded matrix with given half-bandwidth:
/// structural-analysis style. Off-diagonal entries decay with distance,
/// the diagonal dominates.
pub fn banded_spd(n: usize, half_bandwidth: usize, seed: u64) -> CsrMatrix {
    assert!(n > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::new(n, n);
    let mut row_sums = vec![0.0f64; n];
    for i in 0..n {
        for d in 1..=half_bandwidth {
            if i + d < n {
                let v: f64 = -rng.gen_range(0.1..1.0) / d as f64;
                coo.push(i, i + d, v).unwrap();
                coo.push(i + d, i, v).unwrap();
                row_sums[i] += v.abs();
                row_sums[i + d] += v.abs();
            }
        }
    }
    for (i, s) in row_sums.iter().enumerate() {
        // Strict diagonal dominance => SPD for a symmetric matrix.
        coo.push(i, i, s + 1.0).unwrap();
    }
    CsrMatrix::from_coo(&coo)
}

/// Random symmetric diagonally dominant (hence SPD) matrix with roughly
/// `nnz_per_row` off-diagonal entries per row at uniform random columns —
/// the "arbitrarily sparse" matrix of the paper's Section 4.
pub fn random_spd(n: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
    assert!(n > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut triplets = Vec::new();
    let mut row_sums = vec![0.0f64; n];
    for i in 0..n {
        for _ in 0..nnz_per_row {
            let j = rng.gen_range(0..n);
            if j == i {
                continue;
            }
            let v: f64 = -rng.gen_range(0.05..1.0);
            triplets.push((i, j, v));
            triplets.push((j, i, v));
            row_sums[i] += v.abs();
            row_sums[j] += v.abs();
        }
    }
    for (i, s) in row_sums.iter().enumerate() {
        triplets.push((i, i, s + 1.0));
    }
    let coo = CooMatrix::from_triplets_summing(n, n, triplets).unwrap();
    CsrMatrix::from_coo(&coo)
}

/// Irregular sparsity: row `i`'s off-diagonal count follows a power-law,
/// so a few "hub" rows are very dense and most are nearly empty —
/// Section 5.2.2's "some grid points may have many neighbours, while
/// others have very few". Symmetrised and made diagonally dominant so CG
/// still applies.
pub fn power_law_spd(n: usize, max_row_nnz: usize, alpha: f64, seed: u64) -> CsrMatrix {
    assert!(n > 1);
    assert!(alpha > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut triplets = Vec::new();
    let mut row_sums = vec![0.0f64; n];
    for i in 0..n {
        // Zipf-ish: rank-dependent degree, clamped to [1, max_row_nnz].
        let frac = ((i + 1) as f64).powf(-alpha);
        let degree = ((max_row_nnz as f64 * frac).ceil() as usize).clamp(1, max_row_nnz);
        for _ in 0..degree {
            let j = rng.gen_range(0..n);
            if j == i {
                continue;
            }
            let v: f64 = -rng.gen_range(0.05..0.5);
            triplets.push((i, j, v));
            triplets.push((j, i, v));
            row_sums[i] += v.abs();
            row_sums[j] += v.abs();
        }
    }
    for (i, s) in row_sums.iter().enumerate() {
        triplets.push((i, i, s + 1.0));
    }
    let coo = CooMatrix::from_triplets_summing(n, n, triplets).unwrap();
    CsrMatrix::from_coo(&coo)
}

/// Symmetric positive-definite matrix with *exactly* the given distinct
/// eigenvalues (each repeated to fill dimension `n`), constructed as
/// `G_k ... G_1 D G_1ᵀ ... G_kᵀ` with random Givens rotations — sparse
/// for a modest number of rotations, spectrum exactly preserved.
///
/// Used to reproduce the Section 2 claim that CG converges in at most
/// `n_e` iterations, `n_e` = number of distinct eigenvalues.
pub fn distinct_eigenvalues(
    n: usize,
    eigenvalues: &[f64],
    rotations: usize,
    seed: u64,
) -> CsrMatrix {
    assert!(n > 0);
    assert!(!eigenvalues.is_empty());
    assert!(
        eigenvalues.iter().all(|&e| e > 0.0),
        "eigenvalues must be positive for an SPD matrix"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    // Dense working storage: the construction is O(n * rotations), used
    // only at modest n for the convergence experiment.
    let mut a = crate::dense::DenseMatrix::zeros(n, n);
    for i in 0..n {
        a[(i, i)] = eigenvalues[i % eigenvalues.len()];
    }
    for _ in 0..rotations {
        let i = rng.gen_range(0..n);
        let mut j = rng.gen_range(0..n);
        while j == i {
            j = rng.gen_range(0..n);
        }
        let theta: f64 = rng.gen_range(0.0..std::f64::consts::PI);
        let (c, s) = (theta.cos(), theta.sin());
        // A <- G A Gᵀ with G the rotation in the (i, j) plane.
        for k in 0..n {
            let (aik, ajk) = (a[(i, k)], a[(j, k)]);
            a[(i, k)] = c * aik - s * ajk;
            a[(j, k)] = s * aik + c * ajk;
        }
        for k in 0..n {
            let (aki, akj) = (a[(k, i)], a[(k, j)]);
            a[(k, i)] = c * aki - s * akj;
            a[(k, j)] = s * aki + c * akj;
        }
    }
    // Clean up rounding asymmetry before converting.
    for i in 0..n {
        for j in (i + 1)..n {
            let m = 0.5 * (a[(i, j)] + a[(j, i)]);
            a[(i, j)] = m;
            a[(j, i)] = m;
        }
    }
    CsrMatrix::from_dense(&a)
}

/// Block-irregular "mesh" matrix: a set of tightly coupled regions
/// (dense-ish diagonal blocks of very different sizes) joined by a thin
/// chain of interface couplings — the multi-region grid structure of
/// Section 5.2.2 that "is identifiable to a human but not to a
/// compiler". SPD by diagonal dominance.
pub fn block_irregular_mesh(block_sizes: &[usize], seed: u64) -> CsrMatrix {
    assert!(!block_sizes.is_empty());
    assert!(
        block_sizes.iter().all(|&s| s > 0),
        "blocks must be non-empty"
    );
    let n: usize = block_sizes.iter().sum();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut triplets = Vec::new();
    let mut row_sums = vec![0.0f64; n];
    let mut base = 0usize;
    for &size in block_sizes {
        // Dense coupling within the region (upper triangle, mirrored).
        for i in 0..size {
            for j in (i + 1)..size {
                let v: f64 = -rng.gen_range(0.05..0.4);
                triplets.push((base + i, base + j, v));
                triplets.push((base + j, base + i, v));
                row_sums[base + i] += v.abs();
                row_sums[base + j] += v.abs();
            }
        }
        // One interface coupling to the next region.
        if base + size < n {
            let v = -0.5;
            triplets.push((base + size - 1, base + size, v));
            triplets.push((base + size, base + size - 1, v));
            row_sums[base + size - 1] += v.abs();
            row_sums[base + size] += v.abs();
        }
        base += size;
    }
    for (i, s) in row_sums.iter().enumerate() {
        triplets.push((i, i, s + 1.0));
    }
    let coo = CooMatrix::from_triplets_summing(n, n, triplets).unwrap();
    CsrMatrix::from_coo(&coo)
}

/// Symmetric tridiagonal Toeplitz matrix `tri(b, a, b)` (known spectrum:
/// `a + 2 b cos(k pi / (n+1))`).
pub fn tridiagonal(n: usize, diag: f64, off: f64) -> CsrMatrix {
    assert!(n > 0);
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, diag).unwrap();
        if i + 1 < n {
            coo.push(i, i + 1, off).unwrap();
            coo.push(i + 1, i, off).unwrap();
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// Right-hand side `b = A x_true` for a prescribed smooth solution, so
/// solver tests can verify against a known answer.
pub fn rhs_for_known_solution(a: &CsrMatrix) -> (Vec<f64>, Vec<f64>) {
    let n = a.n_cols();
    let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 / n as f64).sin()).collect();
    let b = a.matvec(&x_true).expect("square system");
    (x_true, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_2d_shape_and_symmetry() {
        let a = poisson_2d(4, 5);
        assert_eq!(a.n_rows(), 20);
        assert!(a.is_symmetric(0.0));
        // Interior point has 5 entries.
        assert_eq!(a.row_nnz(6), 5);
        // Corner has 3.
        assert_eq!(a.row_nnz(0), 3);
        assert_eq!(a.get(0, 0), 4.0);
    }

    #[test]
    fn poisson_3d_shape() {
        let a = poisson_3d(3, 3, 3);
        assert_eq!(a.n_rows(), 27);
        assert!(a.is_symmetric(0.0));
        // Centre point of the cube has 7 entries.
        let centre = (3 + 1) * 3 + 1;
        assert_eq!(a.row_nnz(centre), 7);
        assert_eq!(a.get(centre, centre), 6.0);
    }

    #[test]
    fn banded_is_spd_shaped() {
        let a = banded_spd(50, 3, 42);
        assert!(a.is_symmetric(1e-12));
        // Diagonal dominance.
        for i in 0..50 {
            let offsum: f64 = a
                .row(i)
                .filter(|&(j, _)| j != i)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(a.get(i, i) > offsum, "row {i} not dominant");
        }
        // Band respected.
        for i in 0..50 {
            for (j, _) in a.row(i) {
                assert!(i.abs_diff(j) <= 3);
            }
        }
    }

    #[test]
    fn random_spd_is_symmetric_dominant() {
        let a = random_spd(64, 4, 7);
        assert!(a.is_symmetric(1e-12));
        for i in 0..64 {
            let offsum: f64 = a
                .row(i)
                .filter(|&(j, _)| j != i)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(a.get(i, i) > offsum);
        }
    }

    #[test]
    fn power_law_is_irregular() {
        let a = power_law_spd(200, 60, 1.0, 3);
        assert!(a.is_symmetric(1e-12));
        let max_nnz = (0..200).map(|i| a.row_nnz(i)).max().unwrap();
        let min_nnz = (0..200).map(|i| a.row_nnz(i)).min().unwrap();
        // Hubs must be much denser than leaves.
        assert!(
            max_nnz >= 4 * min_nnz.max(1),
            "max {max_nnz} vs min {min_nnz}"
        );
    }

    #[test]
    fn distinct_eigenvalues_preserves_trace_and_symmetry() {
        let eigs = [1.0, 2.0, 5.0];
        let n = 12;
        let a = distinct_eigenvalues(n, &eigs, 30, 11);
        assert!(a.is_symmetric(1e-9));
        // Trace = sum of eigenvalues with multiplicity (n/3 copies each).
        let trace: f64 = a.diagonal().iter().sum();
        let want: f64 = (0..n).map(|i| eigs[i % 3]).sum();
        assert!((trace - want).abs() < 1e-8, "trace {trace} want {want}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn distinct_eigenvalues_rejects_nonpositive() {
        distinct_eigenvalues(4, &[1.0, -2.0], 3, 0);
    }

    #[test]
    fn tridiagonal_structure() {
        let a = tridiagonal(5, 2.0, -1.0);
        assert_eq!(a.nnz(), 13);
        assert_eq!(a.get(2, 2), 2.0);
        assert_eq!(a.get(2, 3), -1.0);
        assert_eq!(a.get(2, 4), 0.0);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn rhs_for_known_solution_consistent() {
        let a = poisson_2d(5, 5);
        let (x_true, b) = rhs_for_known_solution(&a);
        let ax = a.matvec(&x_true).unwrap();
        for (u, v) in ax.iter().zip(b.iter()) {
            assert_eq!(u, v);
        }
    }

    #[test]
    fn block_irregular_mesh_structure() {
        let a = block_irregular_mesh(&[20, 3, 3, 3], 5);
        assert_eq!(a.n_rows(), 29);
        assert!(a.is_symmetric(1e-12));
        // Diagonal dominance (SPD).
        for i in 0..29 {
            let offsum: f64 = a
                .row(i)
                .filter(|&(j, _)| j != i)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(a.get(i, i) > offsum);
        }
        // The big region's rows are much denser than the small regions'.
        let dense_row_nnz = a.row_nnz(5);
        let sparse_row_nnz = a.row_nnz(25);
        assert!(
            dense_row_nnz > 3 * sparse_row_nnz,
            "{dense_row_nnz} vs {sparse_row_nnz}"
        );
        // Interface couples region boundaries.
        assert!(a.get(19, 20) != 0.0);
        assert_eq!(a.get(5, 25), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn block_irregular_mesh_rejects_empty_block() {
        block_irregular_mesh(&[3, 0, 2], 1);
    }

    #[test]
    fn power_law_is_strictly_diagonally_dominant() {
        let a = power_law_spd(128, 24, 0.8, 13);
        assert!(a.is_symmetric(1e-12));
        for i in 0..128 {
            let offsum: f64 = a
                .row(i)
                .filter(|&(j, _)| j != i)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(a.get(i, i) > offsum, "row {i} not strictly dominant");
        }
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        assert_eq!(random_spd(32, 3, 9), random_spd(32, 3, 9));
        assert_ne!(random_spd(32, 3, 9), random_spd(32, 3, 10));
    }

    #[test]
    fn irregular_generators_are_deterministic_per_seed() {
        assert_eq!(power_law_spd(64, 12, 0.9, 7), power_law_spd(64, 12, 0.9, 7));
        assert_ne!(power_law_spd(64, 12, 0.9, 7), power_law_spd(64, 12, 0.9, 8));
        assert_eq!(
            block_irregular_mesh(&[10, 3, 3], 4),
            block_irregular_mesh(&[10, 3, 3], 4)
        );
        assert_ne!(
            block_irregular_mesh(&[10, 3, 3], 4),
            block_irregular_mesh(&[10, 3, 3], 5)
        );
    }
}
