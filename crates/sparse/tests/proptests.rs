//! Property-based tests over the sparse formats: any matrix representable
//! in one format round-trips through every other, and every format's
//! kernels agree with the dense reference.

use hpf_sparse::{
    gen, io, stats, CooMatrix, CscMatrix, CsrMatrix, DenseMatrix, DiaMatrix, EllMatrix, SparseError,
};
use proptest::prelude::*;

/// Strategy: a small random sparse matrix as unique triplets.
fn arb_matrix() -> impl Strategy<Value = (usize, usize, Vec<(usize, usize, f64)>)> {
    (1usize..12, 1usize..12).prop_flat_map(|(r, c)| {
        let cell = (0..r, 0..c, -100.0f64..100.0);
        proptest::collection::vec(cell, 0..40).prop_map(move |mut v| {
            // Deduplicate coordinates (keep first occurrence).
            v.sort_by_key(|&(i, j, _)| (i, j));
            v.dedup_by_key(|&mut (i, j, _)| (i, j));
            (r, c, v)
        })
    })
}

proptest! {
    #[test]
    fn coo_dense_roundtrip((r, c, trips) in arb_matrix()) {
        let coo = CooMatrix::from_triplets(r, c, trips).unwrap();
        let dense = coo.to_dense();
        let back = CooMatrix::from_dense(&dense);
        prop_assert_eq!(back.to_dense(), dense);
    }

    #[test]
    fn csr_csc_dense_all_agree((r, c, trips) in arb_matrix()) {
        let coo = CooMatrix::from_triplets(r, c, trips).unwrap();
        let dense = coo.to_dense();
        let csr = CsrMatrix::from_coo(&coo);
        let csc = CscMatrix::from_coo(&coo);
        prop_assert_eq!(csr.to_dense(), dense.clone());
        prop_assert_eq!(csc.to_dense(), dense.clone());
        prop_assert_eq!(csc.to_csr().to_dense(), dense.clone());
        prop_assert_eq!(CscMatrix::from_csr(&csr).to_dense(), dense);
    }

    #[test]
    fn matvec_agrees_across_formats(((r, c, trips), seed) in (arb_matrix(), any::<u64>())) {
        let coo = CooMatrix::from_triplets(r, c, trips).unwrap();
        let dense = coo.to_dense();
        let csr = CsrMatrix::from_coo(&coo);
        let csc = CscMatrix::from_coo(&coo);
        // Deterministic pseudo-random x from the seed.
        let x: Vec<f64> = (0..c)
            .map(|i| ((seed.wrapping_add(i as u64 * 2654435761) % 1000) as f64 - 500.0) / 100.0)
            .collect();
        let want = dense.matvec(&x).unwrap();
        let got_csr = csr.matvec(&x).unwrap();
        let got_csc = csc.matvec(&x).unwrap();
        for i in 0..r {
            prop_assert!((want[i] - got_csr[i]).abs() < 1e-9);
            prop_assert!((want[i] - got_csc[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_matvec_agrees(((r, c, trips), seed) in (arb_matrix(), any::<u64>())) {
        let coo = CooMatrix::from_triplets(r, c, trips).unwrap();
        let dense = coo.to_dense();
        let csr = CsrMatrix::from_coo(&coo);
        let csc = CscMatrix::from_coo(&coo);
        let x: Vec<f64> = (0..r)
            .map(|i| ((seed.wrapping_add(i as u64 * 97) % 512) as f64 - 256.0) / 64.0)
            .collect();
        let want = dense.matvec_transpose(&x).unwrap();
        let got_csr = csr.matvec_transpose(&x).unwrap();
        let got_csc = csc.matvec_transpose(&x).unwrap();
        for j in 0..c {
            prop_assert!((want[j] - got_csr[j]).abs() < 1e-9);
            prop_assert!((want[j] - got_csc[j]).abs() < 1e-9);
        }
    }

    #[test]
    fn ell_and_dia_agree_with_dense(((r, c, trips), seed) in (arb_matrix(), any::<u64>())) {
        let coo = CooMatrix::from_triplets(r, c, trips).unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        let dense = coo.to_dense();
        let ell = EllMatrix::from_csr(&csr);
        let dia = DiaMatrix::from_csr(&csr);
        // Round-trips drop explicit zeros, so compare matvec semantics.
        let x: Vec<f64> = (0..c)
            .map(|i| ((seed.wrapping_add(i as u64 * 31) % 256) as f64 - 128.0) / 32.0)
            .collect();
        let want = dense.matvec(&x).unwrap();
        let got_ell = ell.matvec(&x).unwrap();
        let got_dia = dia.matvec(&x).unwrap();
        for i in 0..r {
            prop_assert!((want[i] - got_ell[i]).abs() < 1e-9);
            prop_assert!((want[i] - got_dia[i]).abs() < 1e-9);
        }
        // Structural invariants.
        prop_assert!(ell.padding_ratio() >= 0.0 && ell.padding_ratio() <= 1.0);
        prop_assert!(dia.fill_ratio() >= 0.0 && dia.fill_ratio() <= 1.0 + 1e-12);
    }

    #[test]
    fn transpose_twice_is_identity((r, c, trips) in arb_matrix()) {
        let coo = CooMatrix::from_triplets(r, c, trips).unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        prop_assert_eq!(csr.transpose().transpose().to_dense(), csr.to_dense());
    }

    #[test]
    fn matrix_market_roundtrip((r, c, trips) in arb_matrix()) {
        let coo = CooMatrix::from_triplets(r, c, trips).unwrap();
        let text = io::write_matrix_market(&coo);
        let back = io::read_matrix_market(&text).unwrap();
        let (d1, d2) = (coo.to_dense(), back.to_dense());
        prop_assert_eq!(d1.n_rows(), d2.n_rows());
        prop_assert!(d1.max_abs_diff(&d2) < 1e-9);
    }

    #[test]
    fn matrix_market_roundtrip_exact_with_interior_noise(
        (r, c, trips) in arb_matrix(),
        stride in 1usize..4,
    ) {
        // Values must survive text round-trip bit-exactly (Rust float
        // formatting is shortest-round-trip), even with comment and
        // blank lines injected between arbitrary data lines.
        let coo = CooMatrix::from_triplets(r, c, trips).unwrap();
        let mut noisy = String::new();
        for (i, line) in io::write_matrix_market(&coo).lines().enumerate() {
            noisy.push_str(line);
            noisy.push('\n');
            if i >= 1 && i % stride == 0 {
                noisy.push_str("% interior comment\n\n  \n");
            }
        }
        let back = io::read_matrix_market(&noisy).unwrap();
        prop_assert_eq!(back.to_dense(), coo.to_dense());
    }

    #[test]
    fn matrix_market_out_of_range_index_errs_not_panics(
        n in 1usize..6,
        excess in 1usize..10,
        on_row in any::<bool>(),
    ) {
        let (r, c) = if on_row { (n + excess, 1) } else { (1, n + excess) };
        let text = format!(
            "%%MatrixMarket matrix coordinate real general\n{n} {n} 1\n{r} {c} 1.0\n"
        );
        prop_assert!(matches!(
            io::read_matrix_market(&text),
            Err(SparseError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn nnz_conserved_across_formats((r, c, trips) in arb_matrix()) {
        // Filter exact zeros the generator may produce (they stay stored).
        let coo = CooMatrix::from_triplets(r, c, trips).unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        let csc = CscMatrix::from_coo(&coo);
        prop_assert_eq!(csr.nnz(), coo.nnz());
        prop_assert_eq!(csc.nnz(), coo.nnz());
    }

    #[test]
    fn generated_spd_matrices_are_symmetric(n in 2usize..40, nnz in 1usize..6, seed in any::<u64>()) {
        let a = gen::random_spd(n, nnz, seed);
        prop_assert!(a.is_symmetric(1e-12));
        // x' A x > 0 for a few random-ish x (diagonal dominance => SPD).
        let x: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 5) as f64 - 2.0).collect();
        let ax = a.matvec(&x).unwrap();
        let quad: f64 = x.iter().zip(ax.iter()).map(|(u, v)| u * v).sum();
        let norm: f64 = x.iter().map(|u| u * u).sum();
        if norm > 0.0 {
            prop_assert!(quad > 0.0, "quadratic form {quad} not positive");
        }
    }

    #[test]
    fn row_stats_bounds_hold(n in 2usize..60, nnz in 1usize..8, seed in any::<u64>()) {
        let a = gen::random_spd(n, nnz, seed);
        let s = stats::row_stats(&a);
        prop_assert!(s.min <= s.max);
        prop_assert!(s.mean >= s.min as f64 && s.mean <= s.max as f64);
        prop_assert!(s.imbalance >= 1.0 - 1e-12);
    }

    #[test]
    fn dense_transpose_involution(rows in 1usize..8, cols in 1usize..8, seed in any::<u64>()) {
        let data: Vec<f64> = (0..rows * cols)
            .map(|i| ((seed.wrapping_add(i as u64) % 100) as f64) / 10.0)
            .collect();
        let d = DenseMatrix::from_row_major(rows, cols, data).unwrap();
        prop_assert_eq!(d.transpose().transpose(), d);
    }
}
