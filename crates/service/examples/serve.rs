//! Demo: run the solver service against a mixed workload.
//!
//! Submits a burst of solves over three matrix structures (so the plan
//! cache sees repeats), mixes solver kinds and multi-RHS jobs, trips a
//! deadline on purpose, and finishes by printing the JSON metrics
//! snapshot. Used by CI as the service smoke test:
//!
//! ```sh
//! cargo run -p hpf-service --example serve
//! ```

use hpf_service::{ServiceConfig, ServiceError, SolveRequest, SolverKind, SolverService};
use hpf_sparse::gen;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let config = ServiceConfig {
        workers: 2,
        queue_capacity: 64,
        np: 8,
        ..ServiceConfig::default()
    };
    println!(
        "serving on a simulated {}-processor {:?} machine ({} workers, queue {})",
        config.np, config.topology, config.workers, config.queue_capacity
    );
    let service = SolverService::start(config);

    // Three structures; the banded one is submitted 16x to exercise the
    // plan cache and batcher.
    let banded = Arc::new(gen::banded_spd(96, 3, 7));
    let power = Arc::new(gen::power_law_spd(128, 16, 0.9, 11));
    let grid = Arc::new(gen::poisson_2d(12, 12));

    let mut handles = Vec::new();
    let (b_banded, _) = gen::rhs_for_known_solution(&banded);
    for _ in 0..16 {
        handles.push(
            service
                .submit(SolveRequest::new(banded.clone(), b_banded.clone()))
                .expect("queue has room"),
        );
    }
    let (b_power, _) = gen::rhs_for_known_solution(&power);
    handles.push(
        service
            .submit(SolveRequest::new(power.clone(), b_power).solver(SolverKind::PcgJacobi))
            .expect("queue has room"),
    );
    let rhs_set: Vec<Vec<f64>> = (0..3)
        .map(|k| (0..144).map(|i| ((i + 13 * k) % 9) as f64).collect())
        .collect();
    handles.push(
        service
            .submit(SolveRequest::with_rhs_set(grid.clone(), rhs_set).solver(SolverKind::Bicgstab))
            .expect("queue has room"),
    );

    // A deadline that has already passed: the service sheds it with a
    // typed error instead of wasting a worker on it.
    let doomed = service
        .submit(
            SolveRequest::new(banded.clone(), b_banded.clone()).deadline(Duration::from_nanos(1)),
        )
        .expect("queue has room");

    for h in handles {
        match h.wait() {
            Ok(resp) => println!(
                "job {:>2}: {} rhs, {:>3} iters, plan {:?} (imbalance {:.3}), \
                 batched with {}, {} trace events, sim time {:.2e}",
                resp.job_id,
                resp.solutions.len(),
                resp.stats[0].iterations,
                resp.plan_source,
                resp.plan_imbalance,
                resp.batched_with,
                resp.trace.events,
                resp.trace.total_time,
            ),
            Err(e) => println!("job failed: {e}"),
        }
    }
    match doomed.wait() {
        Err(ServiceError::DeadlineExceeded { waited }) => {
            println!("doomed job correctly shed after {waited:?} in queue");
        }
        other => println!("doomed job unexpectedly returned {other:?}"),
    }

    let snapshot = service.shutdown();
    assert_eq!(snapshot.in_flight, 0, "service drained before shutdown");
    println!("\nmetrics: {}", snapshot.to_json());
}
