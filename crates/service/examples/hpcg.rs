//! The HPCG-class scenario end to end, twice over:
//!
//! 1. a raw MG-PCG solve on a traced machine, so the per-level V-cycle
//!    schedule lands in `trace.jsonl` for `trace-report --format mg`;
//! 2. the same workload through the running service via
//!    `SolveRequest::hpcg`, demonstrating the depth-keyed plan cache
//!    and the `[level=N]`-split labels in the response summary.
//!
//! Artifacts go to `$HPF_OBS_DIR` (default `target/obs-hpcg`):
//! `trace.jsonl` plus `compute-only.jsonl`, a redistribute-free trace
//! CI uses to prove `--format partition` refuses input it cannot
//! account.
//!
//! ```console
//! cargo run --release -p hpf-service --example hpcg
//! cargo run --release -p hpf-bench --bin trace-report -- \
//!     --trace target/obs-hpcg/trace.jsonl --format mg
//! ```

use hpf_machine::{CostModel, Machine, Topology};
use hpf_mg::{pcg_mg_distributed, GridDims, MgHierarchy, MgPreconditioner};
use hpf_service::{ServiceConfig, SolveRequest, SolverService};
use hpf_solvers::StopCriterion;
use hpf_sparse::gen;
use std::path::PathBuf;

fn main() {
    let np = 4;
    let levels = 3;
    let dims = GridDims::d2(31, 31);
    let stop = StopCriterion::RelativeResidual(1e-8);

    // Raw traced solve for the offline per-level report.
    let h = MgHierarchy::build(dims, levels, np).expect("31x31 supports 3 levels");
    let (_, b) = gen::rhs_for_known_solution(h.fine_matrix());
    let pre = MgPreconditioner::new(h);
    let mut m = Machine::new(np, Topology::Hypercube, CostModel::mpp_1995());
    m.set_tracing(true);
    let (_, stats) = pcg_mg_distributed(&mut m, &pre, &b, stop, 200).expect("MG-PCG converges");
    println!(
        "MG-PCG on {dims}, {levels} levels, NP = {np}: {} iterations, {:.6e} simulated s",
        stats.iterations,
        m.elapsed()
    );

    let dir = PathBuf::from(
        std::env::var("HPF_OBS_DIR").unwrap_or_else(|_| "target/obs-hpcg".to_string()),
    );
    std::fs::create_dir_all(&dir).expect("create obs dir");
    std::fs::write(dir.join("trace.jsonl"), m.trace().to_jsonl()).expect("write trace");

    // A trace with no redistribute events: nothing for the partition
    // report to account, so trace-report must refuse it.
    let mut plain = Machine::new(np, Topology::Hypercube, CostModel::mpp_1995());
    plain.set_tracing(true);
    plain.compute_uniform(1000, "local-work");
    plain.allreduce(8, "dot-merge");
    std::fs::write(dir.join("compute-only.jsonl"), plain.trace().to_jsonl())
        .expect("write compute-only trace");

    // The same workload as a service scenario.
    let service = SolverService::start(ServiceConfig {
        workers: 2,
        np,
        ..ServiceConfig::default()
    });
    for round in 0..2 {
        let resp = service
            .solve(SolveRequest::hpcg(dims, levels, b.clone()).stop(stop))
            .expect("hpcg request answered");
        assert!(resp.stats[0].converged);
        assert_eq!(resp.solver_used.name(), "pcg-mg");
        let levelled = resp
            .trace
            .by_label
            .iter()
            .filter(|l| l.label.contains("[level="))
            .count();
        println!(
            "service round {round}: scenario=hpcg answered by {} in {} iterations, \
             {levelled} per-level comm labels",
            resp.solver_used.name(),
            resp.stats[0].iterations
        );
        assert!(levelled > 0, "per-level attribution missing from summary");
    }
    let metrics = service.shutdown();
    assert_eq!(metrics.partitioner_invocations, 1, "hierarchy built once");
    println!(
        "wrote {0}/trace.jsonl and {0}/compute-only.jsonl; \
         plan cache hits: {1}",
        dir.display(),
        metrics.cache_hits
    );
}
