//! Jobs, batch keys, and the batch-forming rule.
//!
//! Batching merges queued jobs that can share one execution: same matrix
//! instance (so values, not just structure, are identical), same solver,
//! same stopping rule. The group runs as a single multi-RHS execution:
//! one plan lookup, one distributed-operator build, then each job's
//! right-hand sides in turn.

use crate::fingerprint::Fingerprint;
use crate::request::{SolveRequest, SolverKind};
use crate::response::{ServiceError, SolveResponse};
use crossbeam::channel::Sender;
use hpf_solvers::StopCriterion;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// An accepted request travelling through the service.
#[derive(Debug)]
pub struct Job {
    pub id: u64,
    pub request: SolveRequest,
    pub fingerprint: Fingerprint,
    pub submitted: Instant,
    /// The admission controller's predicted cost (µs) accounted into its
    /// backlog when this job was admitted; released at every terminal
    /// path. Zero before calibration.
    pub admission_us: u64,
    /// Delivers exactly one result back to the submitter's handle.
    pub responder: Sender<Result<SolveResponse, ServiceError>>,
}

impl Job {
    /// Whether the job's deadline (if any) has already passed.
    pub fn deadline_expired(&self, now: Instant) -> bool {
        match self.request.deadline {
            Some(d) => now.duration_since(self.submitted) > d,
            None => false,
        }
    }

    /// Key under which jobs may share one execution. The matrix pointer
    /// (not just the structural fingerprint) is part of the key: two
    /// matrices can share a pattern yet differ in values, and only the
    /// *plan* is safe to share then — not the built operator. The
    /// partitioner name is part of the key too: jobs laid out by
    /// different partitioners use different operators.
    pub fn batch_key(&self) -> BatchKey {
        BatchKey {
            matrix_ptr: Arc::as_ptr(&self.request.matrix) as usize,
            fingerprint: self.fingerprint,
            solver: self.request.solver,
            stop: StopBits::of(self.request.stop),
            max_iters: self.request.max_iters,
            partitioner: hpf_partition::by_name(&self.request.partitioner)
                .map(|p| p.name())
                .unwrap_or(hpf_partition::DEFAULT_PARTITIONER),
            grid: self.request.grid,
        }
    }
}

/// Tolerances compared bit-exactly so the key is hashable/Eq.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StopBits {
    kind: u8,
    tol_bits: u64,
    window: usize,
}

impl StopBits {
    fn of(stop: StopCriterion) -> Self {
        match stop {
            StopCriterion::RelativeResidual(t) => StopBits {
                kind: 0,
                tol_bits: t.to_bits(),
                window: 0,
            },
            StopCriterion::AbsoluteResidual(t) => StopBits {
                kind: 1,
                tol_bits: t.to_bits(),
                window: 0,
            },
            StopCriterion::Stagnation { window, min_drop } => StopBits {
                kind: 2,
                tol_bits: min_drop.to_bits(),
                window,
            },
        }
    }
}

/// Everything that must match for two jobs to be co-executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchKey {
    pub matrix_ptr: usize,
    pub fingerprint: Fingerprint,
    pub solver: SolverKind,
    pub stop: StopBits,
    pub max_iters: usize,
    /// Canonical registry name of the requested partitioner.
    pub partitioner: &'static str,
    /// Grid dims for multigrid jobs (`None` otherwise): two jobs with
    /// different grids need different hierarchies even on one matrix.
    pub grid: Option<hpf_mg::GridDims>,
}

/// A group of jobs sharing one [`BatchKey`], executed together.
#[derive(Debug)]
pub struct Batch {
    pub jobs: Vec<Job>,
}

impl Batch {
    pub fn total_rhs(&self) -> usize {
        self.jobs.iter().map(|j| j.request.rhs.len()).sum()
    }
}

/// Pull every job matching `seed`'s key out of `pending` (front to
/// back), up to `max_batch` jobs total including the seed. Non-matching
/// jobs stay queued in order. Pure queue surgery, so the policy is
/// testable without threads.
pub fn form_batch(seed: Job, pending: &mut VecDeque<Job>, max_batch: usize) -> Batch {
    let key = seed.batch_key();
    let mut jobs = vec![seed];
    let mut i = 0;
    while i < pending.len() && jobs.len() < max_batch.max(1) {
        if pending[i].batch_key() == key {
            // Preserves relative order of the remaining jobs.
            let j = pending.remove(i).expect("index checked");
            jobs.push(j);
        } else {
            i += 1;
        }
    }
    Batch { jobs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use hpf_sparse::gen;
    use std::time::Duration;

    fn job(id: u64, matrix: &Arc<hpf_sparse::CsrMatrix>) -> Job {
        let (tx, _rx) = unbounded();
        // Handle receiver dropped: these tests never respond.
        let request = SolveRequest::new(matrix.clone(), vec![1.0; matrix.n_rows()]);
        Job {
            id,
            fingerprint: Fingerprint::of(matrix),
            request,
            submitted: Instant::now(),
            admission_us: 0,
            responder: tx,
        }
    }

    #[test]
    fn same_matrix_jobs_merge_others_stay() {
        let a = Arc::new(gen::tridiagonal(12, 4.0, -1.0));
        let b = Arc::new(gen::tridiagonal(12, 4.0, -1.0)); // equal structure, distinct Arc
        let mut pending: VecDeque<Job> = [job(2, &a), job(3, &b), job(4, &a), job(5, &a)].into();
        let batch = form_batch(job(1, &a), &mut pending, 16);
        let ids: Vec<u64> = batch.jobs.iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![1, 2, 4, 5]);
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].id, 3);
    }

    #[test]
    fn batch_respects_max_batch() {
        let a = Arc::new(gen::tridiagonal(8, 4.0, -1.0));
        let mut pending: VecDeque<Job> = (2..10).map(|i| job(i, &a)).collect();
        let batch = form_batch(job(1, &a), &mut pending, 3);
        assert_eq!(batch.jobs.len(), 3);
        assert_eq!(pending.len(), 6);
    }

    #[test]
    fn differing_solver_or_stop_splits_batches() {
        let a = Arc::new(gen::tridiagonal(8, 4.0, -1.0));
        let mut other = job(2, &a);
        other.request.solver = SolverKind::Bicgstab;
        let mut tighter = job(3, &a);
        tighter.request.stop = StopCriterion::RelativeResidual(1e-12);
        let mut pending: VecDeque<Job> = [other, tighter, job(4, &a)].into();
        let batch = form_batch(job(1, &a), &mut pending, 16);
        let ids: Vec<u64> = batch.jobs.iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![1, 4]);
        assert_eq!(pending.len(), 2);
    }

    #[test]
    fn differing_partitioner_splits_batches() {
        let a = Arc::new(gen::tridiagonal(8, 4.0, -1.0));
        let mut other = job(2, &a);
        other.request.partitioner = "greedy-hypergraph".to_string();
        let mut pending: VecDeque<Job> = [other, job(3, &a)].into();
        let batch = form_batch(job(1, &a), &mut pending, 16);
        let ids: Vec<u64> = batch.jobs.iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![1, 3]);
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].id, 2);
    }

    #[test]
    fn deadline_expiry_is_relative_to_submission() {
        let a = Arc::new(gen::tridiagonal(8, 4.0, -1.0));
        let mut j = job(1, &a);
        assert!(!j.deadline_expired(Instant::now()));
        j.request.deadline = Some(Duration::from_nanos(1));
        std::thread::sleep(Duration::from_millis(1));
        assert!(j.deadline_expired(Instant::now()));
    }

    #[test]
    fn total_rhs_sums_across_jobs() {
        let a = Arc::new(gen::tridiagonal(8, 4.0, -1.0));
        let mut j2 = job(2, &a);
        j2.request.rhs = vec![vec![1.0; 8], vec![2.0; 8]];
        let batch = Batch {
            jobs: vec![job(1, &a), j2],
        };
        assert_eq!(batch.total_rhs(), 3);
    }
}
