//! Structural fingerprints of sparse matrices.
//!
//! A fingerprint captures exactly what the partitioner consumes — the
//! shape and the nonzero *pattern* (`row_ptr` + `col_idx`), not the
//! values. Two matrices with equal fingerprints induce identical atom
//! weights and therefore identical `CG_BALANCED_PARTITIONER_1` output,
//! which is what makes a cached [`crate::plan::SolvePlan`] reusable.

use hpf_sparse::CsrMatrix;
use serde::{Deserialize, Serialize};

/// Structural identity of a CSR matrix: dimensions, nonzero count, and a
/// 64-bit FNV-1a hash of the pattern arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fingerprint {
    pub n_rows: usize,
    pub n_cols: usize,
    pub nnz: usize,
    pub pattern_hash: u64,
}

impl Fingerprint {
    /// Fingerprint a matrix. `O(nnz)`; cheap next to a partition + solve.
    pub fn of(matrix: &CsrMatrix) -> Self {
        let mut h = Fnv1a::new();
        for &p in matrix.row_ptr() {
            h.write_usize(p);
        }
        // Domain separator so (row_ptr, col_idx) pairs that happen to
        // concatenate identically still hash apart.
        h.write_usize(usize::MAX);
        for &c in matrix.col_idx() {
            h.write_usize(c);
        }
        Fingerprint {
            n_rows: matrix.n_rows(),
            n_cols: matrix.n_cols(),
            nnz: matrix.nnz(),
            pattern_hash: h.finish(),
        }
    }

    /// Short hex rendering for logs and reports.
    pub fn short(&self) -> String {
        format!(
            "{}x{}/{}nz#{:08x}",
            self.n_rows, self.n_cols, self.nnz, self.pattern_hash as u32
        )
    }
}

struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write_usize(&mut self, v: usize) {
        for b in (v as u64).to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_sparse::gen;

    #[test]
    fn values_do_not_affect_the_fingerprint() {
        let a = gen::banded_spd(40, 3, 1);
        let mut b = a.clone();
        b.scale(3.25);
        assert_eq!(Fingerprint::of(&a), Fingerprint::of(&b));
    }

    #[test]
    fn pattern_changes_the_fingerprint() {
        let a = gen::banded_spd(40, 3, 1);
        let c = gen::banded_spd(40, 5, 1);
        let d = gen::power_law_spd(40, 12, 0.9, 7);
        assert_ne!(Fingerprint::of(&a), Fingerprint::of(&c));
        assert_ne!(Fingerprint::of(&a), Fingerprint::of(&d));
    }

    #[test]
    fn dimensions_participate() {
        let a = gen::tridiagonal(30, 4.0, -1.0);
        let b = gen::tridiagonal(31, 4.0, -1.0);
        assert_ne!(Fingerprint::of(&a), Fingerprint::of(&b));
        assert_eq!(
            Fingerprint::of(&a),
            Fingerprint::of(&gen::tridiagonal(30, 9.0, -2.0))
        );
    }

    #[test]
    fn short_rendering_mentions_shape() {
        let a = gen::tridiagonal(5, 4.0, -1.0);
        let s = Fingerprint::of(&a).short();
        assert!(s.starts_with("5x5/"));
    }
}
