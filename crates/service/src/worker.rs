//! Batch execution on the simulated machine.
//!
//! A worker receives a [`Batch`], resolves a plan (cache or fresh
//! partition), builds the distributed operator once, then runs every
//! job's right-hand sides. Panic isolation lives here, at two scopes:
//! a panic during setup (plan/operator build) fails the whole batch
//! with [`ServiceError::WorkerPanic`], a panic during one job's solves
//! fails only that job. Either way every job is answered exactly once
//! and the worker thread survives.
//!
//! Robustness policies also live here: the batch is refused outright
//! when its structure's circuit breaker is open, each job's fault plan
//! (if any) is installed on the simulated machine for the first
//! attempt, and a retryable solver failure re-runs the job — with
//! backoff, on a clean machine, escalating CG → BiCGSTAB → GMRES.

use crate::admission::AdmissionController;
use crate::batch::Batch;
use crate::events::{self, ServiceEvent, ServiceEventSink};
use crate::metrics::Metrics;
use crate::plan::{CacheOutcome, PlanCache, SolvePlan};
use crate::request::{ServiceConfig, SolverKind};
use crate::response::{PlanSource, ServiceError, SolveResponse, TraceSummary};
use crate::retry::{backoff_delay_jittered, escalate, is_retryable, Admission, CircuitBreaker};
use crate::supervisor::{CurrentJob, SupervisorAbort, WorkerState};
use hpf_core::RowwiseCsr;
use hpf_machine::{CostModel, Machine};
use hpf_solvers::{
    bicg_distributed_with_observer, bicgstab_distributed_with_observer,
    cg_distributed_protected_with_observer, cg_distributed_with_observer,
    gmres_distributed_with_observer, pcg_jacobi_distributed_protected_with_observer,
    pcg_jacobi_distributed_with_observer, DistOperator, IterObserver, RecoveryStats, SolveStats,
    SolverError, StopCriterion, TailObserver,
};
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Fail every deadline-expired job in `batch` now, returning the live
/// remainder. Expired jobs get a typed error instead of occupying a
/// worker — the queue can shed load it can no longer serve in time.
pub fn shed_expired(batch: Batch, metrics: &Metrics, admission: &AdmissionController) -> Batch {
    shed_expired_with_sink(batch, metrics, admission, &None)
}

/// [`shed_expired`] with a live-telemetry tap: each expiry emits a
/// [`ServiceEvent::DeadlineExpired`] plus the terminal
/// [`ServiceEvent::Completed`] (`ok: false`).
pub fn shed_expired_with_sink(
    batch: Batch,
    metrics: &Metrics,
    admission: &AdmissionController,
    sink: &Option<ServiceEventSink>,
) -> Batch {
    let now = Instant::now();
    let (expired, live): (Vec<_>, Vec<_>) = batch
        .jobs
        .into_iter()
        .partition(|j| j.deadline_expired(now));
    for job in expired {
        admission.release(job.request.qos, job.admission_us);
        metrics.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
        metrics.failed.fetch_add(1, Ordering::Relaxed);
        metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
        let waited = now.duration_since(job.submitted);
        events::emit(
            sink,
            ServiceEvent::DeadlineExpired {
                trace_id: job.request.trace_id,
                class: job.request.qos,
            },
        );
        events::emit(
            sink,
            ServiceEvent::Completed {
                trace_id: job.request.trace_id,
                class: job.request.qos,
                latency_us: waited.as_micros() as u64,
                ok: false,
                outcome: "deadline",
            },
        );
        let _ = job
            .responder
            .send(Err(ServiceError::DeadlineExceeded { waited }));
    }
    Batch { jobs: live }
}

/// Execute a (non-empty, same-key) batch end to end and answer each job
/// exactly once. `worker_state`, when present, receives per-operation
/// progress heartbeats through the simulated machine's hook and is how
/// the supervisor's kill order (the abort flag) reaches the solve: the
/// hook panics with [`SupervisorAbort`], the per-job catch site answers
/// [`ServiceError::WorkerKilled`], and the caller's loop exits.
pub fn execute_batch(
    batch: Batch,
    cache: &Mutex<PlanCache>,
    config: &ServiceConfig,
    metrics: &Metrics,
    breaker: &CircuitBreaker,
    admission: &AdmissionController,
    worker_state: Option<&Arc<WorkerState>>,
) {
    let batch = shed_expired_with_sink(batch, metrics, admission, &config.event_sink);
    if batch.jobs.is_empty() {
        return;
    }
    let fingerprint = batch.jobs[0].fingerprint;
    if breaker.admit(fingerprint) == Admission::Refuse {
        for job in batch.jobs {
            admission.release(job.request.qos, job.admission_us);
            metrics.breaker_open.fetch_add(1, Ordering::Relaxed);
            metrics.failed.fetch_add(1, Ordering::Relaxed);
            metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
            events::emit(
                &config.event_sink,
                ServiceEvent::Completed {
                    trace_id: job.request.trace_id,
                    class: job.request.qos,
                    latency_us: job.submitted.elapsed().as_micros() as u64,
                    ok: false,
                    outcome: "circuit-open",
                },
            );
            let _ = job
                .responder
                .send(Err(ServiceError::CircuitOpen { fingerprint }));
        }
        return;
    }
    let started = Instant::now();
    let matrix = batch.jobs[0].request.matrix.clone();

    // Batch-wide setup: plan resolution (the service's only partitioner
    // call site) and one operator build serving every job. The batch key
    // includes the partitioner name, so jobs[0] speaks for the batch;
    // unknown names were rejected at submission.
    let partitioner = hpf_partition::by_name(&batch.jobs[0].request.partitioner)
        .unwrap_or_else(|| Box::new(hpf_partition::BalancedContiguous));
    // Multigrid jobs cache their hierarchy alongside the plan, keyed on
    // depth (grid presence was validated at submission; `grid` is in the
    // batch key so jobs[0] speaks for the batch here too).
    let mg_req = match (batch.jobs[0].request.solver, batch.jobs[0].request.grid) {
        (SolverKind::PcgMg { levels }, Some(dims)) => Some((dims, levels)),
        _ => None,
    };
    let setup = catch_unwind(AssertUnwindSafe(|| {
        let (plan, source) = if config.plan_cache_enabled {
            let (plan, outcome) = cache.lock().get_or_build(
                &matrix,
                config.np,
                config.topology,
                partitioner.as_ref(),
                mg_req,
                || {
                    metrics
                        .partitioner_invocations
                        .fetch_add(1, Ordering::Relaxed);
                },
            );
            match outcome {
                CacheOutcome::Hit => {
                    metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                    (plan, PlanSource::CacheHit)
                }
                CacheOutcome::Miss => {
                    metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
                    (plan, PlanSource::Built)
                }
            }
        } else {
            metrics
                .partitioner_invocations
                .fetch_add(1, Ordering::Relaxed);
            let mut plan =
                SolvePlan::build_with(&matrix, config.np, config.topology, partitioner.as_ref());
            if let Some((dims, levels)) = mg_req {
                plan = plan.with_mg(dims, levels);
            }
            (Arc::new(plan), PlanSource::Built)
        };
        let op =
            RowwiseCsr::with_row_cuts(matrix.as_ref().clone(), config.np, plan.row_cuts.clone());
        let mut machine = Machine::new(config.np, config.topology, CostModel::mpp_1995());
        machine.set_tracing(true);
        if let Some(sink) = &config.machine_sink {
            // Live telemetry: every event this machine records streams
            // through the bus adapter mid-solve.
            machine.set_event_sink(sink.clone());
        }
        (plan, source, op, machine)
    }));
    let (plan, source, op, mut machine) = match setup {
        Ok(s) => s,
        Err(payload) => {
            let msg = panic_message(payload.as_ref());
            for job in batch.jobs {
                admission.release(job.request.qos, job.admission_us);
                metrics.failed.fetch_add(1, Ordering::Relaxed);
                metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
                let _ = job
                    .responder
                    .send(Err(ServiceError::WorkerPanic(msg.clone())));
            }
            return;
        }
    };
    if let Some(state) = worker_state {
        // Heartbeat once per simulated-machine operation; observe the
        // supervisor's kill order at the same granularity. The panic
        // unwinds into the per-job catch site below.
        let s = Arc::clone(state);
        machine.set_progress_hook(hpf_machine::ProgressHook::new(move |_op| {
            s.heartbeat.fetch_add(1, Ordering::Relaxed);
            if s.abort.load(Ordering::SeqCst) {
                std::panic::panic_any(SupervisorAbort);
            }
        }));
    }

    let batched_with = batch.jobs.len() - 1;
    metrics.batches_executed.fetch_add(1, Ordering::Relaxed);
    if batched_with > 0 {
        metrics
            .batched_jobs
            .fetch_add(batch.jobs.len() as u64, Ordering::Relaxed);
    }

    for job in batch.jobs {
        // Tag every machine event this job induces with its request's
        // trace id and job id, so multi-job traces stay attributable and
        // a live consumer can join machine spans with service events:
        // "trace=00c0ffee/job=7/solve/iter=3/...".
        let _trace_span = hpf_machine::span::enter(format!("trace={:016x}", job.request.trace_id));
        let _job_span = hpf_machine::span::enter(format!("job={}", job.id));
        let job_started = Instant::now();
        if let Some(state) = worker_state {
            *state.current.lock() = Some(CurrentJob {
                job_id: job.id,
                fingerprint,
                since: job_started,
            });
        }
        let max_attempts = config.max_attempts.max(1);
        let mut kind = job.request.solver;
        let mut attempts = 0usize;
        let outcome = loop {
            attempts += 1;
            machine.reset();
            // The fault plan models a hostile environment for the first
            // attempt only; retries run on a clean machine. A stale
            // injector from a previous job in the batch is cleared too.
            match (&job.request.fault_plan, attempts) {
                (Some(plan), 1) => machine.set_fault_plan(plan.clone()),
                _ => machine.clear_fault_plan(),
            }
            // Bounded residual-series tail for the flight recorder. It
            // lives *outside* the catch site so a supervisor kill
            // mid-attempt still leaves the iterations recorded so far
            // available to the post-mortem flush below.
            let mut res_tail = TailObserver::new(48);
            let solved = catch_unwind(AssertUnwindSafe(|| {
                let mut solutions = Vec::with_capacity(job.request.rhs.len());
                let mut stats: Vec<SolveStats> = Vec::with_capacity(job.request.rhs.len());
                let mut recovery: Option<RecoveryStats> = None;
                for rhs in &job.request.rhs {
                    // One tail per RHS: a failing solve breaks out, so
                    // the flushed tail is the failing system's.
                    res_tail.clear();
                    let (x, s, rec) = run_solver(
                        kind,
                        &mut machine,
                        &op,
                        plan.mg.as_deref(),
                        rhs,
                        job.request.stop,
                        job.request.max_iters,
                        config.recovery,
                        &mut res_tail,
                    )?;
                    if let Some(rec) = rec {
                        let agg = recovery.get_or_insert_with(RecoveryStats::default);
                        agg.checkpoints += rec.checkpoints;
                        agg.rollbacks += rec.rollbacks;
                        agg.faults_detected += rec.faults_detected;
                        agg.residual_replacements += rec.residual_replacements;
                    }
                    solutions.push(x);
                    stats.push(s);
                }
                Ok::<_, SolverError>((solutions, stats, recovery))
            }));
            // Per-attempt: reset() rewinds the injector, clear removes it.
            metrics
                .faults_injected
                .fetch_add(machine.faults_injected() as u64, Ordering::Relaxed);
            // Flush the attempt's residual tail to the flight recorder
            // whether the attempt succeeded, failed typed, or was killed
            // mid-solve (the panic left `res_tail` intact).
            if let Some(tap) = &config.solver_tap {
                if !res_tail.is_empty() {
                    tap.emit(&crate::events::SolverTail {
                        trace_id: job.request.trace_id,
                        attempt: attempts,
                        solver: kind.name(),
                        samples: res_tail.tail(),
                        rollbacks: res_tail.rollbacks().to_vec(),
                        restarts: res_tail.restarts().to_vec(),
                        overwritten: res_tail.overwritten(),
                    });
                }
            }
            match solved {
                Ok(Ok((solutions, stats, recovery))) => {
                    if let Some(rec) = &recovery {
                        metrics
                            .faults_detected
                            .fetch_add(rec.faults_detected as u64, Ordering::Relaxed);
                        metrics
                            .rollbacks
                            .fetch_add(rec.rollbacks as u64, Ordering::Relaxed);
                        for _ in 0..rec.rollbacks {
                            events::emit(
                                &config.event_sink,
                                ServiceEvent::Rollback {
                                    trace_id: job.request.trace_id,
                                    class: job.request.qos,
                                },
                            );
                        }
                    }
                    break Ok((solutions, stats, recovery));
                }
                Ok(Err(e)) => {
                    if attempts < max_attempts && is_retryable(&e) {
                        metrics.retries.fetch_add(1, Ordering::Relaxed);
                        events::emit(
                            &config.event_sink,
                            ServiceEvent::Retry {
                                trace_id: job.request.trace_id,
                                class: job.request.qos,
                                attempt: attempts + 1,
                            },
                        );
                        if config.escalation_enabled {
                            if let Some(next) = escalate(kind) {
                                kind = next;
                                metrics.escalations.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        std::thread::sleep(backoff_delay_jittered(
                            config.backoff_base,
                            config.backoff_cap,
                            attempts as u32,
                            job.id,
                        ));
                        continue;
                    }
                    break Err(ServiceError::Solver(e));
                }
                Err(payload) => {
                    if payload.as_ref().downcast_ref::<SupervisorAbort>().is_some() {
                        let after = job_started.elapsed();
                        events::emit(
                            &config.event_sink,
                            ServiceEvent::WorkerKilled {
                                trace_id: job.request.trace_id,
                                class: job.request.qos,
                                after_us: after.as_micros() as u64,
                            },
                        );
                        break Err(ServiceError::WorkerKilled { after });
                    }
                    break Err(ServiceError::WorkerPanic(panic_message(payload.as_ref())));
                }
            }
        };
        admission.release(job.request.qos, job.admission_us);
        metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
        let result = match outcome {
            Ok((solutions, stats, recovery)) => {
                breaker.record_success(fingerprint);
                metrics.completed.fetch_add(1, Ordering::Relaxed);
                // Calibrate the admission oracle on clean first-attempt
                // successes only: retries and fault-plan runs would
                // teach it the faults, not the costs.
                if attempts == 1 && job.request.fault_plan.is_none() && !stats.is_empty() {
                    let mean_iters = stats.iter().map(|s| s.iterations).sum::<usize>() as f64
                        / stats.len() as f64;
                    admission.observe(
                        job.request.matrix.n_rows(),
                        mean_iters,
                        machine.elapsed(),
                        job_started.elapsed(),
                    );
                }
                // `kind` is the post-escalation solver that produced
                // the outcome, not necessarily the one requested.
                metrics.record_solve_outcome(kind.name(), &job.request.scenario, true);
                metrics
                    .rhs_solved
                    .fetch_add(solutions.len() as u64, Ordering::Relaxed);
                let finished = Instant::now();
                metrics.observe_latency(finished.duration_since(job.submitted));
                Ok(SolveResponse {
                    job_id: job.id,
                    solutions,
                    stats,
                    fingerprint: plan.fingerprint,
                    plan_source: source,
                    plan_imbalance: plan.imbalance,
                    partitioner: plan.partitioner,
                    batched_with,
                    solver_used: kind,
                    attempts,
                    recovery,
                    trace: TraceSummary::from_trace(machine.trace()),
                    wait_time: started.duration_since(job.submitted),
                    solve_time: finished.duration_since(job_started),
                })
            }
            Err(e) => {
                breaker.record_failure(fingerprint);
                metrics.failed.fetch_add(1, Ordering::Relaxed);
                metrics.record_solve_outcome(kind.name(), &job.request.scenario, false);
                Err(e)
            }
        };
        // Terminal telemetry event: exactly one `Completed` per answered
        // handle, success or typed failure (the SLO tracker's unit of
        // account for latency and error-budget burn, and the flight
        // recorder's dump trigger via the outcome tag).
        events::emit(
            &config.event_sink,
            ServiceEvent::Completed {
                trace_id: job.request.trace_id,
                class: job.request.qos,
                latency_us: job.submitted.elapsed().as_micros() as u64,
                ok: result.is_ok(),
                outcome: match &result {
                    Ok(_) => "ok",
                    Err(e) => e.outcome(),
                },
            },
        );
        let _ = job.responder.send(result);
        if let Some(state) = worker_state {
            *state.current.lock() = None;
        }
    }
}

/// Best-effort rendering of a panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Dispatch one right-hand side to the requested distributed solver.
/// CG-family solves go through the checkpoint/rollback protected
/// variants when a recovery config is set. `mg` is the plan's cached
/// V-cycle preconditioner; MG-PCG runs over the hierarchy's own
/// `(BLOCK)` fine operator (the level descriptors the transfers price
/// against), not the partitioned `op` the other methods use.
#[allow(clippy::too_many_arguments)]
fn run_solver(
    kind: SolverKind,
    machine: &mut Machine,
    op: &RowwiseCsr,
    mg: Option<&hpf_mg::MgPreconditioner>,
    rhs: &[f64],
    stop: StopCriterion,
    max_iters: usize,
    recovery: Option<hpf_solvers::RecoveryConfig>,
    obs: &mut dyn IterObserver,
) -> Result<(Vec<f64>, SolveStats, Option<RecoveryStats>), SolverError> {
    if let SolverKind::PcgMg { .. } = kind {
        let pre = mg.expect("validated: pcg-mg plans carry a hierarchy");
        return match recovery {
            Some(cfg) => {
                let (x, s, r) = hpf_mg::pcg_mg_distributed_protected_with_observer(
                    machine, pre, rhs, stop, max_iters, cfg, obs,
                )?;
                Ok((x.to_global(), s, Some(r)))
            }
            None => {
                let (x, s) = hpf_mg::pcg_mg_distributed_with_observer(
                    machine, pre, rhs, stop, max_iters, obs,
                )?;
                Ok((x.to_global(), s, None))
            }
        };
    }
    let (x, s, rec) = match (kind, recovery) {
        (SolverKind::Cg, Some(cfg)) => {
            let (x, s, r) = cg_distributed_protected_with_observer(
                machine, op, rhs, stop, max_iters, cfg, obs,
            )?;
            (x, s, Some(r))
        }
        (SolverKind::PcgJacobi, Some(cfg)) => {
            let (x, s, r) = pcg_jacobi_distributed_protected_with_observer(
                machine, op, rhs, stop, max_iters, cfg, obs,
            )?;
            (x, s, Some(r))
        }
        (SolverKind::Cg, None) => {
            let (x, s) = cg_distributed_with_observer(machine, op, rhs, stop, max_iters, obs)?;
            (x, s, None)
        }
        (SolverKind::PcgJacobi, None) => {
            let (x, s) =
                pcg_jacobi_distributed_with_observer(machine, op, rhs, stop, max_iters, obs)?;
            (x, s, None)
        }
        (SolverKind::Bicg, _) => {
            let (x, s) = bicg_distributed_with_observer(machine, op, rhs, stop, max_iters, obs)?;
            (x, s, None)
        }
        (SolverKind::Bicgstab, _) => {
            let (x, s) =
                bicgstab_distributed_with_observer(machine, op, rhs, stop, max_iters, obs)?;
            (x, s, None)
        }
        (SolverKind::Gmres { restart }, _) => {
            let (x, s) =
                gmres_distributed_with_observer(machine, op, rhs, restart, stop, max_iters, obs)?;
            (x, s, None)
        }
        (SolverKind::PcgMg { .. }, _) => unreachable!("early-returned above"),
    };
    debug_assert_eq!(op.dim(), rhs.len());
    Ok((x.to_global(), s, rec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{form_batch, Job};
    use crate::fingerprint::Fingerprint;
    use crate::request::SolveRequest;
    use crossbeam::channel::{unbounded, Receiver};
    use hpf_sparse::gen;
    use std::collections::VecDeque;
    use std::time::Duration;

    fn make_job(
        id: u64,
        matrix: &Arc<hpf_sparse::CsrMatrix>,
        rhs: Vec<Vec<f64>>,
    ) -> (Job, Receiver<Result<SolveResponse, ServiceError>>) {
        let (tx, rx) = unbounded();
        let mut request = SolveRequest::new(matrix.clone(), Vec::new());
        request.rhs = rhs;
        (
            Job {
                id,
                fingerprint: Fingerprint::of(matrix),
                request,
                submitted: Instant::now(),
                admission_us: 0,
                responder: tx,
            },
            rx,
        )
    }

    fn config(np: usize) -> ServiceConfig {
        ServiceConfig {
            np,
            ..ServiceConfig::default()
        }
    }

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(0, Duration::ZERO)
    }

    fn admission(np: usize) -> AdmissionController {
        AdmissionController::new(&config(np))
    }

    #[test]
    fn batch_execution_answers_every_job_correctly() {
        let a = Arc::new(gen::banded_spd(48, 3, 9));
        let (b1, _x1) = gen::rhs_for_known_solution(&a);
        let (mut jobs, rxs): (Vec<_>, Vec<_>) =
            (0..3).map(|i| make_job(i, &a, vec![b1.clone()])).unzip();
        let seed = jobs.remove(0);
        let mut pending: VecDeque<Job> = jobs.into();
        let batch = form_batch(seed, &mut pending, 8);
        assert_eq!(batch.jobs.len(), 3);

        let cache = Mutex::new(PlanCache::new(8));
        let metrics = Metrics::new();
        metrics.in_flight.fetch_add(3, Ordering::Relaxed);
        execute_batch(
            batch,
            &cache,
            &config(4),
            &metrics,
            &breaker(),
            &admission(4),
            None,
        );

        for rx in rxs {
            let resp = rx.recv().unwrap().unwrap();
            assert_eq!(resp.batched_with, 2);
            assert!(resp.stats[0].converged);
            let ax = a.matvec(&resp.solutions[0]).unwrap();
            let res: f64 = ax
                .iter()
                .zip(&b1)
                .map(|(u, v)| (u - v) * (u - v))
                .sum::<f64>()
                .sqrt();
            let bn: f64 = b1.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!(res <= 1e-6 * bn, "residual {res} vs ||b|| {bn}");
            assert!(resp.trace.events > 0);
            assert!(!resp.trace.by_label.is_empty());
        }
        let s = metrics.snapshot();
        assert_eq!(s.completed, 3);
        assert_eq!(s.partitioner_invocations, 1);
        assert_eq!(s.batches_executed, 1);
        assert_eq!(s.batched_jobs, 3);
        assert_eq!(s.in_flight, 0);
    }

    #[test]
    fn expired_jobs_are_shed_with_a_typed_error() {
        let a = Arc::new(gen::tridiagonal(16, 4.0, -1.0));
        let (mut job, rx) = make_job(1, &a, vec![vec![1.0; 16]]);
        job.request.deadline = Some(Duration::from_nanos(1));
        std::thread::sleep(Duration::from_millis(2));
        let metrics = Metrics::new();
        metrics.in_flight.fetch_add(1, Ordering::Relaxed);
        let cache = Mutex::new(PlanCache::new(2));
        execute_batch(
            Batch { jobs: vec![job] },
            &cache,
            &config(2),
            &metrics,
            &breaker(),
            &admission(2),
            None,
        );
        match rx.recv().unwrap() {
            Err(ServiceError::DeadlineExceeded { waited }) => {
                assert!(waited >= Duration::from_nanos(1));
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        let s = metrics.snapshot();
        assert_eq!(s.deadline_exceeded, 1);
        assert_eq!(s.completed, 0);
        // No partitioning happened for a job that never ran.
        assert_eq!(s.partitioner_invocations, 0);
    }

    #[test]
    fn cache_disabled_partitions_every_batch() {
        let a = Arc::new(gen::banded_spd(32, 2, 4));
        let cache = Mutex::new(PlanCache::new(4));
        let metrics = Metrics::new();
        let mut cfg = config(4);
        cfg.plan_cache_enabled = false;
        for i in 0..3 {
            let (job, rx) = make_job(i, &a, vec![vec![1.0; 32]]);
            metrics.in_flight.fetch_add(1, Ordering::Relaxed);
            execute_batch(
                Batch { jobs: vec![job] },
                &cache,
                &cfg,
                &metrics,
                &breaker(),
                &admission(4),
                None,
            );
            assert!(rx.recv().unwrap().is_ok());
        }
        let s = metrics.snapshot();
        assert_eq!(s.partitioner_invocations, 3);
        assert_eq!(s.cache_hits, 0);
        assert_eq!(s.cache_misses, 0);
    }

    #[test]
    fn solver_failure_is_reported_not_panicked() {
        // CG on a non-symmetric matrix must surface a typed error.
        let coo = hpf_sparse::CooMatrix::from_triplets(
            3,
            3,
            vec![(0, 0, 2.0), (0, 1, 1.0), (1, 1, 2.0), (2, 2, 2.0)],
        )
        .unwrap();
        let a = Arc::new(hpf_sparse::CsrMatrix::from_coo(&coo));
        let (job, rx) = make_job(1, &a, vec![vec![1.0; 3]]);
        let cache = Mutex::new(PlanCache::new(2));
        let metrics = Metrics::new();
        metrics.in_flight.fetch_add(1, Ordering::Relaxed);
        execute_batch(
            Batch { jobs: vec![job] },
            &cache,
            &config(2),
            &metrics,
            &breaker(),
            &admission(2),
            None,
        );
        let out = rx.recv().unwrap();
        assert!(matches!(out, Err(ServiceError::Solver(_))) || out.is_ok());
    }

    /// The HPCG-class path end to end at the worker level: an MG-PCG
    /// job solves through the plan's cached hierarchy, the trace carries
    /// the V-cycle labels, and a second batch reuses the cached
    /// (depth-keyed) plan without re-partitioning.
    #[test]
    fn hpcg_jobs_run_mg_pcg_through_the_cached_hierarchy() {
        use hpf_mg::GridDims;
        let dims = GridDims::d2(15, 15);
        let cache = Mutex::new(PlanCache::new(4));
        let metrics = Metrics::new();
        for round in 0..2 {
            let mut request = SolveRequest::hpcg(dims, 3, vec![1.0; dims.n()]);
            request.stop = StopCriterion::RelativeResidual(1e-8);
            let (tx, rx) = unbounded();
            let job = Job {
                id: round,
                fingerprint: Fingerprint::of(&request.matrix),
                request,
                submitted: Instant::now(),
                admission_us: 0,
                responder: tx,
            };
            metrics.in_flight.fetch_add(1, Ordering::Relaxed);
            execute_batch(
                Batch { jobs: vec![job] },
                &cache,
                &config(4),
                &metrics,
                &breaker(),
                &admission(4),
                None,
            );
            let resp = rx.recv().unwrap().unwrap();
            assert!(resp.stats[0].converged);
            assert_eq!(resp.solver_used.name(), "pcg-mg");
            let labels: Vec<&str> = resp
                .trace
                .by_label
                .iter()
                .map(|l| l.label.as_str())
                .collect();
            // Redistribute labels are split per level by
            // `summary_by_label` ("mg-restrict [level=0]", ...).
            for want in ["mg-smooth", "mg-halo", "mg-restrict", "mg-prolong"] {
                assert!(
                    labels.iter().any(|l| l.starts_with(want)),
                    "missing {want} in {labels:?}"
                );
            }
            assert!(
                labels.iter().any(|l| l.contains("[level=1]")),
                "no per-level split in {labels:?}"
            );
        }
        let s = metrics.snapshot();
        assert_eq!(s.completed, 2);
        // One partition (and one hierarchy build) served both rounds.
        assert_eq!(s.partitioner_invocations, 1);
        assert_eq!(s.cache_hits, 1);
    }

    #[test]
    fn multi_rhs_job_returns_one_solution_per_rhs() {
        let a = Arc::new(gen::banded_spd(24, 2, 7));
        let rhs: Vec<Vec<f64>> = (0..4)
            .map(|k| (0..24).map(|i| ((i + k) % 5) as f64).collect())
            .collect();
        let (job, rx) = make_job(1, &a, rhs.clone());
        let cache = Mutex::new(PlanCache::new(2));
        let metrics = Metrics::new();
        metrics.in_flight.fetch_add(1, Ordering::Relaxed);
        execute_batch(
            Batch { jobs: vec![job] },
            &cache,
            &config(4),
            &metrics,
            &breaker(),
            &admission(2),
            None,
        );
        let resp = rx.recv().unwrap().unwrap();
        assert_eq!(resp.solutions.len(), 4);
        assert_eq!(resp.stats.len(), 4);
        for (x, b) in resp.solutions.iter().zip(&rhs) {
            let ax = a.matvec(x).unwrap();
            let res: f64 = ax
                .iter()
                .zip(b)
                .map(|(u, v)| (u - v) * (u - v))
                .sum::<f64>()
                .sqrt();
            let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!(res <= 1e-6 * bn.max(1.0), "residual {res}");
        }
        assert_eq!(metrics.snapshot().rhs_solved, 4);
    }
}
