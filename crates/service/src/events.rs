//! Service-level lifecycle events for live telemetry.
//!
//! The simulated machine already streams its own [`hpf_machine::Event`]s
//! through [`hpf_machine::EventSink`]; this module is the *service-side*
//! counterpart — the request lifecycle the machine cannot see: admission
//! verdicts, sheds, deadline expiries, supervisor kills, rollbacks, and
//! completions. `hpf-obs` depends on `hpf-service` (not the other way
//! round), so the service defines the event vocabulary and a sink
//! abstraction here, and the observability layer plugs an adapter in via
//! [`crate::ServiceConfig::event_sink`].
//!
//! Every variant carries the request's `trace_id`, the same id the
//! worker stamps as a `trace=<hex>` span segment on the simulated
//! machine — so a consumer can join a service-side shed or kill with the
//! machine-side spans of the very same request.

use crate::request::QosClass;
use std::sync::Arc;

/// One service lifecycle event, emitted at the moment it happens.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServiceEvent {
    /// Admission accepted the job into its class queue.
    Admitted {
        trace_id: u64,
        class: QosClass,
        /// Cost-oracle latency prediction at the door, µs.
        predicted_us: u64,
    },
    /// Admission refused the job: predicted latency exceeds the
    /// deadline budget ([`crate::ServiceError::Shed`]).
    Shed {
        trace_id: u64,
        class: QosClass,
        predicted_us: u64,
        budget_us: u64,
    },
    /// The job's deadline passed while it was still queued.
    DeadlineExpired { trace_id: u64, class: QosClass },
    /// The supervisor killed the worker running this job
    /// (heartbeat-stale hang → cooperative abort).
    WorkerKilled {
        trace_id: u64,
        class: QosClass,
        /// Wall time the job had been running when killed, µs.
        after_us: u64,
    },
    /// A killed/crashed worker slot was respawned by the supervisor.
    WorkerRestarted {
        /// Worker slot index.
        worker: usize,
    },
    /// A protected solver rolled back to a checkpoint mid-solve.
    Rollback { trace_id: u64, class: QosClass },
    /// The job is being re-attempted after a retryable failure.
    Retry {
        trace_id: u64,
        class: QosClass,
        /// 1-based attempt number about to run.
        attempt: usize,
    },
    /// Terminal outcome: the job's handle has been answered.
    Completed {
        trace_id: u64,
        class: QosClass,
        /// Queue wait + solve wall time, µs.
        latency_us: u64,
        /// `false` for any typed failure (breaker, kill, breakdown...).
        ok: bool,
        /// Stable outcome tag — `"ok"` on success, otherwise the failure
        /// class ([`crate::ServiceError::outcome`]): `"worker-killed"`,
        /// `"recovery-exhausted"`, `"deadline"`, ... This is what the
        /// flight recorder keys its dump triggers and verdicts on.
        outcome: &'static str,
    },
}

impl ServiceEvent {
    /// Stable kind label (used by bus JSONL and sampling policy).
    pub fn kind(&self) -> &'static str {
        match self {
            ServiceEvent::Admitted { .. } => "admitted",
            ServiceEvent::Shed { .. } => "shed",
            ServiceEvent::DeadlineExpired { .. } => "deadline-expired",
            ServiceEvent::WorkerKilled { .. } => "worker-killed",
            ServiceEvent::WorkerRestarted { .. } => "worker-restarted",
            ServiceEvent::Rollback { .. } => "rollback",
            ServiceEvent::Retry { .. } => "retry",
            ServiceEvent::Completed { .. } => "completed",
        }
    }

    /// The request id this event belongs to (0 when the event is not
    /// tied to one request, e.g. a worker-slot respawn).
    pub fn trace_id(&self) -> u64 {
        match *self {
            ServiceEvent::Admitted { trace_id, .. }
            | ServiceEvent::Shed { trace_id, .. }
            | ServiceEvent::DeadlineExpired { trace_id, .. }
            | ServiceEvent::WorkerKilled { trace_id, .. }
            | ServiceEvent::Rollback { trace_id, .. }
            | ServiceEvent::Retry { trace_id, .. }
            | ServiceEvent::Completed { trace_id, .. } => trace_id,
            ServiceEvent::WorkerRestarted { .. } => 0,
        }
    }

    /// Operationally significant events (faults of the service plane)
    /// that a sampling policy must never drop.
    pub fn is_critical(&self) -> bool {
        !matches!(
            self,
            ServiceEvent::Admitted { .. } | ServiceEvent::Completed { .. }
        )
    }
}

/// Callback fired with every [`ServiceEvent`] as it happens, from
/// whichever thread produced it (submitter, worker, supervisor). Runs
/// on hot paths — implementations should be a sampling decision and a
/// lock-free push at most.
#[derive(Clone)]
pub struct ServiceEventSink(pub Arc<dyn Fn(&ServiceEvent) + Send + Sync>);

impl ServiceEventSink {
    pub fn new(f: impl Fn(&ServiceEvent) + Send + Sync + 'static) -> Self {
        ServiceEventSink(Arc::new(f))
    }

    pub fn emit(&self, event: &ServiceEvent) {
        (self.0)(event);
    }
}

impl std::fmt::Debug for ServiceEventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ServiceEventSink(..)")
    }
}

/// Emit through an optional sink (the no-telemetry fast path is one
/// `Option` test).
pub fn emit(sink: &Option<ServiceEventSink>, event: ServiceEvent) {
    if let Some(s) = sink {
        s.emit(&event);
    }
}

/// The residual-series tail of one solve attempt — what the worker's
/// bounded [`hpf_solvers::TailObserver`] retained — flushed through
/// [`SolverTapSink`] after the attempt finishes (success, typed failure,
/// or a supervisor kill mid-attempt). The flight recorder stores the
/// last flush per trace as divergence/stagnation evidence.
#[derive(Debug, Clone)]
pub struct SolverTail {
    pub trace_id: u64,
    /// 1-based attempt this tail belongs to.
    pub attempt: usize,
    /// Post-escalation solver that ran the attempt.
    pub solver: &'static str,
    /// Last iterations, oldest first.
    pub samples: Vec<hpf_solvers::IterSample>,
    /// `(iteration, reason)` protected-solver rollbacks.
    pub rollbacks: Vec<(usize, String)>,
    /// Iterations with a restart-from-true-residual.
    pub restarts: Vec<usize>,
    /// Samples recorded but pushed out of the bounded ring.
    pub overwritten: u64,
}

/// Callback receiving one [`SolverTail`] per finished solve attempt.
#[derive(Clone)]
pub struct SolverTapSink(pub Arc<dyn Fn(&SolverTail) + Send + Sync>);

impl SolverTapSink {
    pub fn new(f: impl Fn(&SolverTail) + Send + Sync + 'static) -> Self {
        SolverTapSink(Arc::new(f))
    }

    pub fn emit(&self, tail: &SolverTail) {
        (self.0)(tail);
    }
}

impl std::fmt::Debug for SolverTapSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SolverTapSink(..)")
    }
}

/// Deterministic non-zero trace id for a job id (splitmix64 finalizer —
/// well-mixed bits, so probabilistic head sampling keyed on the id is
/// uniform even though job ids are sequential).
pub fn derive_trace_id(job_id: u64) -> u64 {
    let mut x = job_id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn kinds_are_stable_and_criticality_matches_policy() {
        let e = ServiceEvent::Shed {
            trace_id: 7,
            class: QosClass::Interactive,
            predicted_us: 100,
            budget_us: 10,
        };
        assert_eq!(e.kind(), "shed");
        assert_eq!(e.trace_id(), 7);
        assert!(e.is_critical());
        let ok = ServiceEvent::Completed {
            trace_id: 9,
            class: QosClass::Batch,
            latency_us: 1,
            ok: true,
            outcome: "ok",
        };
        assert!(!ok.is_critical(), "completions are head-sampled");
        assert_eq!(
            ServiceEvent::WorkerRestarted { worker: 1 }.trace_id(),
            0,
            "slot respawns are not tied to one request"
        );
    }

    #[test]
    fn emit_is_a_noop_without_a_sink_and_forwards_with_one() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let tap = seen.clone();
        let sink = Some(ServiceEventSink::new(move |e: &ServiceEvent| {
            tap.lock().unwrap().push(e.kind());
        }));
        emit(&None, ServiceEvent::WorkerRestarted { worker: 0 });
        emit(&sink, ServiceEvent::WorkerRestarted { worker: 0 });
        assert_eq!(*seen.lock().unwrap(), vec!["worker-restarted"]);
    }
}
