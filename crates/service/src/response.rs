//! Responses, per-job reporting, and the service error type.

use crate::fingerprint::Fingerprint;
use hpf_machine::{LabelSummary, Trace};
use hpf_solvers::{SolveStats, SolverError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// Compact, machine-readable digest of the simulated-machine trace a job
/// induced — totals plus the per-label breakdown.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Number of traced events.
    pub events: usize,
    /// Total simulated time (communication + compute).
    pub total_time: f64,
    /// Simulated communication time.
    pub comm_time: f64,
    /// Simulated computation time.
    pub compute_time: f64,
    /// Words moved over the simulated network.
    pub total_comm_words: usize,
    /// Aggregates per event label ("dot-merge", "bcast-p", ...).
    pub by_label: Vec<LabelSummary>,
}

impl TraceSummary {
    pub fn from_trace(trace: &Trace) -> Self {
        TraceSummary {
            events: trace.len(),
            total_time: trace.total_time(),
            comm_time: trace.comm_time(),
            compute_time: trace.compute_time(),
            total_comm_words: trace.total_comm_words(),
            by_label: trace.summary_by_label(),
        }
    }
}

/// How the plan for a job was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanSource {
    /// Served from the plan cache.
    CacheHit,
    /// Partitioned on demand and (if caching is on) inserted.
    Built,
}

/// Everything the service reports back for one accepted job.
#[derive(Debug, Clone)]
pub struct SolveResponse {
    /// Service-assigned job id (submission order).
    pub job_id: u64,
    /// One solution per right-hand side, in request order.
    pub solutions: Vec<Vec<f64>>,
    /// Solver statistics per right-hand side.
    pub stats: Vec<SolveStats>,
    /// Structural fingerprint the plan was keyed by.
    pub fingerprint: Fingerprint,
    /// Whether the plan came from the cache.
    pub plan_source: PlanSource,
    /// nnz-load imbalance of the plan's partition (1.0 = perfect).
    pub plan_imbalance: f64,
    /// `USING <name>` identifier of the partitioner that laid out the
    /// plan this job ran under.
    pub partitioner: &'static str,
    /// Number of other jobs merged into the same execution batch.
    pub batched_with: usize,
    /// Solver that actually produced the answer (differs from the
    /// requested one after escalation).
    pub solver_used: crate::request::SolverKind,
    /// Solve attempts consumed (1 = first try succeeded).
    pub attempts: usize,
    /// Checkpoint/rollback activity, when the protected solvers ran.
    pub recovery: Option<hpf_solvers::RecoveryStats>,
    /// Digest of the simulated-machine trace for this job's solves.
    pub trace: TraceSummary,
    /// Wall-clock time spent queued before execution started.
    pub wait_time: Duration,
    /// Wall-clock time spent executing this job's solves.
    pub solve_time: Duration,
}

/// Typed failure modes of the service.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The bounded job queue is full — backpressure, try again later.
    Busy { queue_capacity: usize },
    /// The job's deadline passed before execution began.
    DeadlineExceeded { waited: Duration },
    /// The request is malformed (shape mismatch, empty RHS set, ...).
    InvalidRequest(String),
    /// The solver itself failed (breakdown, dimension mismatch, ...).
    Solver(SolverError),
    /// The executing worker panicked; the pool survives, the job fails.
    WorkerPanic(String),
    /// The service shut down before the job completed.
    Shutdown,
    /// This structure's circuit breaker is open: its recent jobs kept
    /// failing, so the service refuses new ones until the cooldown.
    CircuitOpen { fingerprint: Fingerprint },
    /// Admission control refused the job on arrival: the cost oracle's
    /// `predicted` completion time (backlog ahead plus this job's own
    /// solve) exceeds the request's deadline `budget`. Cheaper for
    /// everyone than queuing work that is doomed to miss.
    Shed {
        predicted: Duration,
        budget: Duration,
    },
    /// The supervisor killed the worker executing this job (its progress
    /// heartbeat went stale); `after` is how long the job had been
    /// executing. The job may be resubmitted.
    WorkerKilled { after: Duration },
}

impl ServiceError {
    /// Stable outcome tag carried on the terminal
    /// [`crate::ServiceEvent::Completed`] event — the flight recorder's
    /// dump-trigger and verdict vocabulary. `"ok"` is reserved for
    /// success.
    pub fn outcome(&self) -> &'static str {
        match self {
            ServiceError::Busy { .. } => "busy",
            ServiceError::DeadlineExceeded { .. } => "deadline",
            ServiceError::InvalidRequest(_) => "invalid-request",
            ServiceError::Solver(e) => match e {
                SolverError::RecoveryExhausted { .. } => "recovery-exhausted",
                SolverError::Stagnation { .. } => "stagnation",
                SolverError::NonFinite { .. } => "non-finite",
                SolverError::Breakdown { .. } => "breakdown",
                SolverError::SingularMatrix { .. } => "singular",
                SolverError::NotSquare { .. }
                | SolverError::DimensionMismatch { .. }
                | SolverError::NotSymmetric => "invalid-operator",
            },
            ServiceError::WorkerPanic(_) => "worker-panic",
            ServiceError::Shutdown => "shutdown",
            ServiceError::CircuitOpen { .. } => "circuit-open",
            ServiceError::Shed { .. } => "shed",
            ServiceError::WorkerKilled { .. } => "worker-killed",
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Busy { queue_capacity } => {
                write!(f, "job queue full ({queue_capacity} slots)")
            }
            ServiceError::DeadlineExceeded { waited } => {
                write!(f, "deadline exceeded after {:?} in queue", waited)
            }
            ServiceError::InvalidRequest(why) => write!(f, "invalid request: {why}"),
            ServiceError::Solver(e) => write!(f, "solver failed: {e}"),
            ServiceError::WorkerPanic(msg) => write!(f, "worker panicked: {msg}"),
            ServiceError::Shutdown => write!(f, "service shut down"),
            ServiceError::CircuitOpen { fingerprint } => {
                write!(f, "circuit open for structure {}", fingerprint.short())
            }
            ServiceError::Shed { predicted, budget } => {
                write!(
                    f,
                    "shed on arrival: predicted completion {:?} exceeds deadline budget {:?}",
                    predicted, budget
                )
            }
            ServiceError::WorkerKilled { after } => {
                write!(f, "worker killed by supervisor after {:?} executing", after)
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<SolverError> for ServiceError {
    fn from(e: SolverError) -> Self {
        ServiceError::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_machine::{CostModel, Machine, Topology};

    #[test]
    fn trace_summary_totals_match_trace() {
        let mut m = Machine::new(4, Topology::Hypercube, CostModel::mpp_1995());
        m.set_tracing(true);
        m.allreduce(1, "dot-merge");
        m.compute_uniform(100, "local");
        let s = TraceSummary::from_trace(m.trace());
        assert_eq!(s.events, 2);
        assert_eq!(s.by_label.len(), 2);
        assert!((s.total_time - (s.comm_time + s.compute_time)).abs() < 1e-12);
    }

    #[test]
    fn error_messages_name_the_cause() {
        let busy = ServiceError::Busy { queue_capacity: 4 };
        assert!(busy.to_string().contains("full"));
        let dl = ServiceError::DeadlineExceeded {
            waited: Duration::from_millis(3),
        };
        assert!(dl.to_string().contains("deadline"));
        let sv: ServiceError = SolverError::NotSymmetric.into();
        assert!(sv.to_string().contains("symmetric"));
    }
}
