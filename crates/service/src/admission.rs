//! Deadline-aware admission control driven by the §4 cost oracle.
//!
//! A job carrying a deadline is only worth queuing if it can plausibly
//! finish inside it. At submit time the controller prices the job with
//! the closed-form per-iteration CG cost
//! ([`hpf_machine::cg_iteration_seconds`]) scaled by two continuously
//! calibrated factors learned from completed solves:
//!
//! * **iterations** — an EWMA of `iterations / √n` (CG's condition-number
//!   driven iteration count grows roughly with √κ, and for the banded
//!   test families κ grows with n), clamped to `[1, max_iters]`;
//! * **wall calibration** — an EWMA of `wall µs / simulated second`,
//!   mapping the oracle's simulated seconds onto this host's real time
//!   (plan-cache hits, operator build, and scheduling overhead included).
//!
//! The admission inequality is then
//!
//! ```text
//!   queue_ahead_µs / workers  +  predicted_self_µs  >  deadline_µs   ⇒ Shed
//! ```
//!
//! where `queue_ahead_µs` estimates how much admitted-but-unfinished
//! work will actually be served *before* this job. That estimate must
//! respect the dispatcher's weighted-fair dequeue: a batch flood does
//! not delay an interactive job by the whole batch backlog, because the
//! interactive class keeps its `w_c / Σw` share of worker attention.
//! Backlog is therefore tracked per QoS class, and a class-`c` job's
//! queue-ahead is the smaller of its guaranteed-share drain time and
//! the FIFO bound:
//!
//! ```text
//!   queue_ahead_µs = min(backlog_c_µs · Σw / w_c,  Σ backlog_µs)
//! ```
//!
//! (Pricing the whole backlog against every class regardless of weight
//! over-sheds badly under sustained overload — the E27 hindsight audit
//! caught exactly that, as a shed-when-feasible rate near 80%.) Until
//! [`ServiceConfig::admission_min_samples`] completions have calibrated
//! the factors, everything is admitted (cold start must not shed), and
//! jobs without deadlines are never shed — they only contribute backlog.

use crate::request::{QosClass, ServiceConfig, SolveRequest};
use hpf_machine::{cg_iteration_seconds, CostModel, Topology};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// EWMA smoothing factor for both calibration series.
const ALPHA: f64 = 0.2;

/// Prior for `iterations / √n` before any observation (a safe
/// under-estimate keeps cold predictions optimistic — admission errs
/// toward accepting).
const ITERS_PER_SQRT_N_PRIOR: f64 = 2.0;

/// Verdict of [`AdmissionController::decide`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionDecision {
    /// Queue the job; `predicted_us` is its backlog contribution (0
    /// until calibrated).
    Admit { predicted_us: u64 },
    /// Refuse on arrival: predicted completion exceeds the deadline.
    Shed {
        predicted: Duration,
        budget: Duration,
    },
}

/// Shared, lock-free admission state (atomics only; submit is on the
/// caller's thread and must stay cheap).
#[derive(Debug)]
pub struct AdmissionController {
    enabled: bool,
    min_samples: u64,
    workers: u64,
    np: usize,
    topology: Topology,
    cost: CostModel,
    /// Completed-solve observations so far.
    samples: AtomicU64,
    /// EWMA of wall µs per simulated second (f64 bits).
    calib_us_per_sim: AtomicU64,
    /// EWMA of `iterations / √n` (f64 bits).
    iters_per_sqrt_n: AtomicU64,
    /// Predicted µs of admitted-but-unfinished work, per QoS class.
    backlog_us: [AtomicU64; 3],
    /// Dequeue weights (zero treated as one, matching the dispatcher).
    weights: [u64; 3],
}

impl AdmissionController {
    pub fn new(config: &ServiceConfig) -> Self {
        AdmissionController {
            enabled: config.admission_enabled,
            min_samples: config.admission_min_samples,
            workers: config.workers.max(1) as u64,
            np: config.np,
            topology: config.topology,
            cost: CostModel::mpp_1995(),
            samples: AtomicU64::new(0),
            calib_us_per_sim: AtomicU64::new(0f64.to_bits()),
            iters_per_sqrt_n: AtomicU64::new(ITERS_PER_SQRT_N_PRIOR.to_bits()),
            backlog_us: Default::default(),
            weights: std::array::from_fn(|i| config.qos_weights[i].max(1) as u64),
        }
    }

    /// Whether enough completions have been observed to trust the
    /// calibration (and therefore to shed).
    pub fn calibrated(&self) -> bool {
        self.enabled && self.samples.load(Ordering::Relaxed) >= self.min_samples
    }

    /// Predicted wall µs for `request`'s own execution (queue excluded).
    pub fn predict_self_us(&self, request: &SolveRequest) -> u64 {
        let n = request.matrix.n_rows();
        let nnz = request.matrix.nnz();
        let per_iter = cg_iteration_seconds(n, nnz, self.np, self.topology, &self.cost);
        let est_iters = (load_f64(&self.iters_per_sqrt_n) * (n as f64).sqrt())
            .clamp(1.0, request.max_iters.max(1) as f64);
        let sim_seconds = per_iter * est_iters * request.rhs.len().max(1) as f64;
        let us = sim_seconds * load_f64(&self.calib_us_per_sim);
        if us.is_finite() && us > 0.0 {
            us as u64
        } else {
            0
        }
    }

    /// Predicted µs of already-admitted work served before a new job of
    /// `class`: the lesser of the class's guaranteed-share drain time
    /// (`backlog_c · Σw / w_c`) and the FIFO bound (total backlog),
    /// spread over the workers.
    pub fn queue_ahead_us(&self, class: QosClass) -> u64 {
        let own = self.backlog_us[class.index()].load(Ordering::Relaxed);
        let total: u64 = self
            .backlog_us
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum();
        let weight_sum: u64 = self.weights.iter().sum();
        // weights are clamped to ≥ 1 at construction, so this divides.
        let share_bound = own.saturating_mul(weight_sum) / self.weights[class.index()];
        share_bound.min(total) / self.workers
    }

    /// The admission verdict for `request` given the current backlog.
    pub fn decide(&self, request: &SolveRequest) -> AdmissionDecision {
        if !self.calibrated() {
            return AdmissionDecision::Admit { predicted_us: 0 };
        }
        let self_us = self.predict_self_us(request);
        if let Some(budget) = request.deadline {
            let predicted_us = self.queue_ahead_us(request.qos).saturating_add(self_us);
            let budget_us = budget.as_micros().min(u64::MAX as u128) as u64;
            if predicted_us > budget_us {
                return AdmissionDecision::Shed {
                    predicted: Duration::from_micros(predicted_us),
                    budget,
                };
            }
        }
        AdmissionDecision::Admit {
            predicted_us: self_us,
        }
    }

    /// Account an admitted job's predicted cost into its class backlog.
    /// Must be balanced by exactly one [`AdmissionController::release`]
    /// (same class) when the job reaches a terminal response.
    pub fn admit(&self, class: QosClass, predicted_us: u64) {
        if predicted_us > 0 {
            self.backlog_us[class.index()].fetch_add(predicted_us, Ordering::Relaxed);
        }
    }

    /// Remove a terminal job's contribution from its class backlog.
    pub fn release(&self, class: QosClass, predicted_us: u64) {
        if predicted_us > 0 {
            // fetch_update to saturate at zero rather than wrapping.
            let _ = self.backlog_us[class.index()].fetch_update(
                Ordering::Relaxed,
                Ordering::Relaxed,
                |v| Some(v.saturating_sub(predicted_us)),
            );
        }
    }

    /// Current predicted backlog in µs, all classes (for reports and
    /// tests).
    pub fn backlog_us(&self) -> u64 {
        self.backlog_us
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Feed one completed solve back into the calibration: `n` matrix
    /// rows, mean `iterations` per right-hand side, the attempt's
    /// simulated seconds, and the job's wall execution time. Callers
    /// should only report clean first-attempt successes — retries and
    /// fault-plan runs would teach the oracle the faults, not the costs.
    pub fn observe(&self, n: usize, iterations: f64, sim_seconds: f64, wall: Duration) {
        if !self.enabled || sim_seconds <= 0.0 || n == 0 {
            return;
        }
        let wall_us = wall.as_micros().min(u64::MAX as u128) as f64;
        let calib = wall_us / sim_seconds;
        let iters_norm = (iterations / (n as f64).sqrt()).max(0.0);
        if !calib.is_finite() || !iters_norm.is_finite() {
            return;
        }
        let first = self.samples.fetch_add(1, Ordering::Relaxed) == 0;
        ewma_update(&self.calib_us_per_sim, calib, first);
        ewma_update(&self.iters_per_sqrt_n, iters_norm, first);
    }
}

fn load_f64(a: &AtomicU64) -> f64 {
    f64::from_bits(a.load(Ordering::Relaxed))
}

/// Racy-but-harmless EWMA update (metrics-grade accuracy: a lost update
/// under contention skews the estimate by one sample at most).
fn ewma_update(cell: &AtomicU64, sample: f64, first: bool) {
    let next = if first {
        sample
    } else {
        let old = f64::from_bits(cell.load(Ordering::Relaxed));
        (1.0 - ALPHA) * old + ALPHA * sample
    };
    cell.store(next.to_bits(), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{QosClass, ServiceConfig};
    use hpf_sparse::gen;
    use std::sync::Arc;

    fn controller(min_samples: u64) -> AdmissionController {
        AdmissionController::new(&ServiceConfig {
            admission_min_samples: min_samples,
            workers: 2,
            ..ServiceConfig::default()
        })
    }

    fn request(deadline: Option<Duration>) -> SolveRequest {
        let a = Arc::new(gen::banded_spd(64, 3, 9));
        let mut r = SolveRequest::new(a, vec![1.0; 64]).qos(QosClass::Interactive);
        r.deadline = deadline;
        r
    }

    /// Feed completions until calibrated: 1 simulated second ≙ 1000 µs
    /// wall, √n iterations.
    fn calibrate(c: &AdmissionController) {
        for _ in 0..8 {
            c.observe(64, 8.0, 1.0, Duration::from_millis(1));
        }
        assert!(c.calibrated());
    }

    #[test]
    fn cold_start_admits_everything() {
        let c = controller(8);
        let verdict = c.decide(&request(Some(Duration::from_nanos(1))));
        assert_eq!(verdict, AdmissionDecision::Admit { predicted_us: 0 });
    }

    #[test]
    fn calibrated_controller_sheds_impossible_deadlines() {
        let c = controller(8);
        calibrate(&c);
        // Prediction is strictly positive once calibrated, so a 1 ns
        // budget must be shed, and an hour must be admitted.
        match c.decide(&request(Some(Duration::from_nanos(1)))) {
            AdmissionDecision::Shed { predicted, budget } => {
                assert!(predicted > budget);
                assert_eq!(budget, Duration::from_nanos(1));
            }
            other => panic!("expected Shed, got {other:?}"),
        }
        match c.decide(&request(Some(Duration::from_secs(3600)))) {
            AdmissionDecision::Admit { predicted_us } => assert!(predicted_us > 0),
            other => panic!("expected Admit, got {other:?}"),
        }
    }

    #[test]
    fn jobs_without_deadlines_are_admitted_but_priced() {
        let c = controller(8);
        calibrate(&c);
        match c.decide(&request(None)) {
            AdmissionDecision::Admit { predicted_us } => assert!(predicted_us > 0),
            other => panic!("expected Admit, got {other:?}"),
        }
    }

    #[test]
    fn backlog_tightens_admission_and_release_relaxes_it() {
        let c = controller(8);
        calibrate(&c);
        let r = request(None);
        let self_us = c.predict_self_us(&r);
        assert!(self_us > 0);
        // A moderate deadline fits an empty queue...
        let budget = Duration::from_micros(2 * self_us);
        let mut req = request(Some(budget));
        req.deadline = Some(budget);
        assert!(matches!(c.decide(&req), AdmissionDecision::Admit { .. }));
        // ...but not a backlog worth many jobs per worker in the job's
        // own class.
        c.admit(QosClass::Interactive, self_us * 100);
        assert!(matches!(c.decide(&req), AdmissionDecision::Shed { .. }));
        c.release(QosClass::Interactive, self_us * 100);
        assert!(matches!(c.decide(&req), AdmissionDecision::Admit { .. }));
        // Release saturates instead of wrapping.
        c.release(QosClass::Interactive, u64::MAX);
        assert_eq!(c.backlog_us(), 0);
    }

    #[test]
    fn batch_flood_does_not_shed_interactive_jobs() {
        let c = controller(8);
        calibrate(&c);
        let self_us = c.predict_self_us(&request(None));
        let budget = Duration::from_micros(2 * self_us);
        // A huge batch backlog: FIFO pricing would predict hours of
        // queueing, but the interactive class keeps its weighted-fair
        // share, so its own empty backlog is what counts.
        c.admit(QosClass::Batch, self_us * 10_000);
        assert_eq!(c.queue_ahead_us(QosClass::Interactive), 0);
        assert!(matches!(
            c.decide(&request(Some(budget))),
            AdmissionDecision::Admit { .. }
        ));
        // The flooded class itself still sheds, and its share bound is
        // capped by the FIFO bound (it cannot wait longer than the
        // whole backlog drained at full rate).
        let batch_req = {
            let mut r = request(Some(budget));
            r.qos = QosClass::Batch;
            r
        };
        assert!(matches!(
            c.decide(&batch_req),
            AdmissionDecision::Shed { .. }
        ));
        assert!(c.queue_ahead_us(QosClass::Batch) <= c.backlog_us());
    }

    #[test]
    fn disabled_controller_never_sheds() {
        let c = AdmissionController::new(&ServiceConfig {
            admission_enabled: false,
            admission_min_samples: 0,
            ..ServiceConfig::default()
        });
        for _ in 0..16 {
            c.observe(64, 8.0, 1.0, Duration::from_millis(1));
        }
        assert!(!c.calibrated());
        assert_eq!(
            c.decide(&request(Some(Duration::from_nanos(1)))),
            AdmissionDecision::Admit { predicted_us: 0 }
        );
    }

    #[test]
    fn prediction_scales_with_problem_size_and_rhs_count() {
        let c = controller(1);
        c.observe(64, 8.0, 1.0, Duration::from_millis(1));
        let small = c.predict_self_us(&request(None));
        let big_matrix = Arc::new(gen::banded_spd(512, 3, 9));
        let big = c.predict_self_us(&SolveRequest::new(big_matrix.clone(), vec![1.0; 512]));
        assert!(big > small, "bigger system must price higher");
        let multi = c.predict_self_us(&SolveRequest::with_rhs_set(
            big_matrix,
            vec![vec![1.0; 512]; 4],
        ));
        assert!(multi > 3 * big, "4 right-hand sides ≈ 4× one");
    }
}
