//! Retry, escalation, and circuit-breaking policies.
//!
//! Three layers of defence against failing solves:
//!
//! 1. **Retry with capped exponential backoff** — transient faults
//!    (injected corruption, stragglers) rarely strike twice; a re-run on
//!    a clean machine usually succeeds.
//! 2. **Escalation** — a numerical breakdown is not transient: CG on a
//!    near-indefinite system keeps breaking down no matter how often it
//!    is retried. Each retry therefore also steps down a chain of
//!    progressively more robust (and more expensive) methods:
//!    CG → BiCGSTAB → GMRES.
//! 3. **Circuit breaker** — a structure whose jobs keep failing even
//!    after escalation should stop consuming partitioner and worker
//!    time. After a threshold of consecutive failures the breaker opens
//!    for that [`Fingerprint`] and jobs are refused immediately with
//!    [`crate::ServiceError::CircuitOpen`]; after a cooldown one trial
//!    job is let through (half-open) and its outcome closes or re-opens
//!    the circuit.

use crate::fingerprint::Fingerprint;
use crate::request::SolverKind;
use hpf_solvers::SolverError;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Delay before retry `attempt` (1-based): `base * 2^(attempt-1)`,
/// capped at `cap`.
pub fn backoff_delay(base: Duration, cap: Duration, attempt: u32) -> Duration {
    let shift = attempt.saturating_sub(1).min(20);
    base.saturating_mul(1u32 << shift).min(cap)
}

/// [`backoff_delay`] with deterministic jitter: the full exponential
/// delay is scaled by a factor in `[0.5, 1.0)` drawn from a splitmix64
/// hash of `(job_id, attempt)`. Jitter de-synchronises retry storms
/// (jobs that failed together stop retrying together), and seeding it
/// from the job id keeps every job's schedule reproducible — the same
/// job retries at the same instants in every run.
pub fn backoff_delay_jittered(
    base: Duration,
    cap: Duration,
    attempt: u32,
    job_id: u64,
) -> Duration {
    let full = backoff_delay(base, cap, attempt);
    let h = splitmix64(job_id ^ ((attempt as u64) << 32));
    // Top 53 bits → uniform in [0, 1), then map to [0.5, 1.0).
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
    full.mul_f64(0.5 + 0.5 * unit)
}

/// splitmix64: tiny, high-quality 64-bit mixer (public-domain constants).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Whether a solver error class can plausibly be cured by a retry or an
/// escalation. Structural errors (dimension mismatch, non-square,
/// singular diagonal) fail the same way every time and are not retried.
pub fn is_retryable(e: &SolverError) -> bool {
    matches!(
        e,
        SolverError::Breakdown { .. }
            | SolverError::NonFinite { .. }
            | SolverError::Stagnation { .. }
            | SolverError::RecoveryExhausted { .. }
    )
}

/// Next, more robust method in the escalation chain; `None` when the
/// chain is exhausted.
pub fn escalate(kind: SolverKind) -> Option<SolverKind> {
    match kind {
        SolverKind::Cg | SolverKind::PcgJacobi | SolverKind::PcgMg { .. } | SolverKind::Bicg => {
            Some(SolverKind::Bicgstab)
        }
        SolverKind::Bicgstab => Some(SolverKind::Gmres { restart: 30 }),
        SolverKind::Gmres { .. } => None,
    }
}

/// Verdict from [`CircuitBreaker::admit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Circuit closed (or half-open trial): run the job.
    Allow,
    /// Circuit open: refuse without executing.
    Refuse,
}

#[derive(Debug, Default)]
struct BreakerEntry {
    consecutive_failures: u32,
    opened_at: Option<Instant>,
}

/// Per-fingerprint circuit breaker shared by the worker pool.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    entries: Mutex<HashMap<Fingerprint, BreakerEntry>>,
}

impl CircuitBreaker {
    /// `threshold` consecutive failures open the circuit for `cooldown`.
    /// A threshold of 0 disables the breaker entirely.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        CircuitBreaker {
            threshold,
            cooldown,
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// Decide whether a job keyed by `fp` may run now. An open circuit
    /// whose cooldown has elapsed admits one half-open trial (and
    /// re-arms the cooldown so concurrent workers don't all rush in).
    pub fn admit(&self, fp: Fingerprint) -> Admission {
        if self.threshold == 0 {
            return Admission::Allow;
        }
        let mut entries = self.entries.lock();
        match entries.get_mut(&fp) {
            Some(e) => match e.opened_at {
                Some(t) if t.elapsed() < self.cooldown => Admission::Refuse,
                Some(_) => {
                    e.opened_at = Some(Instant::now());
                    Admission::Allow
                }
                None => Admission::Allow,
            },
            None => Admission::Allow,
        }
    }

    /// Record a successful solve: the circuit for `fp` closes fully.
    pub fn record_success(&self, fp: Fingerprint) {
        if self.threshold == 0 {
            return;
        }
        self.entries.lock().remove(&fp);
    }

    /// Record a solver-class failure; opens the circuit once the
    /// consecutive-failure count reaches the threshold.
    pub fn record_failure(&self, fp: Fingerprint) {
        if self.threshold == 0 {
            return;
        }
        let mut entries = self.entries.lock();
        let e = entries.entry(fp).or_default();
        e.consecutive_failures += 1;
        if e.consecutive_failures >= self.threshold {
            e.opened_at = Some(Instant::now());
        }
    }

    /// Number of fingerprints currently open.
    pub fn open_circuits(&self) -> usize {
        self.entries
            .lock()
            .values()
            .filter(|e| matches!(e.opened_at, Some(t) if t.elapsed() < self.cooldown))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(seed: u64) -> Fingerprint {
        Fingerprint {
            n_rows: 8,
            n_cols: 8,
            nnz: 16,
            pattern_hash: seed,
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let base = Duration::from_millis(1);
        let cap = Duration::from_millis(5);
        assert_eq!(backoff_delay(base, cap, 1), Duration::from_millis(1));
        assert_eq!(backoff_delay(base, cap, 2), Duration::from_millis(2));
        assert_eq!(backoff_delay(base, cap, 3), Duration::from_millis(4));
        assert_eq!(backoff_delay(base, cap, 4), Duration::from_millis(5));
        assert_eq!(backoff_delay(base, cap, 30), Duration::from_millis(5));
    }

    /// The jittered schedule is a pure function of (job id, attempt):
    /// pin it exactly so an accidental change to the hash, the mapping,
    /// or the rounding shows up as a test diff, not a production
    /// thundering herd.
    #[test]
    fn jittered_backoff_schedule_is_pinned_for_a_fixed_seed() {
        let base = Duration::from_millis(1);
        let cap = Duration::from_millis(100);
        let schedule = |job_id: u64| -> Vec<u64> {
            (1..=5)
                .map(|a| backoff_delay_jittered(base, cap, a, job_id).as_nanos() as u64)
                .collect()
        };
        assert_eq!(
            schedule(42),
            vec![652_411, 1_138_688, 3_375_763, 6_290_018, 10_204_820]
        );
        assert_eq!(
            schedule(7),
            vec![577_752, 1_466_167, 3_164_491, 4_276_524, 14_852_410]
        );
        // Every delay stays within [full/2, full) of the unjittered curve.
        for job_id in [0u64, 1, 42, u64::MAX] {
            for attempt in 1..=8 {
                let full = backoff_delay(base, cap, attempt);
                let j = backoff_delay_jittered(base, cap, attempt, job_id);
                assert!(
                    j >= full / 2 && j < full,
                    "{job_id}/{attempt}: {j:?} vs {full:?}"
                );
            }
        }
    }

    #[test]
    fn escalation_chain_ends_at_gmres() {
        let mut kind = SolverKind::Cg;
        let mut chain = vec![kind];
        while let Some(next) = escalate(kind) {
            chain.push(next);
            kind = next;
        }
        assert_eq!(
            chain,
            vec![
                SolverKind::Cg,
                SolverKind::Bicgstab,
                SolverKind::Gmres { restart: 30 }
            ]
        );
        // MG-PCG sits ahead of the chain like the rest of the CG family:
        // a breakdown steps it down to BiCGSTAB.
        assert_eq!(
            escalate(SolverKind::PcgMg { levels: 3 }),
            Some(SolverKind::Bicgstab)
        );
    }

    #[test]
    fn retryable_classes() {
        assert!(is_retryable(&SolverError::Breakdown {
            what: "rho",
            value: 0.0
        }));
        assert!(is_retryable(&SolverError::NonFinite {
            what: "residual norm",
            value: f64::NAN
        }));
        assert!(!is_retryable(&SolverError::DimensionMismatch {
            expected: 4,
            got: 5
        }));
        assert!(!is_retryable(&SolverError::NotSymmetric));
    }

    #[test]
    fn breaker_opens_after_threshold_and_recovers() {
        let br = CircuitBreaker::new(3, Duration::from_millis(20));
        let f = fp(1);
        assert_eq!(br.admit(f), Admission::Allow);
        br.record_failure(f);
        br.record_failure(f);
        assert_eq!(br.admit(f), Admission::Allow, "below threshold");
        br.record_failure(f);
        assert_eq!(br.admit(f), Admission::Refuse, "threshold reached");
        assert_eq!(br.open_circuits(), 1);

        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(br.admit(f), Admission::Allow, "half-open trial");
        br.record_success(f);
        assert_eq!(br.admit(f), Admission::Allow, "closed after success");
        assert_eq!(br.open_circuits(), 0);
    }

    #[test]
    fn breaker_is_per_fingerprint() {
        let br = CircuitBreaker::new(1, Duration::from_secs(60));
        br.record_failure(fp(1));
        assert_eq!(br.admit(fp(1)), Admission::Refuse);
        assert_eq!(br.admit(fp(2)), Admission::Allow);
    }

    #[test]
    fn zero_threshold_disables_breaker() {
        let br = CircuitBreaker::new(0, Duration::from_secs(60));
        for _ in 0..10 {
            br.record_failure(fp(1));
        }
        assert_eq!(br.admit(fp(1)), Admission::Allow);
    }
}
