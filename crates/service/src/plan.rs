//! Solve plans and the structural plan cache.
//!
//! A [`SolvePlan`] is everything partitioning produces that can be
//! reused across solves on structurally identical matrices: the
//! `CG_BALANCED_PARTITIONER_1` atom assignment, the row cut-points that
//! rebuild the distributed operator without re-partitioning, and the
//! `smA(ptr, idx, a)` trio directive whose descriptors pin all three
//! arrays to the same processors (the paper's locality rule).

use crate::fingerprint::Fingerprint;
use hpf_core::ext::sparse_directive::{SparseFormat, SparseMatrixDirective, TrioDescriptors};
use hpf_dist::{ConnectivityGraph, Partitioner};
use hpf_machine::{CostModel, Machine, Topology};
use hpf_mg::{GridDims, MgHierarchy, MgPreconditioner};
use hpf_partition::BalancedContiguous;
use hpf_sparse::CsrMatrix;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Reusable result of partitioning one matrix structure for `np`
/// processors.
#[derive(Debug, Clone)]
pub struct SolvePlan {
    /// Structure this plan was derived from.
    pub fingerprint: Fingerprint,
    /// `USING <name>` identifier of the partitioner that laid the
    /// structure out — part of the cache key: the same fingerprint under
    /// a different partitioner is a different plan.
    pub partitioner: &'static str,
    /// Machine size the plan targets.
    pub np: usize,
    /// Row cut-points (length `np + 1`): processor `p` owns rows
    /// `row_cuts[p] .. row_cuts[p + 1]`. Feeding these to
    /// `RowwiseCsr::with_row_cuts` rebuilds the operator with no
    /// partitioner call.
    pub row_cuts: Vec<usize>,
    /// The balanced trio directive (atoms = rows, weights = nnz).
    pub directive: SparseMatrixDirective,
    /// nnz per processor under the plan.
    pub loads: Vec<usize>,
    /// max/mean nnz load (1.0 = perfect balance).
    pub imbalance: f64,
    /// Simulated words moved by the `REDISTRIBUTE ... USING` that
    /// produced the balanced layout.
    pub redistribution_words: usize,
    /// Hierarchy depth this plan's multigrid preconditioner was built
    /// for; 0 for non-multigrid plans. Part of the cache key: the same
    /// structure at a different depth is a different plan.
    pub mg_levels: usize,
    /// Prebuilt V-cycle preconditioner (Galerkin coarse operators,
    /// traffic matrices, Cholesky factor) — the expensive, reusable
    /// part of an HPCG-class job, cached exactly like partitioning.
    pub mg: Option<Arc<MgPreconditioner>>,
}

impl SolvePlan {
    /// Partition `matrix`'s structure for `np` processors with the
    /// default partitioner (the paper's balanced-rows heuristic).
    pub fn build(matrix: &CsrMatrix, np: usize, topology: Topology) -> SolvePlan {
        Self::build_with(matrix, np, topology, &BalancedContiguous)
    }

    /// Partition `matrix`'s structure for `np` processors with any
    /// registered partitioner. This is the single partitioner call site
    /// in the service; everything else reuses plans.
    pub fn build_with(
        matrix: &CsrMatrix,
        np: usize,
        topology: Topology,
        partitioner: &dyn Partitioner,
    ) -> SolvePlan {
        let fingerprint = Fingerprint::of(matrix);
        let n = matrix.n_rows();
        // `!EXT$ INDIVISABLE row(ATOM:i) :: col(i:i+1)` — rows are the
        // atoms, weighted by their nonzeros — then
        // `!EXT$ REDISTRIBUTE smA USING <partitioner>`.
        let mut directive = SparseMatrixDirective::new(SparseFormat::Csr, matrix.row_ptr(), np);
        let graph = ConnectivityGraph::from_pattern(n, matrix.row_ptr(), matrix.col_idx());
        let mut scratch = Machine::new(np, topology, CostModel::mpp_1995());
        let redistribution_words = directive.redistribute_using(&mut scratch, partitioner, &graph);
        debug_assert!(directive.trio_is_consistent());

        // Contiguous atom assignment → row cut-points.
        let owner = &directive.assignment().atom_owner;
        let mut row_cuts = vec![0usize; np + 1];
        row_cuts[np] = n;
        let mut a = 0usize;
        for (p, cut) in row_cuts.iter_mut().enumerate().take(np) {
            *cut = a;
            while a < n && owner[a] == p {
                a += 1;
            }
        }

        let loads = directive.loads();
        let imbalance = directive.imbalance();
        SolvePlan {
            fingerprint,
            partitioner: partitioner.name(),
            np,
            row_cuts,
            directive,
            loads,
            imbalance,
            redistribution_words,
            mg_levels: 0,
            mg: None,
        }
    }

    /// Attach a `levels`-deep multigrid hierarchy over `dims` to this
    /// plan (validation upstream guarantees buildability; a failure
    /// here panics into the worker's setup catch site).
    pub fn with_mg(mut self, dims: GridDims, levels: usize) -> SolvePlan {
        let h = MgHierarchy::build(dims, levels, self.np)
            .unwrap_or_else(|e| panic!("mg hierarchy {dims}/{levels} levels: {e}"));
        self.mg_levels = levels;
        self.mg = Some(Arc::new(MgPreconditioner::new(h)));
        self
    }

    /// Descriptors of the `(ptr, idx, a)` trio under this plan.
    pub fn trio_descriptors(&self) -> TrioDescriptors {
        self.directive.descriptors()
    }
}

/// Outcome of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    Hit,
    Miss,
}

/// Cache key: the same structure laid out by two different partitioners
/// — or carrying multigrid hierarchies of two different depths — yields
/// distinct plans. The third component is [`SolvePlan::mg_levels`]
/// (0 for non-multigrid plans).
pub type PlanKey = (Fingerprint, String, usize);

/// Bounded map from [`PlanKey`] (structural fingerprint + partitioner
/// name + hierarchy depth) to [`SolvePlan`], evicting the
/// oldest-inserted plan once full (structures tend to be submitted in
/// runs, so insertion order approximates recency well enough here).
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    plans: HashMap<PlanKey, Arc<SolvePlan>>,
    order: VecDeque<PlanKey>,
}

impl PlanCache {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "plan cache capacity must be positive");
        PlanCache {
            capacity,
            plans: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.plans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    pub fn get(
        &self,
        fp: &Fingerprint,
        partitioner: &str,
        mg_levels: usize,
    ) -> Option<Arc<SolvePlan>> {
        self.plans
            .get(&(*fp, partitioner.to_string(), mg_levels))
            .cloned()
    }

    /// Insert a plan, evicting the oldest entry if at capacity.
    pub fn insert(&mut self, plan: Arc<SolvePlan>) {
        let key = (
            plan.fingerprint,
            plan.partitioner.to_string(),
            plan.mg_levels,
        );
        if self.plans.insert(key.clone(), plan).is_none() {
            self.order.push_back(key);
            if self.order.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.plans.remove(&old);
                }
            }
        }
    }

    /// Look up a plan, building and caching it on a miss. Returns the
    /// plan and whether it was a hit. `on_build` runs only on misses
    /// (the service counts partitioner invocations there). `mg` asks
    /// for a multigrid plan: `(grid, levels)` keys the entry on the
    /// hierarchy depth and prebuilds the V-cycle preconditioner.
    pub fn get_or_build(
        &mut self,
        matrix: &CsrMatrix,
        np: usize,
        topology: Topology,
        partitioner: &dyn Partitioner,
        mg: Option<(GridDims, usize)>,
        on_build: impl FnOnce(),
    ) -> (Arc<SolvePlan>, CacheOutcome) {
        let mg_levels = mg.map_or(0, |(_, levels)| levels);
        let key = (
            Fingerprint::of(matrix),
            partitioner.name().to_string(),
            mg_levels,
        );
        if let Some(plan) = self.plans.get(&key) {
            return (plan.clone(), CacheOutcome::Hit);
        }
        on_build();
        let mut plan = SolvePlan::build_with(matrix, np, topology, partitioner);
        if let Some((dims, levels)) = mg {
            plan = plan.with_mg(dims, levels);
        }
        let plan = Arc::new(plan);
        self.insert(plan.clone());
        (plan, CacheOutcome::Miss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_sparse::gen;

    #[test]
    fn plan_is_deterministic_for_a_fingerprint() {
        let a = gen::power_law_spd(96, 14, 0.9, 3);
        let mut b = a.clone();
        b.scale(0.5); // same structure, different values
        let p1 = SolvePlan::build(&a, 8, Topology::Hypercube);
        let p2 = SolvePlan::build(&b, 8, Topology::Hypercube);
        assert_eq!(p1.fingerprint, p2.fingerprint);
        assert_eq!(p1.row_cuts, p2.row_cuts);
        assert_eq!(p1.loads, p2.loads);
        assert_eq!(p1.trio_descriptors(), p2.trio_descriptors());
    }

    #[test]
    fn row_cuts_are_monotone_and_cover_all_rows() {
        let a = gen::power_law_spd(64, 10, 0.8, 11);
        let plan = SolvePlan::build(&a, 6, Topology::Hypercube);
        assert_eq!(plan.row_cuts.len(), 7);
        assert_eq!(plan.row_cuts[0], 0);
        assert_eq!(*plan.row_cuts.last().unwrap(), 64);
        assert!(plan.row_cuts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(plan.loads.iter().sum::<usize>(), a.nnz());
    }

    #[test]
    fn balanced_plan_beats_naive_block_on_irregular_structure() {
        let a = gen::power_law_spd(128, 24, 1.0, 5);
        let plan = SolvePlan::build(&a, 8, Topology::Hypercube);
        // Naive equal-row-count cuts.
        let bs = 128usize.div_ceil(8);
        let naive: Vec<usize> = (0..=8).map(|p| (p * bs).min(128)).collect();
        let naive_loads: Vec<usize> = naive
            .windows(2)
            .map(|w| a.row_ptr()[w[1]] - a.row_ptr()[w[0]])
            .collect();
        let max = *naive_loads.iter().max().unwrap() as f64;
        let mean = a.nnz() as f64 / 8.0;
        let naive_imb = max / mean;
        assert!(
            plan.imbalance <= naive_imb + 1e-12,
            "partitioned {} vs naive {}",
            plan.imbalance,
            naive_imb
        );
    }

    #[test]
    fn cache_hits_after_insert_and_counts_builds() {
        let a = gen::banded_spd(48, 4, 2);
        let mut cache = PlanCache::new(4);
        let mut builds = 0usize;
        let (_, o1) = cache.get_or_build(
            &a,
            4,
            Topology::Hypercube,
            &BalancedContiguous,
            None,
            || builds += 1,
        );
        let (_, o2) = cache.get_or_build(
            &a,
            4,
            Topology::Hypercube,
            &BalancedContiguous,
            None,
            || builds += 1,
        );
        assert_eq!(o1, CacheOutcome::Miss);
        assert_eq!(o2, CacheOutcome::Hit);
        assert_eq!(builds, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cache_keys_include_the_partitioner() {
        let a = gen::power_law_spd(80, 16, 0.9, 6);
        let mut cache = PlanCache::new(4);
        let mut builds = 0usize;
        let (p1, o1) = cache.get_or_build(
            &a,
            4,
            Topology::Hypercube,
            &BalancedContiguous,
            None,
            || builds += 1,
        );
        let (p2, o2) = cache.get_or_build(
            &a,
            4,
            Topology::Hypercube,
            &hpf_partition::GreedyHypergraph,
            None,
            || builds += 1,
        );
        // Same structure, different partitioner: both are misses and
        // both plans live in the cache side by side.
        assert_eq!(o1, CacheOutcome::Miss);
        assert_eq!(o2, CacheOutcome::Miss);
        assert_eq!(builds, 2);
        assert_eq!(cache.len(), 2);
        assert_eq!(p1.fingerprint, p2.fingerprint);
        assert_eq!(p1.partitioner, "balanced-rows");
        assert_eq!(p2.partitioner, "greedy-hypergraph");
        assert!(cache.get(&p1.fingerprint, "balanced-rows", 0).is_some());
        assert!(cache.get(&p1.fingerprint, "greedy-hypergraph", 0).is_some());
        assert!(cache.get(&p1.fingerprint, "spectral", 0).is_none());
    }

    /// The ISSUE's HPCG plumbing: the cache key includes the hierarchy
    /// depth, so one Poisson structure requested at two depths keeps two
    /// plans — each carrying its own prebuilt V-cycle preconditioner —
    /// while a repeat at either depth is a pure hit.
    #[test]
    fn cache_keys_include_the_hierarchy_depth() {
        let dims = GridDims::d2(15, 15);
        let a = dims.poisson();
        let mut cache = PlanCache::new(4);
        let (p2, o2) = cache.get_or_build(
            &a,
            4,
            Topology::Hypercube,
            &BalancedContiguous,
            Some((dims, 2)),
            || {},
        );
        let (p3, o3) = cache.get_or_build(
            &a,
            4,
            Topology::Hypercube,
            &BalancedContiguous,
            Some((dims, 3)),
            || {},
        );
        let (_, o2b) = cache.get_or_build(
            &a,
            4,
            Topology::Hypercube,
            &BalancedContiguous,
            Some((dims, 2)),
            || {},
        );
        assert_eq!(
            (o2, o3, o2b),
            (CacheOutcome::Miss, CacheOutcome::Miss, CacheOutcome::Hit)
        );
        assert_eq!(cache.len(), 2);
        assert_eq!(p2.fingerprint, p3.fingerprint);
        assert_eq!(p2.mg_levels, 2);
        assert_eq!(p3.mg_levels, 3);
        assert_eq!(p2.mg.as_ref().unwrap().hierarchy().depth(), 2);
        assert_eq!(p3.mg.as_ref().unwrap().hierarchy().depth(), 3);
        // A plain (non-mg) plan on the same structure is a third entry.
        let (p0, o0) =
            cache.get_or_build(&a, 4, Topology::Hypercube, &BalancedContiguous, None, || {});
        assert_eq!(o0, CacheOutcome::Miss);
        assert!(p0.mg.is_none());
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn cache_evicts_oldest_at_capacity() {
        let mut cache = PlanCache::new(2);
        let m1 = gen::tridiagonal(10, 4.0, -1.0);
        let m2 = gen::tridiagonal(11, 4.0, -1.0);
        let m3 = gen::tridiagonal(12, 4.0, -1.0);
        for m in [&m1, &m2, &m3] {
            let (_, _) =
                cache.get_or_build(m, 2, Topology::Hypercube, &BalancedContiguous, None, || {});
        }
        assert_eq!(cache.len(), 2);
        // m1 (oldest) was evicted; m2 and m3 remain.
        assert!(cache
            .get(&Fingerprint::of(&m1), "balanced-rows", 0)
            .is_none());
        assert!(cache
            .get(&Fingerprint::of(&m2), "balanced-rows", 0)
            .is_some());
        assert!(cache
            .get(&Fingerprint::of(&m3), "balanced-rows", 0)
            .is_some());
    }
}
