//! A dependency-free blocking HTTP/1.1 listener exposing the service's
//! observability surface:
//!
//! - `GET /metrics`  — Prometheus text exposition (version 0.0.4) of
//!   the live [`crate::Metrics`] counters,
//! - `GET /healthz`  — JSON liveness: queue depth, in-flight jobs, open
//!   circuit breakers, uptime; answers `503` once shutdown has begun,
//! - `GET /drift`    — the most recently published cost-oracle
//!   `DriftReport` JSON (published by the embedding process via
//!   [`MetricsServer::publish_drift`]), `404` until one exists,
//! - `GET /slo`      — the most recently published per-class SLO status
//!   JSON ([`MetricsServer::publish_slo`]),
//! - `GET /alerts`   — the most recently published burn-rate alert
//!   state JSON ([`MetricsServer::publish_alerts`]). The SLO evaluation
//!   itself lives in `hpf-obs::slo`; the embedding process evaluates
//!   and publishes here,
//! - `GET /postmortems` — index of flight-recorder post-mortem dumps
//!   ([`MetricsServer::publish_postmortems`]), and
//!   `GET /postmortems/<trace-hex>` — one dump's full JSON
//!   ([`MetricsServer::publish_postmortem`]).
//!
//! Publisher-fed endpoints answer `404` only before the embedding
//! process has published *anything*; once publishing has started they
//! answer `200` with an explicit empty document (`{"alerts":[]}`)
//! instead of making "no transitions yet" indistinguishable from "no
//! publisher wired".
//!
//! This is intentionally *not* a web framework: one accept loop on a
//! background thread, one short-lived connection per scrape, request
//! parsing limited to the request line. That is exactly what a
//! Prometheus scraper or a `curl` in a terminal needs, and it keeps the
//! crate's "no external dependencies" property intact.

use crate::metrics::Metrics;
use crate::retry::CircuitBreaker;
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Documents published by the embedding process and served verbatim
/// (`404` until first published).
#[derive(Default)]
pub(crate) struct Published {
    pub drift: Mutex<Option<String>>,
    pub slo: Mutex<Option<String>>,
    pub alerts: Mutex<Option<String>>,
    /// Post-mortem index document served at `/postmortems`.
    pub postmortems: Mutex<Option<String>>,
    /// Per-trace dump documents served at `/postmortems/<trace-hex>`,
    /// keyed by the 16-digit lowercase hex trace id.
    pub postmortem_docs: Mutex<std::collections::BTreeMap<String, String>>,
    /// Set by the first `publish_*` call: distinguishes "no publisher
    /// wired" (404) from "publishing, nothing to report yet" (200 with
    /// an explicit empty document).
    pub started: AtomicBool,
}

/// Handle to a running metrics listener. Dropping it stops the accept
/// loop and joins the thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    published: Arc<Published>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (useful with port `0`: the OS picks a free
    /// port and this reports it).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Install `report_json` as the document served at `GET /drift`.
    /// Replaces any previously published report.
    pub fn publish_drift(&self, report_json: String) {
        self.published.started.store(true, Ordering::SeqCst);
        *self.published.drift.lock() = Some(report_json);
    }

    /// Install `slo_json` as the document served at `GET /slo`.
    /// Replaces any previously published status.
    pub fn publish_slo(&self, slo_json: String) {
        self.published.started.store(true, Ordering::SeqCst);
        *self.published.slo.lock() = Some(slo_json);
    }

    /// Install `alerts_json` as the document served at `GET /alerts`.
    /// Replaces any previously published state.
    pub fn publish_alerts(&self, alerts_json: String) {
        self.published.started.store(true, Ordering::SeqCst);
        *self.published.alerts.lock() = Some(alerts_json);
    }

    /// Install `index_json` as the document served at `GET /postmortems`.
    /// Replaces any previously published index.
    pub fn publish_postmortems(&self, index_json: String) {
        self.published.started.store(true, Ordering::SeqCst);
        *self.published.postmortems.lock() = Some(index_json);
    }

    /// Install one post-mortem dump, served at
    /// `GET /postmortems/<trace_hex>` (use the 16-digit lowercase hex
    /// trace id). Replaces any previous dump for the same trace.
    pub fn publish_postmortem(&self, trace_hex: &str, doc_json: String) {
        self.published.started.store(true, Ordering::SeqCst);
        self.published
            .postmortem_docs
            .lock()
            .insert(trace_hex.to_string(), doc_json);
    }

    /// Stop the accept loop and join the listener thread. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Everything the request handler needs, cloned out of the service so
/// the listener holds no borrow of it.
pub(crate) struct HttpState {
    pub metrics: Arc<Metrics>,
    pub breaker: Arc<CircuitBreaker>,
    pub shutting_down: Arc<AtomicBool>,
}

/// Bind `addr` (e.g. `"127.0.0.1:9090"`, or port `0` for an ephemeral
/// port) and serve until the returned handle is stopped or dropped.
pub(crate) fn spawn(addr: &str, state: HttpState) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let published = Arc::new(Published::default());
    let loop_stop = stop.clone();
    let loop_published = published.clone();
    let handle = std::thread::Builder::new()
        .name("hpf-metrics-http".to_string())
        .spawn(move || {
            while !loop_stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => handle_connection(stream, &state, &loop_published),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        })?;
    Ok(MetricsServer {
        addr: local,
        stop,
        published,
        handle: Some(handle),
    })
}

fn handle_connection(mut stream: TcpStream, state: &HttpState, published: &Published) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    // One read is enough for the GET requests we serve; anything the
    // client sends beyond 4 KiB of headers is ignored.
    let mut buf = [0u8; 4096];
    let n = match stream.read(&mut buf) {
        Ok(0) | Err(_) => return,
        Ok(n) => n,
    };
    let request = String::from_utf8_lossy(&buf[..n]);
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = route(method, path, state, published);
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
}

fn route(
    method: &str,
    path: &str,
    state: &HttpState,
    published: &Published,
) -> (&'static str, &'static str, String) {
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        );
    }
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            state.metrics.snapshot().to_prometheus(),
        ),
        "/healthz" => {
            let snap = state.metrics.snapshot();
            let open_circuits = state.breaker.open_circuits();
            // Three states: `draining` (503) once shutdown begins,
            // `degraded` (200, the service still answers) when the
            // intake queue is nearly full or any structure's breaker is
            // open, `ok` otherwise. Load balancers key off the status
            // code; dashboards read the body.
            let (status, code) = if state.shutting_down.load(Ordering::Relaxed) {
                ("draining", "503 Service Unavailable")
            } else if snap.queue_saturation > 0.8 || open_circuits > 0 {
                ("degraded", "200 OK")
            } else {
                ("ok", "200 OK")
            };
            let body = format!(
                "{{\"status\":\"{}\",\"queue_depth\":{},\"queue_saturation\":{},\
                 \"in_flight\":{},\"open_circuits\":{},\"uptime_seconds\":{}}}",
                status,
                snap.queue_depth,
                if snap.queue_saturation.is_finite() {
                    format!("{}", snap.queue_saturation)
                } else {
                    "null".to_string()
                },
                snap.in_flight,
                open_circuits,
                if snap.uptime_seconds.is_finite() {
                    format!("{}", snap.uptime_seconds)
                } else {
                    "null".to_string()
                }
            );
            (code, "application/json", body)
        }
        "/drift" => match published.drift.lock().clone() {
            Some(report) => ("200 OK", "application/json", report),
            None => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "no drift report published yet\n".to_string(),
            ),
        },
        "/slo" => match published.slo.lock().clone() {
            Some(status) => ("200 OK", "application/json", status),
            None if published.started.load(Ordering::SeqCst) => {
                ("200 OK", "application/json", "{\"slo\":[]}".to_string())
            }
            None => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "no slo status published yet\n".to_string(),
            ),
        },
        "/alerts" => match published.alerts.lock().clone() {
            Some(alerts) => ("200 OK", "application/json", alerts),
            None if published.started.load(Ordering::SeqCst) => {
                ("200 OK", "application/json", "{\"alerts\":[]}".to_string())
            }
            None => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "no alert state published yet\n".to_string(),
            ),
        },
        "/postmortems" => match published.postmortems.lock().clone() {
            Some(index) => ("200 OK", "application/json", index),
            None if published.started.load(Ordering::SeqCst) => (
                "200 OK",
                "application/json",
                "{\"postmortems\":[]}".to_string(),
            ),
            None => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "no postmortems published yet\n".to_string(),
            ),
        },
        p if p.starts_with("/postmortems/") => {
            let trace = p.trim_start_matches("/postmortems/");
            match published.postmortem_docs.lock().get(trace).cloned() {
                Some(doc) => ("200 OK", "application/json", doc),
                None => (
                    "404 Not Found",
                    "text/plain; charset=utf-8",
                    "no postmortem for that trace id\n".to_string(),
                ),
            }
        }
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; try /metrics, /healthz, /drift, /slo, /alerts or /postmortems\n"
                .to_string(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    fn test_state() -> HttpState {
        HttpState {
            metrics: Arc::new(Metrics::new()),
            breaker: Arc::new(CircuitBreaker::new(5, Duration::from_millis(100))),
            shutting_down: Arc::new(AtomicBool::new(false)),
        }
    }

    #[test]
    fn serves_metrics_healthz_and_404() {
        let state = test_state();
        state
            .metrics
            .accepted
            .fetch_add(2, std::sync::atomic::Ordering::Relaxed);
        let mut server = spawn("127.0.0.1:0", state).unwrap();
        let metrics = get(server.addr(), "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        assert!(metrics.contains("hpf_service_accepted_total 2"));
        let health = get(server.addr(), "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"));
        assert!(health.contains("\"status\":\"ok\""));
        let missing = get(server.addr(), "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));
        server.stop();
    }

    #[test]
    fn drift_is_404_until_published() {
        let mut server = spawn("127.0.0.1:0", test_state()).unwrap();
        assert!(get(server.addr(), "/drift").starts_with("HTTP/1.1 404"));
        server.publish_drift("{\"total_measured\":1}".to_string());
        let drift = get(server.addr(), "/drift");
        assert!(drift.starts_with("HTTP/1.1 200 OK"), "{drift}");
        assert!(drift.contains("\"total_measured\":1"));
        server.stop();
    }

    #[test]
    fn slo_and_alerts_are_404_only_before_any_publishing() {
        let mut server = spawn("127.0.0.1:0", test_state()).unwrap();
        // No publisher wired at all: 404 tells the scraper so.
        assert!(get(server.addr(), "/slo").starts_with("HTTP/1.1 404"));
        assert!(get(server.addr(), "/alerts").starts_with("HTTP/1.1 404"));
        // Any publish starts publishing: endpoints without their own
        // document now answer 200 with an explicit empty body instead
        // of an ambiguous 404.
        server.publish_drift("{\"total_measured\":1}".to_string());
        let slo = get(server.addr(), "/slo");
        assert!(slo.starts_with("HTTP/1.1 200 OK"), "{slo}");
        assert!(slo.contains("{\"slo\":[]}"), "{slo}");
        let alerts = get(server.addr(), "/alerts");
        assert!(alerts.starts_with("HTTP/1.1 200 OK"), "{alerts}");
        assert!(alerts.contains("{\"alerts\":[]}"), "{alerts}");
        // Real documents replace the empty placeholders verbatim.
        server.publish_slo("{\"class\":\"interactive\"}".to_string());
        server.publish_alerts("[{\"state\":\"firing\"}]".to_string());
        let slo = get(server.addr(), "/slo");
        assert!(slo.contains("\"class\":\"interactive\""));
        let alerts = get(server.addr(), "/alerts");
        assert!(alerts.contains("\"state\":\"firing\""));
        // The 404 fallback advertises the endpoints.
        let missing = get(server.addr(), "/nope");
        assert!(missing.contains("/alerts"), "{missing}");
        assert!(missing.contains("/postmortems"), "{missing}");
        server.stop();
    }

    #[test]
    fn postmortems_index_and_per_trace_docs_are_served() {
        let mut server = spawn("127.0.0.1:0", test_state()).unwrap();
        assert!(get(server.addr(), "/postmortems").starts_with("HTTP/1.1 404"));
        server.publish_alerts("[]".to_string());
        let empty = get(server.addr(), "/postmortems");
        assert!(empty.starts_with("HTTP/1.1 200 OK"), "{empty}");
        assert!(empty.contains("{\"postmortems\":[]}"), "{empty}");
        server.publish_postmortems("{\"postmortems\":[{\"trace\":\"00000000000000ab\"}]}".into());
        server.publish_postmortem(
            "00000000000000ab",
            "{\"trace\":\"00000000000000ab\"}".into(),
        );
        let index = get(server.addr(), "/postmortems");
        assert!(index.contains("00000000000000ab"), "{index}");
        let doc = get(server.addr(), "/postmortems/00000000000000ab");
        assert!(doc.starts_with("HTTP/1.1 200 OK"), "{doc}");
        assert!(doc.contains("\"trace\":\"00000000000000ab\""), "{doc}");
        let missing = get(server.addr(), "/postmortems/ffffffffffffffff");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        server.stop();
    }

    #[test]
    fn healthz_turns_503_draining_on_shutdown() {
        let state = test_state();
        let flag = state.shutting_down.clone();
        let mut server = spawn("127.0.0.1:0", state).unwrap();
        flag.store(true, Ordering::SeqCst);
        let health = get(server.addr(), "/healthz");
        assert!(health.starts_with("HTTP/1.1 503"), "{health}");
        assert!(health.contains("\"status\":\"draining\""));
        server.stop();
    }

    #[test]
    fn healthz_degrades_on_queue_saturation_or_open_breaker() {
        use std::sync::atomic::Ordering;
        let state = test_state();
        let metrics = state.metrics.clone();
        let breaker = state.breaker.clone();
        let mut server = spawn("127.0.0.1:0", state).unwrap();
        // One class queue above the 80% threshold degrades, still 200.
        metrics.queue_capacity.store(10, Ordering::Relaxed);
        metrics.class_queue_depth[1].store(9, Ordering::Relaxed);
        let health = get(server.addr(), "/healthz");
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        assert!(health.contains("\"status\":\"degraded\""), "{health}");
        assert!(health.contains("\"queue_saturation\":0.9"), "{health}");
        // Back under the threshold: ok again.
        metrics.class_queue_depth[1].store(1, Ordering::Relaxed);
        let health = get(server.addr(), "/healthz");
        assert!(health.contains("\"status\":\"ok\""), "{health}");
        // An open circuit degrades even with an empty queue.
        let fp = crate::fingerprint::Fingerprint {
            n_rows: 4,
            n_cols: 4,
            nnz: 8,
            pattern_hash: 99,
        };
        for _ in 0..5 {
            breaker.record_failure(fp);
        }
        let health = get(server.addr(), "/healthz");
        assert!(health.contains("\"status\":\"degraded\""), "{health}");
        server.stop();
    }

    #[test]
    fn non_get_is_405() {
        let mut server = spawn("127.0.0.1:0", test_state()).unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        write!(s, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 405"), "{out}");
        server.stop();
    }
}
