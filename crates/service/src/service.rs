//! The service facade: admission control → per-class bounded intake
//! queues → weighted-fair dispatcher (batcher) → supervised worker pool.
//!
//! ```text
//!  submit() ──validate──► admission (deadline vs predicted cost) ⇒ Shed?
//!      │ try_send (per QoS class; full ⇒ Busy)
//!      ▼
//!  class queues: [Interactive] [Batch] [BestEffort]   (bounded each)
//!      │ weighted-fair dequeue (deficit round-robin, qos_weights)
//!  dispatcher ── groups same-key, same-class jobs ──► batch queue
//!      │                                              (bounded)
//!      ▼                                                  │
//!  pending buffers (per class)        workers ◄───────────┘
//!                                        │  plan cache / partition
//!                              supervisor│  (heartbeats, kill+restart)
//!                                        ▼
//!                                  responder channels
//! ```
//!
//! The dispatcher owns per-class pending buffers so it can look past the
//! head job for batch mates without reordering unrelated work, and a
//! deficit-round-robin credit scheme (seeded from
//! [`ServiceConfig::qos_weights`]) so a flood of best-effort work cannot
//! starve interactive jobs. The batch queue is bounded at the worker
//! count, so backpressure reaches the class queues (and submitters, as
//! `Busy`) instead of ballooning in memory. A supervisor thread watches
//! per-worker progress heartbeats and kills/respawns wedged workers
//! (see [`crate::supervisor`]).
//!
//! Because the dispatcher must block on *several* class queues at once
//! and the bundled channel library has no `select`, wake-ups ride a
//! dedicated unbounded signal channel: `submit` sends the job to its
//! class queue and then one `()` signal; the dispatcher blocks only on
//! the signal channel and drains every class queue opportunistically.
//! A job is always visible in its class queue by the time its signal is
//! received, so no wake-up is ever lost.

use crate::admission::{AdmissionController, AdmissionDecision};
use crate::batch::{form_batch, Batch, Job};
use crate::fingerprint::Fingerprint;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::plan::PlanCache;
use crate::request::{ServiceConfig, SolveRequest};
use crate::response::{ServiceError, SolveResponse};
use crate::retry::CircuitBreaker;
use crate::supervisor::{supervisor_loop, WorkerFactory, WorkerSlot, WorkerState};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TryRecvError, TrySendError};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Handle to one accepted job; redeem it for the result.
#[derive(Debug)]
pub struct JobHandle {
    pub job_id: u64,
    rx: Receiver<Result<SolveResponse, ServiceError>>,
}

impl JobHandle {
    /// Block until the job finishes (or the service shuts down).
    pub fn wait(self) -> Result<SolveResponse, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::Shutdown))
    }

    /// Block up to `timeout`; `None` means still running.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<SolveResponse, ServiceError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Some(r),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => None,
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                Some(Err(ServiceError::Shutdown))
            }
        }
    }

    /// Non-blocking check; `None` means still running.
    pub fn poll(&self) -> Option<Result<SolveResponse, ServiceError>> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(Err(ServiceError::Shutdown)),
        }
    }
}

/// A running solver service. Dropping it (or calling
/// [`SolverService::shutdown`]) stops intake, drains accepted work, and
/// joins every thread.
pub struct SolverService {
    config: ServiceConfig,
    class_txs: Option<[Sender<Job>; 3]>,
    signal_tx: Option<Sender<()>>,
    metrics: Arc<Metrics>,
    cache: Arc<Mutex<PlanCache>>,
    next_id: AtomicU64,
    shutting_down: Arc<AtomicBool>,
    breaker: Arc<CircuitBreaker>,
    admission: Arc<AdmissionController>,
    dispatcher: Option<JoinHandle<()>>,
    slots: Arc<Mutex<Vec<WorkerSlot>>>,
    supervisor: Option<JoinHandle<()>>,
}

impl SolverService {
    /// Start the dispatcher, worker pool, and (if enabled) supervisor
    /// described by `config`.
    pub fn start(config: ServiceConfig) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        assert!(config.np > 0, "machine size must be positive");
        let metrics = Arc::new(Metrics::new());
        metrics
            .queue_capacity
            .store(config.queue_capacity as u64, Ordering::Relaxed);
        let cache = Arc::new(Mutex::new(PlanCache::new(
            config.plan_cache_capacity.max(1),
        )));
        let shutting_down = Arc::new(AtomicBool::new(false));
        let breaker = Arc::new(CircuitBreaker::new(
            config.breaker_threshold,
            config.breaker_cooldown,
        ));
        let admission = Arc::new(AdmissionController::new(&config));

        // One bounded intake queue per QoS class plus the wake-up signal
        // channel (see the module docs for the no-select rationale).
        let (tx0, rx0) = bounded::<Job>(config.queue_capacity);
        let (tx1, rx1) = bounded::<Job>(config.queue_capacity);
        let (tx2, rx2) = bounded::<Job>(config.queue_capacity);
        let (signal_tx, signal_rx) = unbounded::<()>();
        // Bounded at the worker count: a saturated pool pushes back into
        // the class queues rather than accumulating formed batches.
        let (batch_tx, batch_rx) = bounded::<Batch>(config.workers);

        let dispatcher = {
            let cfg = config.clone();
            let shutting_down = shutting_down.clone();
            let metrics = metrics.clone();
            let admission = admission.clone();
            std::thread::Builder::new()
                .name("hpf-service-dispatcher".into())
                .spawn(move || {
                    dispatcher_loop(
                        cfg,
                        [rx0, rx1, rx2],
                        signal_rx,
                        batch_tx,
                        shutting_down,
                        metrics,
                        admission,
                    )
                })
                .expect("spawn dispatcher")
        };

        let factory = WorkerFactory {
            batch_rx,
            cache: cache.clone(),
            config: config.clone(),
            metrics: metrics.clone(),
            breaker: breaker.clone(),
            admission: admission.clone(),
        };
        let slots: Vec<WorkerSlot> = (0..config.workers)
            .map(|i| {
                let state = WorkerState::new();
                WorkerSlot::new(factory.spawn(i, state.clone()), state)
            })
            .collect();
        let slots = Arc::new(Mutex::new(slots));

        let supervisor = if config.supervision_enabled {
            let slots = slots.clone();
            let shutting_down = shutting_down.clone();
            Some(
                std::thread::Builder::new()
                    .name("hpf-service-supervisor".into())
                    .spawn(move || supervisor_loop(slots, factory, shutting_down))
                    .expect("spawn supervisor"),
            )
        } else {
            None
        };

        SolverService {
            config,
            class_txs: Some([tx0, tx1, tx2]),
            signal_tx: Some(signal_tx),
            metrics,
            cache,
            next_id: AtomicU64::new(1),
            shutting_down,
            breaker,
            admission,
            dispatcher: Some(dispatcher),
            slots,
            supervisor,
        }
    }

    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Validate and enqueue a request. Non-blocking: a full class queue
    /// returns [`ServiceError::Busy`] immediately (backpressure),
    /// malformed requests fail up front, and — once the admission
    /// controller is calibrated — jobs whose deadline cannot be met are
    /// refused with a typed [`ServiceError::Shed`] rather than queued to
    /// die.
    pub fn submit(&self, request: SolveRequest) -> Result<JobHandle, ServiceError> {
        if let Err(why) = validate(&request) {
            self.metrics
                .rejected_invalid
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::InvalidRequest(why));
        }
        let mut request = request;
        // Stamp a deterministic non-zero trace id before any telemetry
        // fires, so the shed event and the worker's machine span carry
        // the same id. Callers may pre-assign their own via `.trace()`.
        let job_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        if request.trace_id == 0 {
            request.trace_id = crate::events::derive_trace_id(job_id);
        }
        let predicted_us = match self.admission.decide(&request) {
            AdmissionDecision::Admit { predicted_us } => predicted_us,
            AdmissionDecision::Shed { predicted, budget } => {
                self.metrics.shed_total.fetch_add(1, Ordering::Relaxed);
                crate::events::emit(
                    &self.config.event_sink,
                    crate::ServiceEvent::Shed {
                        trace_id: request.trace_id,
                        class: request.qos,
                        predicted_us: predicted.as_micros() as u64,
                        budget_us: budget.as_micros() as u64,
                    },
                );
                return Err(ServiceError::Shed { predicted, budget });
            }
        };
        let (tx, rx) = bounded(1);
        let qos = request.qos;
        let class = qos.index();
        let trace_id = request.trace_id;
        let job = Job {
            id: job_id,
            fingerprint: Fingerprint::of(&request.matrix),
            request,
            submitted: Instant::now(),
            admission_us: predicted_us,
            responder: tx,
        };
        let class_txs = self.class_txs.as_ref().ok_or(ServiceError::Shutdown)?;
        match class_txs[class].try_send(job) {
            Ok(()) => {
                self.admission.admit(qos, predicted_us);
                self.metrics.accepted.fetch_add(1, Ordering::Relaxed);
                self.metrics.in_flight.fetch_add(1, Ordering::Relaxed);
                self.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
                self.metrics.class_queue_depth[class].fetch_add(1, Ordering::Relaxed);
                crate::events::emit(
                    &self.config.event_sink,
                    crate::ServiceEvent::Admitted {
                        trace_id,
                        class: qos,
                        predicted_us,
                    },
                );
                // Wake the dispatcher *after* the job is in its queue.
                if let Some(signal) = self.signal_tx.as_ref() {
                    let _ = signal.send(());
                }
                Ok(JobHandle { job_id, rx })
            }
            Err(TrySendError::Full(_)) => {
                self.metrics.rejected_busy.fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::Busy {
                    queue_capacity: self.config.queue_capacity,
                })
            }
            Err(TrySendError::Disconnected(_)) => Err(ServiceError::Shutdown),
        }
    }

    /// Submit and block for the result.
    pub fn solve(&self, request: SolveRequest) -> Result<SolveResponse, ServiceError> {
        self.submit(request)?.wait()
    }

    /// Point-in-time counters (including the current queue-depth gauges
    /// and service uptime).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Shared handle to the live counters, for external recorders that
    /// need to bump service metrics as events happen (e.g. the flight
    /// recorder counting post-mortem dumps by verdict).
    pub fn metrics_handle(&self) -> Arc<Metrics> {
        self.metrics.clone()
    }

    /// Number of plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.cache.lock().len()
    }

    /// The deadline-aware admission controller (calibration state and
    /// predicted backlog are readable for reports and tests).
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// Stop intake, answer every still-queued job with
    /// [`ServiceError::Shutdown`], join all threads. Jobs already handed
    /// to a worker run to completion.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.shutdown_in_place();
        self.metrics.snapshot()
    }

    /// True once shutdown has begun (visible to the dispatcher).
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Relaxed)
    }

    /// Number of structures whose circuit breaker is currently open.
    pub fn open_circuits(&self) -> usize {
        self.breaker.open_circuits()
    }

    /// Expose this service over HTTP at `addr` (`"127.0.0.1:0"` picks a
    /// free port, reported by [`crate::http::MetricsServer::addr`]):
    /// `GET /metrics` (Prometheus text), `GET /healthz` (JSON liveness:
    /// `ok` / `degraded` / `draining`, `503` once shutdown begins), and
    /// `GET /drift` (the latest published cost-oracle report). The
    /// listener runs on its own thread and outlives neither the returned
    /// handle nor the process.
    pub fn serve_http(&self, addr: &str) -> std::io::Result<crate::http::MetricsServer> {
        crate::http::spawn(
            addr,
            crate::http::HttpState {
                metrics: self.metrics.clone(),
                breaker: self.breaker.clone(),
                shutting_down: self.shutting_down.clone(),
            },
        )
    }

    fn shutdown_in_place(&mut self) {
        // Raise the flag first so the dispatcher refuses (rather than
        // executes) whatever is still queued, then close the intake and
        // signal channels: the dispatcher drains, answers the
        // stragglers, and exits; that drops the batch sender, which
        // winds down the workers. The supervisor is joined before the
        // workers so it cannot respawn a slot we are trying to reap.
        self.shutting_down.store(true, Ordering::SeqCst);
        self.class_txs.take();
        self.signal_tx.take();
        if let Some(s) = self.supervisor.take() {
            let _ = s.join();
        }
        if let Some(d) = self.dispatcher.take() {
            let _ = d.join();
        }
        for slot in self.slots.lock().drain(..) {
            if let Some(h) = slot.handle {
                let _ = h.join();
            }
        }
    }
}

impl Drop for SolverService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn validate(request: &SolveRequest) -> Result<(), String> {
    let a = &request.matrix;
    if !a.is_square() {
        return Err(format!(
            "matrix must be square, got {}x{}",
            a.n_rows(),
            a.n_cols()
        ));
    }
    if a.n_rows() == 0 {
        return Err("matrix is empty".into());
    }
    if request.rhs.is_empty() {
        return Err("no right-hand sides".into());
    }
    for (k, rhs) in request.rhs.iter().enumerate() {
        if rhs.len() != a.n_rows() {
            return Err(format!(
                "rhs {k} has length {}, matrix expects {}",
                rhs.len(),
                a.n_rows()
            ));
        }
    }
    if request.max_iters == 0 {
        return Err("max_iters must be positive".into());
    }
    if let crate::request::SolverKind::PcgMg { levels } = request.solver {
        let dims = request
            .grid
            .ok_or("pcg-mg requires grid dims (SolveRequest::grid)")?;
        if dims.n() != a.n_rows() {
            return Err(format!(
                "grid {dims} has {} unknowns, matrix has {}",
                dims.n(),
                a.n_rows()
            ));
        }
        if !dims.supports_levels(levels) {
            return Err(format!(
                "grid {dims} cannot support a {levels}-level hierarchy"
            ));
        }
    }
    if hpf_partition::by_name(&request.partitioner).is_none() {
        return Err(format!(
            "unknown partitioner {:?}; registered: {}",
            request.partitioner,
            hpf_partition::partitioner_names().join(", ")
        ));
    }
    Ok(())
}

/// Dispatcher: pull jobs from the class queues, pick the next class by
/// deficit round-robin, group batch mates *within* that class, forward
/// to the pool. During shutdown it stops forwarding and instead answers
/// every job still queued or buffered with a typed
/// [`ServiceError::Shutdown`], so no submitter is left hanging on a
/// silently dropped responder.
#[allow(clippy::too_many_arguments)]
fn dispatcher_loop(
    config: ServiceConfig,
    class_rxs: [Receiver<Job>; 3],
    signal_rx: Receiver<()>,
    batch_tx: Sender<Batch>,
    shutting_down: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
    admission: Arc<AdmissionController>,
) {
    let refuse = |job: Job| {
        admission.release(job.request.qos, job.admission_us);
        metrics.failed.fetch_add(1, Ordering::Relaxed);
        metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
        let _ = job.responder.send(Err(ServiceError::Shutdown));
    };
    // Zero weights would never earn a dequeue; treat them as one.
    let weights: [u32; 3] = std::array::from_fn(|i| config.qos_weights[i].max(1));
    let mut credits: [u32; 3] = weights;
    let mut pending: [VecDeque<Job>; 3] = Default::default();
    let mut intake_open = true;
    loop {
        // Pull everything queued right now into the per-class pending
        // buffers (bounded by the class-queue capacities, so this is
        // bounded memory). Intake is closed once every class channel
        // reports disconnected.
        let mut all_disconnected = true;
        for (i, rx) in class_rxs.iter().enumerate() {
            loop {
                match rx.try_recv() {
                    Ok(j) => {
                        metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        metrics.class_queue_depth[i].fetch_sub(1, Ordering::Relaxed);
                        pending[i].push_back(j);
                    }
                    Err(TryRecvError::Empty) => {
                        all_disconnected = false;
                        break;
                    }
                    Err(TryRecvError::Disconnected) => break,
                }
            }
        }
        if all_disconnected {
            intake_open = false;
        }
        if shutting_down.load(Ordering::SeqCst) {
            // Drain mode: answer everything buffered, then wait for the
            // channels to close (or more stragglers to refuse).
            for q in pending.iter_mut() {
                while let Some(job) = q.pop_front() {
                    refuse(job);
                }
            }
            if !intake_open {
                break;
            }
            match signal_rx.recv() {
                Ok(()) => continue,
                Err(_) => {
                    // Signal closed; one more refill pass drains the
                    // class queues to disconnection, then we exit above.
                    continue;
                }
            }
        }
        if pending.iter().all(|q| q.is_empty()) {
            if !intake_open {
                break;
            }
            // Nothing to do: block on the signal channel. Each accepted
            // job sends exactly one signal *after* it is enqueued, so a
            // wake-up here guarantees the next refill sees the job.
            match signal_rx.recv() {
                Ok(()) => {
                    // Collapse the signal backlog; the refill drains the
                    // class queues wholesale anyway.
                    while signal_rx.try_recv().is_ok() {}
                    continue;
                }
                Err(_) => {
                    intake_open = false;
                    continue;
                }
            }
        }
        // Deficit round-robin: the first class (in priority order) with
        // work and credits wins; when every backlogged class is out of
        // credits, replenish all from the configured weights.
        let class = match (0..3).find(|&i| !pending[i].is_empty() && credits[i] > 0) {
            Some(i) => i,
            None => {
                credits = weights;
                (0..3)
                    .find(|&i| !pending[i].is_empty())
                    .expect("some class has work")
            }
        };
        credits[class] -= 1;
        let seed = pending[class].pop_front().expect("class has work");
        // Batch mates come only from the same class: co-executing a
        // best-effort job inside an interactive batch would let it jump
        // the weighted queue.
        let batch = if config.batching_enabled {
            form_batch(seed, &mut pending[class], config.max_batch)
        } else {
            Batch { jobs: vec![seed] }
        };
        if let Err(send_err) = batch_tx.send(batch) {
            // Workers are gone; answer the batch and whatever is still
            // buffered rather than dropping responders silently.
            for job in send_err.0.jobs {
                refuse(job);
            }
            for q in pending.iter_mut() {
                while let Some(job) = q.pop_front() {
                    refuse(job);
                }
            }
            break;
        }
    }
}

/// Worker: execute batches until the batch channel closes or the
/// supervisor flags this worker for death. `execute_batch` already
/// answers every job exactly once (including on panics inside solves);
/// the outer `catch_unwind` is a last resort for bugs in the bookkeeping
/// itself — the batch's handles then observe `Shutdown` when their
/// responders drop, and the worker keeps serving.
pub(crate) fn worker_loop(
    batch_rx: Receiver<Batch>,
    cache: Arc<Mutex<PlanCache>>,
    config: ServiceConfig,
    metrics: Arc<Metrics>,
    breaker: Arc<CircuitBreaker>,
    admission: Arc<AdmissionController>,
    state: Arc<WorkerState>,
) {
    while let Ok(batch) = batch_rx.recv() {
        let _ = catch_unwind(AssertUnwindSafe(|| {
            crate::worker::execute_batch(
                batch,
                &cache,
                &config,
                &metrics,
                &breaker,
                &admission,
                Some(&state),
            );
        }));
        if state.abort.load(Ordering::SeqCst) {
            // The supervisor killed this worker mid-batch. The batch has
            // been answered (WorkerKilled); exit so the supervisor can
            // reap the thread and respawn the slot with fresh state.
            *state.current.lock() = None;
            return;
        }
    }
}
