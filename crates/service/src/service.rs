//! The service facade: bounded intake queue → dispatcher (batcher) →
//! worker pool.
//!
//! ```text
//!  submit() ──try_send──► job queue (bounded; full ⇒ Busy)
//!                             │ recv
//!                        dispatcher ── groups same-key jobs ──► batch
//!                             │                                 queue
//!                             ▼                                 (bounded)
//!                        pending buffer                            │
//!                                              workers ◄───────────┘
//!                                                 │  plan cache / partition
//!                                                 ▼
//!                                           responder channels
//! ```
//!
//! The dispatcher owns a small pending buffer so it can look past the
//! head job for batch mates without reordering unrelated work. The
//! batch queue is bounded at the worker count, so backpressure reaches
//! the intake queue (and submitters, as `Busy`) instead of ballooning
//! in memory.

use crate::batch::{form_batch, Batch, Job};
use crate::fingerprint::Fingerprint;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::plan::PlanCache;
use crate::request::{ServiceConfig, SolveRequest};
use crate::response::{ServiceError, SolveResponse};
use crate::retry::CircuitBreaker;
use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError, TrySendError};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Handle to one accepted job; redeem it for the result.
#[derive(Debug)]
pub struct JobHandle {
    pub job_id: u64,
    rx: Receiver<Result<SolveResponse, ServiceError>>,
}

impl JobHandle {
    /// Block until the job finishes (or the service shuts down).
    pub fn wait(self) -> Result<SolveResponse, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::Shutdown))
    }

    /// Block up to `timeout`; `None` means still running.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<SolveResponse, ServiceError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Some(r),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => None,
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                Some(Err(ServiceError::Shutdown))
            }
        }
    }
}

/// A running solver service. Dropping it (or calling
/// [`SolverService::shutdown`]) stops intake, drains accepted work, and
/// joins every thread.
pub struct SolverService {
    config: ServiceConfig,
    job_tx: Option<Sender<Job>>,
    metrics: Arc<Metrics>,
    cache: Arc<Mutex<PlanCache>>,
    next_id: AtomicU64,
    shutting_down: Arc<AtomicBool>,
    breaker: Arc<CircuitBreaker>,
    dispatcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl SolverService {
    /// Start the dispatcher and worker threads described by `config`.
    pub fn start(config: ServiceConfig) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        assert!(config.np > 0, "machine size must be positive");
        let metrics = Arc::new(Metrics::new());
        let cache = Arc::new(Mutex::new(PlanCache::new(
            config.plan_cache_capacity.max(1),
        )));
        let shutting_down = Arc::new(AtomicBool::new(false));
        let breaker = Arc::new(CircuitBreaker::new(
            config.breaker_threshold,
            config.breaker_cooldown,
        ));

        let (job_tx, job_rx) = bounded::<Job>(config.queue_capacity);
        // Bounded at the worker count: a saturated pool pushes back into
        // the job queue rather than accumulating formed batches.
        let (batch_tx, batch_rx) = bounded::<Batch>(config.workers);

        let dispatcher = {
            let cfg = config.clone();
            let shutting_down = shutting_down.clone();
            let metrics = metrics.clone();
            std::thread::Builder::new()
                .name("hpf-service-dispatcher".into())
                .spawn(move || dispatcher_loop(cfg, job_rx, batch_tx, shutting_down, metrics))
                .expect("spawn dispatcher")
        };

        let workers = (0..config.workers)
            .map(|i| {
                let rx = batch_rx.clone();
                let cache = cache.clone();
                let metrics = metrics.clone();
                let cfg = config.clone();
                let breaker = breaker.clone();
                std::thread::Builder::new()
                    .name(format!("hpf-service-worker-{i}"))
                    .spawn(move || worker_loop(rx, cache, cfg, metrics, breaker))
                    .expect("spawn worker")
            })
            .collect();

        SolverService {
            config,
            job_tx: Some(job_tx),
            metrics,
            cache,
            next_id: AtomicU64::new(1),
            shutting_down,
            breaker,
            dispatcher: Some(dispatcher),
            workers,
        }
    }

    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Validate and enqueue a request. Non-blocking: a full queue returns
    /// [`ServiceError::Busy`] immediately (backpressure), malformed
    /// requests fail up front.
    pub fn submit(&self, request: SolveRequest) -> Result<JobHandle, ServiceError> {
        if let Err(why) = validate(&request) {
            self.metrics
                .rejected_invalid
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::InvalidRequest(why));
        }
        let job_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1);
        let job = Job {
            id: job_id,
            fingerprint: Fingerprint::of(&request.matrix),
            request,
            submitted: Instant::now(),
            responder: tx,
        };
        let job_tx = self.job_tx.as_ref().ok_or(ServiceError::Shutdown)?;
        match job_tx.try_send(job) {
            Ok(()) => {
                self.metrics.accepted.fetch_add(1, Ordering::Relaxed);
                self.metrics.in_flight.fetch_add(1, Ordering::Relaxed);
                self.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
                Ok(JobHandle { job_id, rx })
            }
            Err(TrySendError::Full(_)) => {
                self.metrics.rejected_busy.fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::Busy {
                    queue_capacity: self.config.queue_capacity,
                })
            }
            Err(TrySendError::Disconnected(_)) => Err(ServiceError::Shutdown),
        }
    }

    /// Submit and block for the result.
    pub fn solve(&self, request: SolveRequest) -> Result<SolveResponse, ServiceError> {
        self.submit(request)?.wait()
    }

    /// Point-in-time counters (including the current queue-depth gauge
    /// and service uptime).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Number of plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.cache.lock().len()
    }

    /// Stop intake, answer every still-queued job with
    /// [`ServiceError::Shutdown`], join all threads. Jobs already handed
    /// to a worker run to completion.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.shutdown_in_place();
        self.metrics.snapshot()
    }

    /// True once shutdown has begun (visible to the dispatcher).
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Relaxed)
    }

    /// Number of structures whose circuit breaker is currently open.
    pub fn open_circuits(&self) -> usize {
        self.breaker.open_circuits()
    }

    /// Expose this service over HTTP at `addr` (`"127.0.0.1:0"` picks a
    /// free port, reported by [`crate::http::MetricsServer::addr`]):
    /// `GET /metrics` (Prometheus text), `GET /healthz` (JSON liveness,
    /// `503` once shutdown begins), and `GET /drift` (the latest
    /// published cost-oracle report). The listener runs on its own
    /// thread and outlives neither the returned handle nor the process.
    pub fn serve_http(&self, addr: &str) -> std::io::Result<crate::http::MetricsServer> {
        crate::http::spawn(
            addr,
            crate::http::HttpState {
                metrics: self.metrics.clone(),
                breaker: self.breaker.clone(),
                shutting_down: self.shutting_down.clone(),
            },
        )
    }

    fn shutdown_in_place(&mut self) {
        // Raise the flag first so the dispatcher refuses (rather than
        // executes) whatever is still queued, then close the job queue:
        // the dispatcher drains, answers the stragglers, and exits; that
        // drops the batch sender, which winds down the workers.
        self.shutting_down.store(true, Ordering::SeqCst);
        self.job_tx.take();
        if let Some(d) = self.dispatcher.take() {
            let _ = d.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for SolverService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn validate(request: &SolveRequest) -> Result<(), String> {
    let a = &request.matrix;
    if !a.is_square() {
        return Err(format!(
            "matrix must be square, got {}x{}",
            a.n_rows(),
            a.n_cols()
        ));
    }
    if a.n_rows() == 0 {
        return Err("matrix is empty".into());
    }
    if request.rhs.is_empty() {
        return Err("no right-hand sides".into());
    }
    for (k, rhs) in request.rhs.iter().enumerate() {
        if rhs.len() != a.n_rows() {
            return Err(format!(
                "rhs {k} has length {}, matrix expects {}",
                rhs.len(),
                a.n_rows()
            ));
        }
    }
    if request.max_iters == 0 {
        return Err("max_iters must be positive".into());
    }
    if hpf_partition::by_name(&request.partitioner).is_none() {
        return Err(format!(
            "unknown partitioner {:?}; registered: {}",
            request.partitioner,
            hpf_partition::partitioner_names().join(", ")
        ));
    }
    Ok(())
}

/// Dispatcher: pull jobs, group batch mates, forward to the pool. Owns a
/// pending buffer (≤ queue capacity) used to look past the head job.
/// During shutdown it stops forwarding and instead answers every job
/// still queued or buffered with a typed [`ServiceError::Shutdown`], so
/// no submitter is left hanging on a silently dropped responder.
fn dispatcher_loop(
    config: ServiceConfig,
    job_rx: Receiver<Job>,
    batch_tx: Sender<Batch>,
    shutting_down: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
) {
    let refuse = |job: Job| {
        metrics.failed.fetch_add(1, Ordering::Relaxed);
        metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
        let _ = job.responder.send(Err(ServiceError::Shutdown));
    };
    let mut pending: VecDeque<Job> = VecDeque::new();
    let pending_cap = config.queue_capacity;
    let mut intake_open = true;
    loop {
        // Seed job: buffered first, else block on the queue.
        let seed = match pending.pop_front() {
            Some(j) => j,
            None if intake_open => match job_rx.recv() {
                Ok(j) => {
                    metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    j
                }
                Err(_) => {
                    intake_open = false;
                    continue;
                }
            },
            None => break, // intake closed and nothing buffered: drain done
        };
        if shutting_down.load(Ordering::SeqCst) {
            // Drain mode: answer this job and everything behind it.
            refuse(seed);
            continue;
        }
        // Pull whatever else is queued right now into the buffer, so
        // batch formation sees it (bounded by the pending cap).
        while pending.len() < pending_cap {
            match job_rx.try_recv() {
                Ok(j) => {
                    metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    pending.push_back(j);
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    intake_open = false;
                    break;
                }
            }
        }
        let batch = if config.batching_enabled {
            form_batch(seed, &mut pending, config.max_batch)
        } else {
            Batch { jobs: vec![seed] }
        };
        if let Err(send_err) = batch_tx.send(batch) {
            // Workers are gone; answer the batch and whatever is still
            // buffered rather than dropping responders silently.
            for job in send_err.0.jobs {
                refuse(job);
            }
            while let Some(job) = pending.pop_front() {
                refuse(job);
            }
            break;
        }
    }
}

/// Worker: execute batches until the batch channel closes.
/// `execute_batch` already answers every job exactly once (including on
/// panics inside solves); the outer `catch_unwind` is a last resort for
/// bugs in the bookkeeping itself — the batch's handles then observe
/// `Shutdown` when their responders drop, and the worker keeps serving.
fn worker_loop(
    batch_rx: Receiver<Batch>,
    cache: Arc<Mutex<PlanCache>>,
    config: ServiceConfig,
    metrics: Arc<Metrics>,
    breaker: Arc<CircuitBreaker>,
) {
    while let Ok(batch) = batch_rx.recv() {
        let _ = catch_unwind(AssertUnwindSafe(|| {
            crate::worker::execute_batch(batch, &cache, &config, &metrics, &breaker);
        }));
    }
}
