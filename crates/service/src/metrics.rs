//! Service counters and the exportable snapshot.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Upper bounds (inclusive, in microseconds) of the latency histogram
/// buckets; the last bucket is unbounded.
pub const LATENCY_BUCKET_BOUNDS_US: [u64; 6] = [100, 1_000, 10_000, 100_000, 1_000_000, u64::MAX];

/// Live, lock-free counters updated by the submit path, the dispatcher,
/// and the workers.
#[derive(Debug)]
pub struct Metrics {
    pub accepted: AtomicU64,
    pub rejected_busy: AtomicU64,
    pub rejected_invalid: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub deadline_exceeded: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub partitioner_invocations: AtomicU64,
    pub batches_executed: AtomicU64,
    pub batched_jobs: AtomicU64,
    pub rhs_solved: AtomicU64,
    /// Jobs accepted but not yet finished (queued or executing).
    pub in_flight: AtomicU64,
    /// Faults the simulated machine injected from per-job fault plans.
    pub faults_injected: AtomicU64,
    /// Corruption events the protected solvers detected.
    pub faults_detected: AtomicU64,
    /// Checkpoint rollbacks the protected solvers performed.
    pub rollbacks: AtomicU64,
    /// Re-attempts after a retryable solver failure.
    pub retries: AtomicU64,
    /// Retries that stepped down the solver escalation chain.
    pub escalations: AtomicU64,
    /// Jobs refused because a structure's circuit breaker was open.
    pub breaker_open: AtomicU64,
    /// Gauge: jobs sitting in the intake queue right now (accepted by
    /// `submit`, not yet pulled by the dispatcher).
    pub queue_depth: AtomicU64,
    latency_buckets: [AtomicU64; LATENCY_BUCKET_BOUNDS_US.len()],
    /// When this `Metrics` was created (service start).
    started: Instant,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    pub fn new() -> Self {
        let z = || AtomicU64::new(0);
        Metrics {
            accepted: z(),
            rejected_busy: z(),
            rejected_invalid: z(),
            completed: z(),
            failed: z(),
            deadline_exceeded: z(),
            cache_hits: z(),
            cache_misses: z(),
            partitioner_invocations: z(),
            batches_executed: z(),
            batched_jobs: z(),
            rhs_solved: z(),
            in_flight: z(),
            faults_injected: z(),
            faults_detected: z(),
            rollbacks: z(),
            retries: z(),
            escalations: z(),
            breaker_open: z(),
            queue_depth: z(),
            latency_buckets: Default::default(),
            started: Instant::now(),
        }
    }

    /// Record one completed job's submit→response latency.
    pub fn observe_latency(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let idx = LATENCY_BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(LATENCY_BUCKET_BOUNDS_US.len() - 1);
        self.latency_buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Consistent-enough point-in-time copy of every counter, plus the
    /// `queue_depth` gauge and the service uptime at snapshot time.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        MetricsSnapshot {
            accepted: g(&self.accepted),
            rejected_busy: g(&self.rejected_busy),
            rejected_invalid: g(&self.rejected_invalid),
            completed: g(&self.completed),
            failed: g(&self.failed),
            deadline_exceeded: g(&self.deadline_exceeded),
            cache_hits: g(&self.cache_hits),
            cache_misses: g(&self.cache_misses),
            partitioner_invocations: g(&self.partitioner_invocations),
            batches_executed: g(&self.batches_executed),
            batched_jobs: g(&self.batched_jobs),
            rhs_solved: g(&self.rhs_solved),
            in_flight: g(&self.in_flight),
            faults_injected: g(&self.faults_injected),
            faults_detected: g(&self.faults_detected),
            rollbacks: g(&self.rollbacks),
            retries: g(&self.retries),
            escalations: g(&self.escalations),
            breaker_open: g(&self.breaker_open),
            queue_depth: g(&self.queue_depth) as usize,
            uptime_seconds: self.started.elapsed().as_secs_f64(),
            latency_bucket_bounds_us: LATENCY_BUCKET_BOUNDS_US.to_vec(),
            latency_buckets: self.latency_buckets.iter().map(g).collect(),
        }
    }
}

/// Serializable point-in-time view of the service counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub accepted: u64,
    pub rejected_busy: u64,
    pub rejected_invalid: u64,
    pub completed: u64,
    pub failed: u64,
    pub deadline_exceeded: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub partitioner_invocations: u64,
    pub batches_executed: u64,
    pub batched_jobs: u64,
    pub rhs_solved: u64,
    pub in_flight: u64,
    pub faults_injected: u64,
    pub faults_detected: u64,
    pub rollbacks: u64,
    pub retries: u64,
    pub escalations: u64,
    pub breaker_open: u64,
    pub queue_depth: usize,
    /// Seconds since the service (its `Metrics`) was created.
    pub uptime_seconds: f64,
    /// Inclusive bucket upper bounds in microseconds (last = +inf).
    pub latency_bucket_bounds_us: Vec<u64>,
    /// Completed-job latency counts per bucket.
    pub latency_buckets: Vec<u64>,
}

impl MetricsSnapshot {
    /// Render as a JSON object. Hand-rolled so the offline no-op serde
    /// stub doesn't matter; the field set is the public contract.
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .latency_bucket_bounds_us
            .iter()
            .zip(&self.latency_buckets)
            .map(|(b, c)| {
                let bound = if *b == u64::MAX {
                    "\"+inf\"".to_string()
                } else {
                    b.to_string()
                };
                format!("{{\"le_us\":{bound},\"count\":{c}}}")
            })
            .collect();
        format!(
            "{{\"accepted\":{},\"rejected_busy\":{},\"rejected_invalid\":{},\
             \"completed\":{},\"failed\":{},\"deadline_exceeded\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\"partitioner_invocations\":{},\
             \"batches_executed\":{},\"batched_jobs\":{},\"rhs_solved\":{},\
             \"in_flight\":{},\"faults_injected\":{},\"faults_detected\":{},\
             \"rollbacks\":{},\"retries\":{},\"escalations\":{},\
             \"breaker_open\":{},\"queue_depth\":{},\"uptime_seconds\":{},\
             \"latency\":[{}]}}",
            self.accepted,
            self.rejected_busy,
            self.rejected_invalid,
            self.completed,
            self.failed,
            self.deadline_exceeded,
            self.cache_hits,
            self.cache_misses,
            self.partitioner_invocations,
            self.batches_executed,
            self.batched_jobs,
            self.rhs_solved,
            self.in_flight,
            self.faults_injected,
            self.faults_detected,
            self.rollbacks,
            self.retries,
            self.escalations,
            self.breaker_open,
            self.queue_depth,
            if self.uptime_seconds.is_finite() {
                format!("{}", self.uptime_seconds)
            } else {
                "null".to_string()
            },
            buckets.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_lands_in_the_right_bucket() {
        let m = Metrics::new();
        m.observe_latency(Duration::from_micros(50)); // <= 100us
        m.observe_latency(Duration::from_micros(500)); // <= 1ms
        m.observe_latency(Duration::from_secs(100)); // +inf bucket
        let s = m.snapshot();
        assert_eq!(s.latency_buckets[0], 1);
        assert_eq!(s.latency_buckets[1], 1);
        assert_eq!(*s.latency_buckets.last().unwrap(), 1);
        assert_eq!(s.latency_buckets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn snapshot_reflects_counters_and_queue_depth() {
        let m = Metrics::new();
        m.accepted.fetch_add(5, Ordering::Relaxed);
        m.cache_hits.fetch_add(3, Ordering::Relaxed);
        m.queue_depth.store(7, Ordering::Relaxed);
        let s = m.snapshot();
        assert_eq!(s.accepted, 5);
        assert_eq!(s.cache_hits, 3);
        assert_eq!(s.queue_depth, 7);
    }

    #[test]
    fn uptime_is_nonnegative_and_advances() {
        let m = Metrics::new();
        let a = m.snapshot().uptime_seconds;
        assert!(a >= 0.0);
        std::thread::sleep(Duration::from_millis(5));
        let b = m.snapshot().uptime_seconds;
        assert!(b > a, "uptime should advance: {a} then {b}");
    }

    #[test]
    fn json_is_well_formed_and_names_every_counter() {
        let m = Metrics::new();
        m.observe_latency(Duration::from_millis(2));
        m.queue_depth.store(1, Ordering::Relaxed);
        let j = m.snapshot().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in [
            "accepted",
            "rejected_busy",
            "completed",
            "cache_hits",
            "partitioner_invocations",
            "batches_executed",
            "faults_injected",
            "faults_detected",
            "rollbacks",
            "retries",
            "escalations",
            "breaker_open",
            "queue_depth",
            "uptime_seconds",
            "latency",
            "+inf",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
