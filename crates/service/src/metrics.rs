//! Service counters and the exportable snapshot, including its
//! Prometheus text exposition (rendered here so the HTTP listener in
//! [`crate::http`] needs nothing outside this crate).

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Upper bounds (inclusive, in microseconds) of the latency histogram
/// buckets; the last bucket is unbounded.
pub const LATENCY_BUCKET_BOUNDS_US: [u64; 6] = [100, 1_000, 10_000, 100_000, 1_000_000, u64::MAX];

/// Live, lock-free counters updated by the submit path, the dispatcher,
/// and the workers.
#[derive(Debug)]
pub struct Metrics {
    pub accepted: AtomicU64,
    pub rejected_busy: AtomicU64,
    pub rejected_invalid: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub deadline_exceeded: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub partitioner_invocations: AtomicU64,
    pub batches_executed: AtomicU64,
    pub batched_jobs: AtomicU64,
    pub rhs_solved: AtomicU64,
    /// Jobs accepted but not yet finished (queued or executing).
    pub in_flight: AtomicU64,
    /// Faults the simulated machine injected from per-job fault plans.
    pub faults_injected: AtomicU64,
    /// Corruption events the protected solvers detected.
    pub faults_detected: AtomicU64,
    /// Checkpoint rollbacks the protected solvers performed.
    pub rollbacks: AtomicU64,
    /// Re-attempts after a retryable solver failure.
    pub retries: AtomicU64,
    /// Retries that stepped down the solver escalation chain.
    pub escalations: AtomicU64,
    /// Jobs refused because a structure's circuit breaker was open.
    pub breaker_open: AtomicU64,
    /// Jobs refused on arrival by deadline-aware admission control.
    pub shed_total: AtomicU64,
    /// Hung workers the supervisor flagged for death.
    pub supervisor_kills: AtomicU64,
    /// Worker threads the supervisor respawned.
    pub worker_restarts: AtomicU64,
    /// Gauge: jobs sitting in the intake queue right now (accepted by
    /// `submit`, not yet pulled by the dispatcher).
    pub queue_depth: AtomicU64,
    /// Gauge: per-QoS-class intake queue depth, indexed by
    /// [`crate::QosClass::index`].
    pub class_queue_depth: [AtomicU64; 3],
    /// Per-class intake queue capacity (set once at service start;
    /// denominator of the `queue_saturation` gauge).
    pub queue_capacity: AtomicU64,
    latency_buckets: [AtomicU64; LATENCY_BUCKET_BOUNDS_US.len()],
    /// Total observed latency in microseconds (histogram `_sum`).
    latency_sum_us: AtomicU64,
    /// Completed/failed counts keyed by `(solver, scenario)` so the
    /// exposition can tell a CG run from a GMRES escalation. BTreeMap
    /// keeps the exposition order deterministic.
    solve_outcomes: Mutex<BTreeMap<(String, String), OutcomeCounts>>,
    /// Post-mortem dumps the flight recorder produced, keyed by the
    /// top-ranked verdict. BTreeMap keeps the exposition deterministic.
    postmortems: Mutex<BTreeMap<String, u64>>,
    /// When this `Metrics` was created (service start).
    started: Instant,
}

#[derive(Debug, Default, Clone, Copy)]
struct OutcomeCounts {
    completed: u64,
    failed: u64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    pub fn new() -> Self {
        let z = || AtomicU64::new(0);
        Metrics {
            accepted: z(),
            rejected_busy: z(),
            rejected_invalid: z(),
            completed: z(),
            failed: z(),
            deadline_exceeded: z(),
            cache_hits: z(),
            cache_misses: z(),
            partitioner_invocations: z(),
            batches_executed: z(),
            batched_jobs: z(),
            rhs_solved: z(),
            in_flight: z(),
            faults_injected: z(),
            faults_detected: z(),
            rollbacks: z(),
            retries: z(),
            escalations: z(),
            breaker_open: z(),
            shed_total: z(),
            supervisor_kills: z(),
            worker_restarts: z(),
            queue_depth: z(),
            class_queue_depth: Default::default(),
            queue_capacity: z(),
            latency_buckets: Default::default(),
            latency_sum_us: AtomicU64::new(0),
            solve_outcomes: Mutex::new(BTreeMap::new()),
            postmortems: Mutex::new(BTreeMap::new()),
            started: Instant::now(),
        }
    }

    /// Record one completed job's submit→response latency.
    pub fn observe_latency(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let idx = LATENCY_BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(LATENCY_BUCKET_BOUNDS_US.len() - 1);
        self.latency_buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Record a finished solve under its `(solver, scenario)` label
    /// pair. `solver` should be the solver that actually produced the
    /// outcome (post-escalation). Label values are sanitized to the
    /// Prometheus-safe charset at record time so JSON and exposition
    /// agree.
    pub fn record_solve_outcome(&self, solver: &str, scenario: &str, completed: bool) {
        let key = (sanitize_label(solver), sanitize_label(scenario));
        let mut map = self.solve_outcomes.lock();
        let entry = map.entry(key).or_default();
        if completed {
            entry.completed += 1;
        } else {
            entry.failed += 1;
        }
    }

    /// Record one flight-recorder post-mortem dump under its top-ranked
    /// verdict (`"fault-bitflip"`, `"stagnation"`, ...). Labels are
    /// sanitized at record time like the solve-outcome labels.
    pub fn record_postmortem(&self, verdict: &str) {
        *self
            .postmortems
            .lock()
            .entry(sanitize_label(verdict))
            .or_default() += 1;
    }

    /// Consistent-enough point-in-time copy of every counter, plus the
    /// `queue_depth` gauge and the service uptime at snapshot time.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        MetricsSnapshot {
            accepted: g(&self.accepted),
            rejected_busy: g(&self.rejected_busy),
            rejected_invalid: g(&self.rejected_invalid),
            completed: g(&self.completed),
            failed: g(&self.failed),
            deadline_exceeded: g(&self.deadline_exceeded),
            cache_hits: g(&self.cache_hits),
            cache_misses: g(&self.cache_misses),
            partitioner_invocations: g(&self.partitioner_invocations),
            batches_executed: g(&self.batches_executed),
            batched_jobs: g(&self.batched_jobs),
            rhs_solved: g(&self.rhs_solved),
            in_flight: g(&self.in_flight),
            faults_injected: g(&self.faults_injected),
            faults_detected: g(&self.faults_detected),
            rollbacks: g(&self.rollbacks),
            retries: g(&self.retries),
            escalations: g(&self.escalations),
            breaker_open: g(&self.breaker_open),
            shed_total: g(&self.shed_total),
            supervisor_kills: g(&self.supervisor_kills),
            worker_restarts: g(&self.worker_restarts),
            queue_depth: g(&self.queue_depth) as usize,
            class_queue_depth: [
                g(&self.class_queue_depth[0]),
                g(&self.class_queue_depth[1]),
                g(&self.class_queue_depth[2]),
            ],
            queue_saturation: {
                // The most saturated class queue: one full sub-queue
                // means that class's submitters are about to see Busy,
                // regardless of how empty the others are.
                let cap = g(&self.queue_capacity);
                let worst = self.class_queue_depth.iter().map(g).max().unwrap_or(0);
                if cap == 0 {
                    0.0
                } else {
                    worst as f64 / cap as f64
                }
            },
            uptime_seconds: self.started.elapsed().as_secs_f64(),
            latency_bucket_bounds_us: LATENCY_BUCKET_BOUNDS_US.to_vec(),
            latency_buckets: self.latency_buckets.iter().map(g).collect(),
            latency_sum_us: g(&self.latency_sum_us),
            solve_outcomes: self
                .solve_outcomes
                .lock()
                .iter()
                .map(|((solver, scenario), c)| SolveOutcome {
                    solver: solver.clone(),
                    scenario: scenario.clone(),
                    completed: c.completed,
                    failed: c.failed,
                })
                .collect(),
            postmortems: self
                .postmortems
                .lock()
                .iter()
                .map(|(verdict, count)| PostmortemCount {
                    verdict: verdict.clone(),
                    count: *count,
                })
                .collect(),
        }
    }
}

/// Replace anything outside the Prometheus-safe label charset with
/// `_` so label values never need escaping (and never contain spaces
/// or quotes that would break line-oriented consumers).
fn sanitize_label(s: &str) -> String {
    let cleaned: String = s
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':' | '/') {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "unknown".to_string()
    } else {
        cleaned
    }
}

/// Escape a label value for the Prometheus text exposition format:
/// backslash, double quote, and newline must be escaped inside quoted
/// label values. Applied at exposition time so the output stays
/// well-formed even for snapshots built outside `record_outcome` (e.g.
/// deserialized from JSON), where `sanitize_label` never ran.
fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// One `(solver, scenario)` row of the labeled outcome counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolveOutcome {
    pub solver: String,
    pub scenario: String,
    pub completed: u64,
    pub failed: u64,
}

/// One verdict row of the labeled post-mortem dump counter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PostmortemCount {
    pub verdict: String,
    pub count: u64,
}

/// Serializable point-in-time view of the service counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub accepted: u64,
    pub rejected_busy: u64,
    pub rejected_invalid: u64,
    pub completed: u64,
    pub failed: u64,
    pub deadline_exceeded: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub partitioner_invocations: u64,
    pub batches_executed: u64,
    pub batched_jobs: u64,
    pub rhs_solved: u64,
    pub in_flight: u64,
    pub faults_injected: u64,
    pub faults_detected: u64,
    pub rollbacks: u64,
    pub retries: u64,
    pub escalations: u64,
    pub breaker_open: u64,
    pub shed_total: u64,
    pub supervisor_kills: u64,
    pub worker_restarts: u64,
    pub queue_depth: usize,
    /// Queued jobs per QoS class (Interactive, Batch, BestEffort).
    pub class_queue_depth: [u64; 3],
    /// Depth of the most saturated class queue over the per-class
    /// capacity (0.0 when capacity is unknown).
    pub queue_saturation: f64,
    /// Seconds since the service (its `Metrics`) was created.
    pub uptime_seconds: f64,
    /// Inclusive bucket upper bounds in microseconds (last = +inf).
    pub latency_bucket_bounds_us: Vec<u64>,
    /// Completed-job latency counts per bucket.
    pub latency_buckets: Vec<u64>,
    /// Total observed latency in microseconds (histogram `_sum`).
    pub latency_sum_us: u64,
    /// Per-`(solver, scenario)` completed/failed counts, sorted by key.
    pub solve_outcomes: Vec<SolveOutcome>,
    /// Flight-recorder dumps per top-ranked verdict, sorted by verdict.
    #[serde(default)]
    pub postmortems: Vec<PostmortemCount>,
}

impl MetricsSnapshot {
    /// Render as a JSON object. Hand-rolled so the offline no-op serde
    /// stub doesn't matter; the field set is the public contract.
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .latency_bucket_bounds_us
            .iter()
            .zip(&self.latency_buckets)
            .map(|(b, c)| {
                let bound = if *b == u64::MAX {
                    "\"+inf\"".to_string()
                } else {
                    b.to_string()
                };
                format!("{{\"le_us\":{bound},\"count\":{c}}}")
            })
            .collect();
        let outcomes: Vec<String> = self
            .solve_outcomes
            .iter()
            .map(|o| {
                format!(
                    "{{\"solver\":\"{}\",\"scenario\":\"{}\",\"completed\":{},\"failed\":{}}}",
                    o.solver, o.scenario, o.completed, o.failed
                )
            })
            .collect();
        let postmortems: Vec<String> = self
            .postmortems
            .iter()
            .map(|p| format!("{{\"verdict\":\"{}\",\"count\":{}}}", p.verdict, p.count))
            .collect();
        format!(
            "{{\"accepted\":{},\"rejected_busy\":{},\"rejected_invalid\":{},\
             \"completed\":{},\"failed\":{},\"deadline_exceeded\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\"partitioner_invocations\":{},\
             \"batches_executed\":{},\"batched_jobs\":{},\"rhs_solved\":{},\
             \"in_flight\":{},\"faults_injected\":{},\"faults_detected\":{},\
             \"rollbacks\":{},\"retries\":{},\"escalations\":{},\
             \"breaker_open\":{},\"shed_total\":{},\"supervisor_kills\":{},\
             \"worker_restarts\":{},\"queue_depth\":{},\
             \"class_queue_depth\":[{},{},{}],\"queue_saturation\":{},\
             \"uptime_seconds\":{},\
             \"latency_sum_us\":{},\"latency\":[{}],\"solve_outcomes\":[{}],\
             \"postmortems\":[{}]}}",
            self.accepted,
            self.rejected_busy,
            self.rejected_invalid,
            self.completed,
            self.failed,
            self.deadline_exceeded,
            self.cache_hits,
            self.cache_misses,
            self.partitioner_invocations,
            self.batches_executed,
            self.batched_jobs,
            self.rhs_solved,
            self.in_flight,
            self.faults_injected,
            self.faults_detected,
            self.rollbacks,
            self.retries,
            self.escalations,
            self.breaker_open,
            self.shed_total,
            self.supervisor_kills,
            self.worker_restarts,
            self.queue_depth,
            self.class_queue_depth[0],
            self.class_queue_depth[1],
            self.class_queue_depth[2],
            if self.queue_saturation.is_finite() {
                format!("{}", self.queue_saturation)
            } else {
                "null".to_string()
            },
            if self.uptime_seconds.is_finite() {
                format!("{}", self.uptime_seconds)
            } else {
                "null".to_string()
            },
            self.latency_sum_us,
            buckets.join(","),
            outcomes.join(","),
            postmortems.join(",")
        )
    }

    /// Render as Prometheus text exposition (version 0.0.4): `# HELP` /
    /// `# TYPE` headers, `_total`-suffixed counters, plain gauges,
    /// labeled per-`(solver, scenario)` outcome counters, and the
    /// latency histogram as a cumulative `_bucket` series with `le`
    /// labels in **seconds** (converted from the microsecond bucket
    /// bounds), a `+Inf` bucket, `_sum` (seconds), and `_count`.
    pub fn to_prometheus(&self) -> String {
        const PREFIX: &str = "hpf_service";
        let mut out = String::new();
        let counters: [(&str, u64, &str); 20] = [
            ("accepted", self.accepted, "Jobs accepted by submit()"),
            (
                "rejected_busy",
                self.rejected_busy,
                "Jobs refused: queue full",
            ),
            (
                "rejected_invalid",
                self.rejected_invalid,
                "Jobs refused: malformed request",
            ),
            ("completed", self.completed, "Jobs finished successfully"),
            ("failed", self.failed, "Jobs finished with an error"),
            (
                "deadline_exceeded",
                self.deadline_exceeded,
                "Jobs shed because their deadline expired in queue",
            ),
            ("cache_hits", self.cache_hits, "Plan cache hits"),
            ("cache_misses", self.cache_misses, "Plan cache misses"),
            (
                "partitioner_invocations",
                self.partitioner_invocations,
                "Fresh partitioner runs",
            ),
            (
                "batches_executed",
                self.batches_executed,
                "Batches handed to workers",
            ),
            (
                "batched_jobs",
                self.batched_jobs,
                "Jobs that shared a batch with at least one other job",
            ),
            ("rhs_solved", self.rhs_solved, "Right-hand sides solved"),
            (
                "faults_injected",
                self.faults_injected,
                "Faults the simulated machine injected",
            ),
            (
                "faults_detected",
                self.faults_detected,
                "Corruption events protected solvers detected",
            ),
            (
                "rollbacks",
                self.rollbacks,
                "Checkpoint rollbacks performed",
            ),
            ("retries", self.retries, "Job re-attempts"),
            (
                "escalations",
                self.escalations,
                "Retries that escalated the solver",
            ),
            (
                "shed",
                self.shed_total,
                "Jobs refused on arrival by deadline-aware admission",
            ),
            (
                "supervisor_kills",
                self.supervisor_kills,
                "Hung workers killed by the supervisor",
            ),
            (
                "worker_restarts",
                self.worker_restarts,
                "Worker threads respawned by the supervisor",
            ),
        ];
        for (name, value, help) in counters {
            out.push_str(&format!(
                "# HELP {PREFIX}_{name}_total {help}\n\
                 # TYPE {PREFIX}_{name}_total counter\n\
                 {PREFIX}_{name}_total {value}\n"
            ));
        }
        // breaker_open is a counter of refusals, not the breaker state.
        out.push_str(&format!(
            "# HELP {PREFIX}_breaker_open_total Jobs refused by an open circuit breaker\n\
             # TYPE {PREFIX}_breaker_open_total counter\n\
             {PREFIX}_breaker_open_total {}\n",
            self.breaker_open
        ));
        if !self.solve_outcomes.is_empty() {
            out.push_str(&format!(
                "# HELP {PREFIX}_solve_completed_total Jobs finished successfully, by solver and scenario\n\
                 # TYPE {PREFIX}_solve_completed_total counter\n"
            ));
            for o in &self.solve_outcomes {
                out.push_str(&format!(
                    "{PREFIX}_solve_completed_total{{solver=\"{}\",scenario=\"{}\"}} {}\n",
                    escape_label_value(&o.solver),
                    escape_label_value(&o.scenario),
                    o.completed
                ));
            }
            out.push_str(&format!(
                "# HELP {PREFIX}_solve_failed_total Jobs finished with an error, by solver and scenario\n\
                 # TYPE {PREFIX}_solve_failed_total counter\n"
            ));
            for o in &self.solve_outcomes {
                out.push_str(&format!(
                    "{PREFIX}_solve_failed_total{{solver=\"{}\",scenario=\"{}\"}} {}\n",
                    escape_label_value(&o.solver),
                    escape_label_value(&o.scenario),
                    o.failed
                ));
            }
        }
        if !self.postmortems.is_empty() {
            out.push_str(&format!(
                "# HELP {PREFIX}_postmortems_total Flight-recorder post-mortem dumps, by top-ranked verdict\n\
                 # TYPE {PREFIX}_postmortems_total counter\n"
            ));
            for p in &self.postmortems {
                out.push_str(&format!(
                    "{PREFIX}_postmortems_total{{verdict=\"{}\"}} {}\n",
                    escape_label_value(&p.verdict),
                    p.count
                ));
            }
        }
        let gauges: [(&str, String, &str); 4] = [
            (
                "in_flight",
                self.in_flight.to_string(),
                "Jobs accepted but not yet finished",
            ),
            (
                "queue_depth",
                self.queue_depth.to_string(),
                "Jobs waiting in the intake queue",
            ),
            (
                "queue_saturation",
                format!("{}", self.queue_saturation),
                "Intake queue depth over capacity (0.0 to 1.0)",
            ),
            (
                "uptime_seconds",
                format!("{}", self.uptime_seconds),
                "Seconds since the service started",
            ),
        ];
        for (name, value, help) in gauges {
            out.push_str(&format!(
                "# HELP {PREFIX}_{name} {help}\n\
                 # TYPE {PREFIX}_{name} gauge\n\
                 {PREFIX}_{name} {value}\n"
            ));
        }
        out.push_str(&format!(
            "# HELP {PREFIX}_class_queue_depth Queued jobs per QoS class\n\
             # TYPE {PREFIX}_class_queue_depth gauge\n"
        ));
        for (class, depth) in ["interactive", "batch", "best-effort"]
            .iter()
            .zip(self.class_queue_depth)
        {
            out.push_str(&format!(
                "{PREFIX}_class_queue_depth{{class=\"{class}\"}} {depth}\n"
            ));
        }
        out.push_str(&format!(
            "# HELP {PREFIX}_latency_seconds Submit-to-response latency of completed jobs\n\
             # TYPE {PREFIX}_latency_seconds histogram\n"
        ));
        let mut cumulative = 0u64;
        let mut saw_inf = false;
        for (bound_us, count) in self
            .latency_bucket_bounds_us
            .iter()
            .zip(&self.latency_buckets)
        {
            cumulative += count;
            let le = if *bound_us == u64::MAX {
                saw_inf = true;
                "+Inf".to_string()
            } else {
                format!("{}", *bound_us as f64 / 1e6)
            };
            out.push_str(&format!(
                "{PREFIX}_latency_seconds_bucket{{le=\"{le}\"}} {cumulative}\n"
            ));
        }
        // A histogram without a +Inf bucket is malformed; synthesize
        // one even if the bound table ever drops the open-ended bucket.
        if !saw_inf {
            out.push_str(&format!(
                "{PREFIX}_latency_seconds_bucket{{le=\"+Inf\"}} {cumulative}\n"
            ));
        }
        out.push_str(&format!(
            "{PREFIX}_latency_seconds_sum {}\n",
            self.latency_sum_us as f64 / 1e6
        ));
        out.push_str(&format!("{PREFIX}_latency_seconds_count {cumulative}\n"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_lands_in_the_right_bucket() {
        let m = Metrics::new();
        m.observe_latency(Duration::from_micros(50)); // <= 100us
        m.observe_latency(Duration::from_micros(500)); // <= 1ms
        m.observe_latency(Duration::from_secs(100)); // +inf bucket
        let s = m.snapshot();
        assert_eq!(s.latency_buckets[0], 1);
        assert_eq!(s.latency_buckets[1], 1);
        assert_eq!(*s.latency_buckets.last().unwrap(), 1);
        assert_eq!(s.latency_buckets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn snapshot_reflects_counters_and_queue_depth() {
        let m = Metrics::new();
        m.accepted.fetch_add(5, Ordering::Relaxed);
        m.cache_hits.fetch_add(3, Ordering::Relaxed);
        m.queue_depth.store(7, Ordering::Relaxed);
        let s = m.snapshot();
        assert_eq!(s.accepted, 5);
        assert_eq!(s.cache_hits, 3);
        assert_eq!(s.queue_depth, 7);
    }

    #[test]
    fn uptime_is_nonnegative_and_advances() {
        let m = Metrics::new();
        let a = m.snapshot().uptime_seconds;
        assert!(a >= 0.0);
        std::thread::sleep(Duration::from_millis(5));
        let b = m.snapshot().uptime_seconds;
        assert!(b > a, "uptime should advance: {a} then {b}");
    }

    #[test]
    fn json_is_well_formed_and_names_every_counter() {
        let m = Metrics::new();
        m.observe_latency(Duration::from_millis(2));
        m.queue_depth.store(1, Ordering::Relaxed);
        let j = m.snapshot().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in [
            "accepted",
            "rejected_busy",
            "completed",
            "cache_hits",
            "partitioner_invocations",
            "batches_executed",
            "faults_injected",
            "faults_detected",
            "rollbacks",
            "retries",
            "escalations",
            "breaker_open",
            "shed_total",
            "supervisor_kills",
            "worker_restarts",
            "queue_depth",
            "class_queue_depth",
            "queue_saturation",
            "uptime_seconds",
            "latency",
            "+inf",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn latency_sum_accumulates_in_microseconds() {
        let m = Metrics::new();
        m.observe_latency(Duration::from_micros(150));
        m.observe_latency(Duration::from_micros(850));
        let s = m.snapshot();
        assert_eq!(s.latency_sum_us, 1000);
        let j = s.to_json();
        assert!(j.contains("\"latency_sum_us\":1000"), "{j}");
    }

    #[test]
    fn solve_outcomes_are_labeled_sorted_and_sanitized() {
        let m = Metrics::new();
        m.record_solve_outcome("gmres", "col block", true);
        m.record_solve_outcome("cg", "default", true);
        m.record_solve_outcome("cg", "default", true);
        m.record_solve_outcome("cg", "default", false);
        let s = m.snapshot();
        assert_eq!(s.solve_outcomes.len(), 2);
        // BTreeMap ordering: "cg" before "gmres".
        assert_eq!(s.solve_outcomes[0].solver, "cg");
        assert_eq!(s.solve_outcomes[0].completed, 2);
        assert_eq!(s.solve_outcomes[0].failed, 1);
        // The space was sanitized away at record time.
        assert_eq!(s.solve_outcomes[1].scenario, "col_block");
    }

    #[test]
    fn queue_saturation_is_the_most_saturated_class() {
        let m = Metrics::new();
        // Capacity unknown: saturation pinned to 0 rather than NaN.
        m.class_queue_depth[1].store(3, Ordering::Relaxed);
        assert_eq!(m.snapshot().queue_saturation, 0.0);
        m.queue_capacity.store(12, Ordering::Relaxed);
        m.class_queue_depth[0].store(2, Ordering::Relaxed);
        m.class_queue_depth[1].store(3, Ordering::Relaxed);
        m.class_queue_depth[2].store(1, Ordering::Relaxed);
        let s = m.snapshot();
        assert_eq!(s.class_queue_depth, [2, 3, 1]);
        assert!((s.queue_saturation - 0.25).abs() < 1e-12);
        let text = s.to_prometheus();
        assert!(text.contains("hpf_service_queue_saturation 0.25"), "{text}");
        assert!(
            text.contains("hpf_service_class_queue_depth{class=\"interactive\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("hpf_service_class_queue_depth{class=\"best-effort\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn prometheus_exposition_has_sum_labels_and_inf_bucket() {
        let m = Metrics::new();
        m.observe_latency(Duration::from_micros(500));
        m.record_solve_outcome("cg", "rowwise", true);
        m.record_solve_outcome("bicgstab", "colwise", false);
        let text = m.snapshot().to_prometheus();
        assert!(
            text.contains("hpf_service_latency_seconds_sum 0.0005"),
            "{text}"
        );
        assert!(text.contains("hpf_service_latency_seconds_count 1"));
        assert!(text.contains("latency_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text
            .contains("hpf_service_solve_completed_total{solver=\"cg\",scenario=\"rowwise\"} 1"));
        assert!(text.contains(
            "hpf_service_solve_failed_total{solver=\"bicgstab\",scenario=\"colwise\"} 1"
        ));
        // No metric line carries a space inside its name+labels token.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split(' ').count(), 2, "bad line {line:?}");
        }
    }

    #[test]
    fn prometheus_label_values_are_escaped_at_exposition_time() {
        // A snapshot built directly (deserialized, hand-assembled) never
        // went through record-time sanitization, so the exposition must
        // escape backslash, quote, and newline itself.
        let mut s = Metrics::new().snapshot();
        s.solve_outcomes.push(SolveOutcome {
            solver: "cg\"evil".into(),
            scenario: "a\\b\nc".into(),
            completed: 1,
            failed: 2,
        });
        let text = s.to_prometheus();
        assert!(
            text.contains(
                "hpf_service_solve_completed_total{solver=\"cg\\\"evil\",scenario=\"a\\\\b\\nc\"} 1"
            ),
            "{text}"
        );
        // The raw newline must not survive into the exposition: every
        // non-comment line still parses as exactly `name_or_labels value`.
        for line in text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
        {
            assert_eq!(line.split(' ').count(), 2, "bad line {line:?}");
        }
        assert_eq!(escape_label_value("plain-label_1"), "plain-label_1");
        assert_eq!(escape_label_value("q\"x"), "q\\\"x");
        assert_eq!(escape_label_value("b\\x"), "b\\\\x");
        assert_eq!(escape_label_value("n\nx"), "n\\nx");
    }
}
