//! Requests and service configuration.

use hpf_machine::{FaultPlan, Topology};
use hpf_mg::GridDims;
use hpf_solvers::{RecoveryConfig, StopCriterion};
use hpf_sparse::CsrMatrix;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// Which distributed Krylov method to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolverKind {
    /// Plain CG (requires a symmetric operator).
    Cg,
    /// Jacobi-preconditioned CG.
    PcgJacobi,
    /// BiCG (uses `Aᵀ` products).
    Bicg,
    /// BiCGSTAB.
    Bicgstab,
    /// Restarted GMRES(m).
    Gmres { restart: usize },
    /// Multigrid-preconditioned CG over a `levels`-deep geometric
    /// hierarchy (the HPCG-class workload). Requires
    /// [`SolveRequest::grid`] so the worker can rebuild the hierarchy;
    /// the hierarchy itself is cached in the plan cache, keyed on
    /// `levels`.
    PcgMg { levels: usize },
}

impl SolverKind {
    pub fn name(&self) -> &'static str {
        match self {
            SolverKind::Cg => "cg",
            SolverKind::PcgJacobi => "pcg-jacobi",
            SolverKind::Bicg => "bicg",
            SolverKind::Bicgstab => "bicgstab",
            SolverKind::Gmres { .. } => "gmres",
            SolverKind::PcgMg { .. } => "pcg-mg",
        }
    }

    /// Multigrid hierarchy depth this solver needs cached alongside the
    /// plan; 0 for every non-multigrid method (part of the plan-cache
    /// key).
    pub fn mg_levels(&self) -> usize {
        match self {
            SolverKind::PcgMg { levels } => *levels,
            _ => 0,
        }
    }
}

/// Per-tenant quality-of-service class. Each class has its own bounded
/// sub-queue (so one tenant's flood cannot crowd out another class) and
/// a weighted-fair share of dispatcher attention
/// ([`ServiceConfig::qos_weights`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum QosClass {
    /// Latency-sensitive: highest dequeue weight; the class the soak
    /// asserts a p99 band for.
    Interactive,
    /// Default throughput traffic.
    Batch,
    /// Scavenger class: runs when nothing better is queued.
    BestEffort,
}

impl QosClass {
    pub const ALL: [QosClass; 3] = [QosClass::Interactive, QosClass::Batch, QosClass::BestEffort];

    /// Stable label used in metrics and reports.
    pub fn name(&self) -> &'static str {
        match self {
            QosClass::Interactive => "interactive",
            QosClass::Batch => "batch",
            QosClass::BestEffort => "best-effort",
        }
    }

    /// Index into per-class arrays (`ALL[i].index() == i`).
    pub fn index(&self) -> usize {
        match self {
            QosClass::Interactive => 0,
            QosClass::Batch => 1,
            QosClass::BestEffort => 2,
        }
    }
}

/// One unit of work for the service: a matrix, one or more right-hand
/// sides, and how to solve them.
#[derive(Debug, Clone)]
pub struct SolveRequest {
    /// System matrix, shared so repeated submissions don't copy it.
    pub matrix: Arc<CsrMatrix>,
    /// One or many right-hand sides; each is solved independently and
    /// yields one solution/stats pair in the response.
    pub rhs: Vec<Vec<f64>>,
    pub solver: SolverKind,
    pub stop: StopCriterion,
    pub max_iters: usize,
    /// Relative deadline, measured from submission. A job that is still
    /// queued when its deadline passes is failed with
    /// [`crate::ServiceError::DeadlineExceeded`] instead of being run.
    pub deadline: Option<Duration>,
    /// Deterministic fault plan installed on the simulated machine for
    /// this job's first attempt (chaos testing). Retries run on a clean
    /// machine — the faults model a transient environment, not the job.
    pub fault_plan: Option<FaultPlan>,
    /// Free-form tag recorded alongside the solver name in the labeled
    /// service metrics (`solve_completed_total{solver=...,scenario=...}`),
    /// so callers can split counters by workload. Defaults to
    /// `"default"`.
    pub scenario: String,
    /// Which registered partitioner lays the matrix out
    /// (`REDISTRIBUTE ... USING <name>`). Must name an entry of the
    /// `hpf-partition` registry; validated at submission. Defaults to
    /// the paper's own heuristic, `"balanced-rows"`.
    pub partitioner: String,
    /// Geometric grid behind the matrix, required by
    /// [`SolverKind::PcgMg`] (the hierarchy is rebuilt from these dims;
    /// validation checks `grid.n() == matrix.n_rows()`). Ignored by
    /// every other solver.
    pub grid: Option<GridDims>,
    /// Quality-of-service class this job is queued and scheduled under.
    /// Defaults to [`QosClass::Batch`].
    pub qos: QosClass,
    /// Free-form tenant label (reporting only; scheduling is by `qos`).
    pub tenant: String,
    /// Request trace id, propagated through every telemetry event this
    /// job produces (admission verdict, bus events, the worker's
    /// `trace=<hex>` machine span). `0` means "assign one for me": the
    /// service derives a deterministic non-zero id from the job id at
    /// submission.
    pub trace_id: u64,
}

impl SolveRequest {
    /// A request with library defaults: CG, relative residual `1e-8`,
    /// `10 n` iteration cap, no deadline.
    pub fn new(matrix: Arc<CsrMatrix>, rhs: Vec<f64>) -> Self {
        let n = matrix.n_rows();
        SolveRequest {
            matrix,
            rhs: vec![rhs],
            solver: SolverKind::Cg,
            stop: StopCriterion::RelativeResidual(1e-8),
            max_iters: 10 * n.max(1),
            deadline: None,
            fault_plan: None,
            scenario: "default".to_string(),
            partitioner: hpf_partition::DEFAULT_PARTITIONER.to_string(),
            grid: None,
            qos: QosClass::Batch,
            tenant: "anonymous".to_string(),
            trace_id: 0,
        }
    }

    /// The HPCG-class request: multigrid-preconditioned CG on the
    /// Poisson problem over `dims`, `levels` hierarchy levels, scenario
    /// tag `"hpcg"` (so the labeled service metrics split this workload
    /// out). The matrix is the grid's own discretisation — exactly what
    /// the cached hierarchy's finest level will be.
    pub fn hpcg(dims: GridDims, levels: usize, rhs: Vec<f64>) -> Self {
        let mut r = Self::new(Arc::new(dims.poisson()), rhs);
        r.solver = SolverKind::PcgMg { levels };
        r.grid = Some(dims);
        r.scenario = "hpcg".to_string();
        r
    }

    pub fn with_rhs_set(matrix: Arc<CsrMatrix>, rhs: Vec<Vec<f64>>) -> Self {
        let mut r = Self::new(matrix, Vec::new());
        r.rhs = rhs;
        r
    }

    pub fn solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }

    pub fn stop(mut self, stop: StopCriterion) -> Self {
        self.stop = stop;
        self
    }

    pub fn max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    pub fn scenario(mut self, scenario: impl Into<String>) -> Self {
        self.scenario = scenario.into();
        self
    }

    /// Pick the partitioner by its `USING <name>` identifier (see
    /// `hpf_partition::partitioner_names`).
    pub fn partitioner(mut self, name: impl Into<String>) -> Self {
        self.partitioner = name.into();
        self
    }

    /// Declare the geometric grid behind the matrix (required for
    /// [`SolverKind::PcgMg`]).
    pub fn grid(mut self, dims: GridDims) -> Self {
        self.grid = Some(dims);
        self
    }

    /// Queue this job under `qos` (default [`QosClass::Batch`]).
    pub fn qos(mut self, qos: QosClass) -> Self {
        self.qos = qos;
        self
    }

    /// Attach a tenant label (reporting only).
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// Carry a caller-chosen trace id (`0` = let the service assign a
    /// deterministic one at submission).
    pub fn trace(mut self, trace_id: u64) -> Self {
        self.trace_id = trace_id;
        self
    }
}

/// Static service configuration, fixed at start-up.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Worker threads executing solves.
    pub workers: usize,
    /// Bounded job-queue capacity; a full queue rejects with `Busy`.
    pub queue_capacity: usize,
    /// Simulated machine size every solve runs on.
    pub np: usize,
    /// Simulated machine topology.
    pub topology: Topology,
    /// Reuse `SolvePlan`s across requests with equal fingerprints.
    pub plan_cache_enabled: bool,
    /// Plans kept before the oldest is evicted.
    pub plan_cache_capacity: usize,
    /// Merge queued same-structure jobs into one multi-RHS execution.
    pub batching_enabled: bool,
    /// Most jobs merged into a single batch.
    pub max_batch: usize,
    /// Total solve attempts per job (1 = no retries).
    pub max_attempts: usize,
    /// First-retry backoff delay; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff delay ceiling.
    pub backoff_cap: Duration,
    /// Step retries down the CG → BiCGSTAB → GMRES escalation chain on
    /// numerical breakdown instead of re-running the same method.
    pub escalation_enabled: bool,
    /// Consecutive job failures per structure before its circuit opens
    /// (0 disables the breaker).
    pub breaker_threshold: u32,
    /// How long an open circuit refuses jobs before a half-open trial.
    pub breaker_cooldown: Duration,
    /// Run CG/PCG jobs through the checkpoint/rollback protected
    /// solvers; `None` uses the unprotected recurrences.
    pub recovery: Option<RecoveryConfig>,
    /// Weighted-fair dequeue shares per QoS class, indexed by
    /// [`QosClass::index`] (Interactive, Batch, BestEffort). A class's
    /// weight is how many batches it may dispatch per round-robin round
    /// while other classes have work queued; zero weights are treated
    /// as one.
    pub qos_weights: [u32; 3],
    /// Deadline-aware admission control: reject-on-arrival (typed
    /// [`crate::ServiceError::Shed`]) for jobs whose deadline the cost
    /// oracle predicts cannot be met given the current backlog.
    pub admission_enabled: bool,
    /// Completed solves observed before admission trusts its wall-clock
    /// calibration enough to shed (cold start admits everything).
    pub admission_min_samples: u64,
    /// Supervise workers: detect hung/crashed worker threads via per-job
    /// progress heartbeats, kill and restart them.
    pub supervision_enabled: bool,
    /// A busy worker whose heartbeat has not advanced for this long is
    /// declared hung and killed.
    pub hang_timeout: Duration,
    /// Supervisor polling interval.
    pub supervisor_poll: Duration,
    /// First worker-restart backoff delay; doubles per consecutive
    /// restart of the same slot.
    pub restart_backoff_base: Duration,
    /// Worker-restart backoff ceiling.
    pub restart_backoff_cap: Duration,
    /// Live telemetry tap for service lifecycle events (admission,
    /// sheds, kills, completions — see [`crate::ServiceEvent`]). `None`
    /// keeps the service silent; `hpf-obs::bus` provides an adapter.
    #[serde(skip)]
    pub event_sink: Option<crate::events::ServiceEventSink>,
    /// Live telemetry tap installed on every worker's simulated machine
    /// ([`hpf_machine::EventSink`]), streaming machine-level events
    /// (spans, faults, collectives) out mid-solve.
    #[serde(skip)]
    pub machine_sink: Option<hpf_machine::EventSink>,
    /// Flight-recorder tap receiving the bounded residual-series tail of
    /// every finished solve attempt ([`crate::events::SolverTail`]) —
    /// divergence/stagnation evidence for post-mortem attribution.
    #[serde(skip)]
    pub solver_tap: Option<crate::events::SolverTapSink>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            np: 8,
            topology: Topology::Hypercube,
            plan_cache_enabled: true,
            plan_cache_capacity: 32,
            batching_enabled: true,
            max_batch: 16,
            max_attempts: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(100),
            escalation_enabled: true,
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_millis(250),
            recovery: Some(RecoveryConfig::default()),
            qos_weights: [6, 3, 1],
            admission_enabled: true,
            admission_min_samples: 8,
            supervision_enabled: true,
            hang_timeout: Duration::from_millis(500),
            supervisor_poll: Duration::from_millis(20),
            restart_backoff_base: Duration::from_millis(10),
            restart_backoff_cap: Duration::from_secs(1),
            event_sink: None,
            machine_sink: None,
            solver_tap: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_sparse::gen;

    #[test]
    fn builder_chain_sets_fields() {
        let a = Arc::new(gen::tridiagonal(8, 4.0, -1.0));
        let r = SolveRequest::new(a, vec![1.0; 8])
            .solver(SolverKind::Bicgstab)
            .stop(StopCriterion::AbsoluteResidual(1e-6))
            .max_iters(7)
            .deadline(Duration::from_millis(5))
            .scenario("rowwise");
        assert_eq!(r.solver, SolverKind::Bicgstab);
        assert_eq!(r.max_iters, 7);
        assert!(r.deadline.is_some());
        assert_eq!(r.rhs.len(), 1);
        assert_eq!(r.scenario, "rowwise");
    }

    #[test]
    fn scenario_defaults_to_default() {
        let a = Arc::new(gen::tridiagonal(4, 4.0, -1.0));
        assert_eq!(SolveRequest::new(a, vec![1.0; 4]).scenario, "default");
    }

    #[test]
    fn partitioner_defaults_to_balanced_rows_and_is_overridable() {
        let a = Arc::new(gen::tridiagonal(4, 4.0, -1.0));
        let r = SolveRequest::new(a.clone(), vec![1.0; 4]);
        assert_eq!(r.partitioner, "balanced-rows");
        let r = SolveRequest::new(a, vec![1.0; 4]).partitioner("greedy-hypergraph");
        assert_eq!(r.partitioner, "greedy-hypergraph");
    }

    #[test]
    fn solver_names_are_stable() {
        assert_eq!(SolverKind::Cg.name(), "cg");
        assert_eq!(SolverKind::Gmres { restart: 5 }.name(), "gmres");
        assert_eq!(SolverKind::PcgMg { levels: 3 }.name(), "pcg-mg");
        assert_eq!(SolverKind::PcgMg { levels: 3 }.mg_levels(), 3);
        assert_eq!(SolverKind::Cg.mg_levels(), 0);
    }

    #[test]
    fn hpcg_request_carries_grid_solver_and_scenario() {
        let dims = GridDims::d2(15, 15);
        let r = SolveRequest::hpcg(dims, 3, vec![1.0; dims.n()]);
        assert_eq!(r.solver, SolverKind::PcgMg { levels: 3 });
        assert_eq!(r.grid, Some(dims));
        assert_eq!(r.scenario, "hpcg");
        assert_eq!(r.matrix.n_rows(), dims.n());
        // The matrix really is the grid's discretisation.
        assert_eq!(r.matrix.as_ref(), &dims.poisson());
    }
}
