//! # hpf-service — solver-as-a-service over the simulated HPF machine
//!
//! The rest of the workspace answers "how expensive is one CG solve
//! under an HPF data distribution?". This crate answers the operational
//! follow-up: "what does a *solver server* look like when partitioning
//! is the expensive, reusable step?" — the scenario the paper's
//! `REDISTRIBUTE ... USING CG_BALANCED_PARTITIONER_1` extension exists
//! for. Running the partitioner is worth caching precisely because "the
//! distribution of data and computation" dominates repeated solves on a
//! fixed structure (time-stepping, parameter sweeps, multiple loads).
//!
//! Pipeline: [`SolverService::submit`] validates and enqueues into a
//! **bounded job queue** (full ⇒ typed [`ServiceError::Busy`]
//! backpressure); a dispatcher groups queued jobs that share a
//! [`batch::BatchKey`] into multi-RHS **batches**; a fixed **worker
//! pool** executes each batch — resolving a [`plan::SolvePlan`] through
//! the structural **plan cache** ([`Fingerprint`] → plan), so repeated
//! structures partition exactly once — and answers every job with a
//! [`SolveResponse`] carrying per-RHS [`hpf_solvers::SolveStats`] and a
//! [`TraceSummary`] of the simulated machine activity. Counters are
//! exported as a serializable [`MetricsSnapshot`].
//!
//! ```
//! use hpf_service::{ServiceConfig, SolveRequest, SolverService};
//! use hpf_sparse::gen;
//! use std::sync::Arc;
//!
//! let service = SolverService::start(ServiceConfig::default());
//! let a = Arc::new(gen::banded_spd(64, 3, 1));
//! let (b, _x) = gen::rhs_for_known_solution(&a);
//! let response = service.solve(SolveRequest::new(a, b)).unwrap();
//! assert!(response.stats[0].converged);
//! ```

pub mod admission;
pub mod batch;
pub mod events;
pub mod fingerprint;
pub mod http;
pub mod metrics;
pub mod plan;
pub mod request;
pub mod response;
pub mod retry;
pub mod service;
pub mod supervisor;
pub mod worker;

pub use admission::{AdmissionController, AdmissionDecision};
pub use events::{ServiceEvent, ServiceEventSink, SolverTail, SolverTapSink};
pub use fingerprint::Fingerprint;
pub use http::MetricsServer;
pub use metrics::{
    Metrics, MetricsSnapshot, PostmortemCount, SolveOutcome, LATENCY_BUCKET_BOUNDS_US,
};
pub use plan::{CacheOutcome, PlanCache, SolvePlan};
pub use request::{QosClass, ServiceConfig, SolveRequest, SolverKind};
pub use response::{PlanSource, ServiceError, SolveResponse, TraceSummary};
pub use retry::{
    backoff_delay, backoff_delay_jittered, escalate, is_retryable, Admission, CircuitBreaker,
};
pub use service::{JobHandle, SolverService};
pub use supervisor::{SupervisorAbort, WorkerState};
