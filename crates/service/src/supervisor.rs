//! Worker supervision: detect hung or crashed worker threads, kill and
//! restart them.
//!
//! Rust offers no way to kill a thread from outside, so "kill" here is
//! cooperative: every machine operation a worker performs ticks a
//! heartbeat through the machine's progress hook, and the same hook
//! checks an abort flag. The supervisor polls the heartbeats; a worker
//! that is *busy* (has a current job) but whose heartbeat has not moved
//! for [`ServiceConfig::hang_timeout`] gets its abort flag raised. The
//! hook then panics with the typed [`SupervisorAbort`] payload, the
//! per-job `catch_unwind` in the worker answers the job with
//! [`crate::ServiceError::WorkerKilled`], and the worker thread exits
//! instead of resuming the batch. The supervisor joins the corpse and
//! respawns a fresh worker on the same slot after a capped exponential
//! backoff; repeated kills feed the per-fingerprint circuit breaker so a
//! structure that reliably wedges workers stops being scheduled at all.
//!
//! A worker blocked on the batch channel is *idle*, not hung — its
//! heartbeat is stale but `current` is `None`, and it is never killed.

use crate::admission::AdmissionController;
use crate::batch::Batch;
use crate::fingerprint::Fingerprint;
use crate::metrics::Metrics;
use crate::plan::PlanCache;
use crate::request::ServiceConfig;
use crate::retry::{backoff_delay, CircuitBreaker};
use crossbeam::channel::Receiver;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Typed panic payload the progress hook throws when the supervisor has
/// flagged this worker for death. The worker's catch site downcasts to
/// this to distinguish a supervisor kill from an organic panic.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorAbort;

/// What a worker is executing right now (supervisor's view).
#[derive(Debug, Clone, Copy)]
pub struct CurrentJob {
    pub job_id: u64,
    pub fingerprint: Fingerprint,
    pub since: Instant,
}

/// Shared per-worker liveness state. The worker writes, the supervisor
/// reads; a respawn gets a *fresh* state so a stale abort flag can never
/// kill the replacement on arrival.
#[derive(Debug, Default)]
pub struct WorkerState {
    /// Monotone progress counter, ticked once per simulated-machine op.
    pub heartbeat: AtomicU64,
    /// Raised by the supervisor; observed by the progress hook.
    pub abort: AtomicBool,
    /// The job being executed, if any (`None` ⇒ idle, exempt from
    /// hang detection).
    pub current: Mutex<Option<CurrentJob>>,
}

impl WorkerState {
    pub fn new() -> Arc<Self> {
        Arc::new(WorkerState::default())
    }
}

/// One slot in the worker pool, as tracked by the supervisor.
pub struct WorkerSlot {
    pub handle: Option<JoinHandle<()>>,
    pub state: Arc<WorkerState>,
    /// Consecutive restarts of this slot (drives the respawn backoff).
    pub restarts: u32,
    /// Heartbeat value at the last poll, plus when it was last seen
    /// moving — staleness is measured from there.
    last_seen_beat: u64,
    stale_since: Option<Instant>,
    /// When a pending respawn becomes due (backoff in progress).
    respawn_at: Option<Instant>,
}

impl WorkerSlot {
    pub fn new(handle: JoinHandle<()>, state: Arc<WorkerState>) -> Self {
        WorkerSlot {
            handle: Some(handle),
            state,
            restarts: 0,
            last_seen_beat: 0,
            stale_since: None,
            respawn_at: None,
        }
    }
}

/// Everything needed to (re)spawn a worker thread on a slot.
pub struct WorkerFactory {
    pub batch_rx: Receiver<Batch>,
    pub cache: Arc<Mutex<PlanCache>>,
    pub config: ServiceConfig,
    pub metrics: Arc<Metrics>,
    pub breaker: Arc<CircuitBreaker>,
    pub admission: Arc<AdmissionController>,
}

impl WorkerFactory {
    /// Spawn worker `index` reporting liveness into `state`.
    pub fn spawn(&self, index: usize, state: Arc<WorkerState>) -> JoinHandle<()> {
        let batch_rx = self.batch_rx.clone();
        let cache = self.cache.clone();
        let config = self.config.clone();
        let metrics = self.metrics.clone();
        let breaker = self.breaker.clone();
        let admission = self.admission.clone();
        std::thread::Builder::new()
            .name(format!("hpf-service-worker-{index}"))
            .spawn(move || {
                crate::service::worker_loop(
                    batch_rx, cache, config, metrics, breaker, admission, state,
                )
            })
            .expect("spawn worker")
    }
}

/// The supervision loop. Polls every [`ServiceConfig::supervisor_poll`]:
///
/// * a busy slot whose heartbeat has not advanced for
///   [`ServiceConfig::hang_timeout`] is killed (abort flag raised, one
///   `supervisor_kills` tick, breaker failure recorded for the wedged
///   job's structure);
/// * a finished thread (killed or organically dead) is joined and a
///   respawn scheduled after `backoff_delay(restart_backoff_base,
///   restart_backoff_cap, restarts)`;
/// * due respawns get a fresh [`WorkerState`] and a `worker_restarts`
///   tick.
///
/// Exits when `shutting_down` is raised; remaining threads are joined by
/// the service's shutdown path, not here.
pub fn supervisor_loop(
    slots: Arc<Mutex<Vec<WorkerSlot>>>,
    factory: WorkerFactory,
    shutting_down: Arc<AtomicBool>,
) {
    while !shutting_down.load(Ordering::SeqCst) {
        std::thread::sleep(factory.config.supervisor_poll);
        let now = Instant::now();
        let mut slots = slots.lock();
        for (i, slot) in slots.iter_mut().enumerate() {
            // 1. Hang detection on live, busy workers.
            let beat = slot.state.heartbeat.load(Ordering::Relaxed);
            if beat != slot.last_seen_beat {
                slot.last_seen_beat = beat;
                slot.stale_since = None;
            }
            let busy = *slot.state.current.lock();
            match busy {
                Some(job) if slot.handle.is_some() => {
                    let stale_since = *slot.stale_since.get_or_insert(now);
                    if now.duration_since(stale_since) >= factory.config.hang_timeout
                        && !slot.state.abort.swap(true, Ordering::SeqCst)
                    {
                        factory
                            .metrics
                            .supervisor_kills
                            .fetch_add(1, Ordering::Relaxed);
                        // A hang is a failure of this structure's jobs as
                        // far as the breaker is concerned: enough kills
                        // trip the circuit and stop feeding it workers.
                        factory.breaker.record_failure(job.fingerprint);
                    }
                }
                _ => slot.stale_since = None,
            }
            // 2. Reap finished threads and schedule their replacement.
            if slot.handle.as_ref().is_some_and(|h| h.is_finished()) {
                if let Some(h) = slot.handle.take() {
                    let _ = h.join(); // panics were already caught inside
                }
                slot.restarts = slot.restarts.saturating_add(1);
                slot.respawn_at = Some(
                    now + backoff_delay(
                        factory.config.restart_backoff_base,
                        factory.config.restart_backoff_cap,
                        slot.restarts,
                    ),
                );
            }
            // 3. Respawn once the backoff has elapsed.
            if slot.handle.is_none()
                && slot.respawn_at.is_some_and(|t| now >= t)
                && !shutting_down.load(Ordering::SeqCst)
            {
                slot.respawn_at = None;
                // Fresh state: the dead thread's abort flag and stale
                // heartbeat must not haunt the replacement.
                let state = WorkerState::new();
                slot.state = state.clone();
                slot.last_seen_beat = 0;
                slot.stale_since = None;
                slot.handle = Some(factory.spawn(i, state));
                factory
                    .metrics
                    .worker_restarts
                    .fetch_add(1, Ordering::Relaxed);
                crate::events::emit(
                    &factory.config.event_sink,
                    crate::ServiceEvent::WorkerRestarted { worker: i },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_state_defaults_are_idle_and_unaborted() {
        let s = WorkerState::new();
        assert_eq!(s.heartbeat.load(Ordering::Relaxed), 0);
        assert!(!s.abort.load(Ordering::Relaxed));
        assert!(s.current.lock().is_none());
    }
}
