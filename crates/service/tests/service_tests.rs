//! End-to-end tests through a running [`SolverService`]: real threads,
//! real bounded queues, real plan cache.

use hpf_machine::Topology;
use hpf_service::{
    PlanSource, QosClass, ServiceConfig, ServiceError, SolvePlan, SolveRequest, SolverKind,
    SolverService,
};
use hpf_solvers::StopCriterion;
use hpf_sparse::gen;
use std::sync::Arc;
use std::time::Duration;

fn residual_ok(a: &hpf_sparse::CsrMatrix, x: &[f64], b: &[f64], tol: f64) -> bool {
    let ax = a.matvec(x).unwrap();
    let res: f64 = ax
        .iter()
        .zip(b)
        .map(|(u, v)| (u - v) * (u - v))
        .sum::<f64>()
        .sqrt();
    let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    res <= tol * bn.max(1.0)
}

/// Acceptance criterion from the issue: at least 32 queued solves that
/// share one structure, with the plan cache on, run the partitioner
/// exactly once.
#[test]
fn thirty_three_same_structure_jobs_partition_exactly_once() {
    let service = SolverService::start(ServiceConfig {
        workers: 2,
        queue_capacity: 128,
        np: 8,
        ..ServiceConfig::default()
    });
    let a = Arc::new(gen::power_law_spd(96, 12, 0.9, 21));
    let (b, _x) = gen::rhs_for_known_solution(&a);

    let handles: Vec<_> = (0..33)
        .map(|_| {
            service
                .submit(SolveRequest::new(a.clone(), b.clone()))
                .expect("queue sized to hold every job")
        })
        .collect();
    let mut built = 0usize;
    for h in handles {
        let resp = h.wait().unwrap();
        assert!(resp.stats[0].converged);
        assert!(residual_ok(&a, &resp.solutions[0], &b, 1e-6));
        if resp.plan_source == PlanSource::Built {
            built += 1;
        }
    }

    let m = service.shutdown();
    assert_eq!(m.accepted, 33);
    assert_eq!(m.completed, 33);
    assert_eq!(m.failed, 0);
    assert_eq!(m.in_flight, 0);
    // The heart of the subsystem: one partition served 33 solves.
    assert_eq!(
        m.partitioner_invocations, 1,
        "plan cache must reuse the partition"
    );
    assert_eq!(m.cache_misses, 1);
    assert!(built >= 1, "some batch must have built the plan");
    assert_eq!(m.rhs_solved, 33);
}

/// With the cache disabled every batch re-partitions; batching is also
/// off here so each job is its own batch.
#[test]
fn cache_off_partitions_per_job() {
    let service = SolverService::start(ServiceConfig {
        workers: 1,
        plan_cache_enabled: false,
        batching_enabled: false,
        np: 4,
        ..ServiceConfig::default()
    });
    let a = Arc::new(gen::banded_spd(40, 3, 5));
    let (b, _x) = gen::rhs_for_known_solution(&a);
    let handles: Vec<_> = (0..4)
        .map(|_| {
            service
                .submit(SolveRequest::new(a.clone(), b.clone()))
                .unwrap()
        })
        .collect();
    for h in handles {
        let resp = h.wait().unwrap();
        assert_eq!(resp.plan_source, PlanSource::Built);
        assert_eq!(resp.batched_with, 0);
    }
    let m = service.shutdown();
    assert_eq!(m.partitioner_invocations, 4);
    assert_eq!(m.cache_hits, 0);
}

/// A full bounded queue rejects with a typed `Busy` error instead of
/// blocking the submitter; already-accepted work still completes.
#[test]
fn full_queue_rejects_with_busy() {
    let service = SolverService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 2,
        batching_enabled: false,
        np: 4,
        ..ServiceConfig::default()
    });
    // Heavy enough that the single worker lags far behind the submit loop.
    let a = Arc::new(gen::power_law_spd(256, 16, 0.9, 3));
    let rhs: Vec<Vec<f64>> = (0..4)
        .map(|k| (0..256).map(|i| ((i * 7 + k) % 11) as f64).collect())
        .collect();

    let mut saw_busy = false;
    let mut handles = Vec::new();
    for _ in 0..200 {
        match service.submit(SolveRequest::with_rhs_set(a.clone(), rhs.clone())) {
            Ok(h) => handles.push(h),
            Err(ServiceError::Busy { queue_capacity }) => {
                assert_eq!(queue_capacity, 2);
                saw_busy = true;
                break;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(
        saw_busy,
        "a 2-slot queue must overflow under a 200-job burst"
    );
    for h in handles {
        assert!(h.wait().is_ok());
    }
    let m = service.shutdown();
    assert!(m.rejected_busy >= 1);
    assert_eq!(m.failed, 0);
    assert_eq!(m.in_flight, 0);
}

/// Acceptance criterion from the issue: a deadline-exceeded request
/// returns a typed error rather than hanging the pool — and the pool
/// keeps serving afterwards.
#[test]
fn deadline_exceeded_is_typed_and_pool_survives() {
    let service = SolverService::start(ServiceConfig {
        workers: 1,
        np: 4,
        ..ServiceConfig::default()
    });
    let a = Arc::new(gen::banded_spd(32, 2, 8));
    let (b, _x) = gen::rhs_for_known_solution(&a);

    // A 1 ns deadline has always passed by the time a worker gets the
    // job, so the shed path triggers deterministically.
    let doomed = service
        .submit(SolveRequest::new(a.clone(), b.clone()).deadline(Duration::from_nanos(1)))
        .unwrap();
    match doomed.wait() {
        Err(ServiceError::DeadlineExceeded { waited }) => {
            assert!(waited >= Duration::from_nanos(1));
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    // The pool is alive and the next job solves normally.
    let resp = service
        .solve(SolveRequest::new(a.clone(), b.clone()))
        .unwrap();
    assert!(resp.stats[0].converged);
    let m = service.shutdown();
    assert_eq!(m.deadline_exceeded, 1);
    assert_eq!(m.completed, 1);
    assert_eq!(m.in_flight, 0);
    // The doomed job never reached the partitioner or the solver.
    assert_eq!(m.rhs_solved, 1);
}

/// CI hook: the same structural fingerprint must always map to the same
/// plan, both via direct builds and through a running service.
#[test]
fn plan_cache_determinism_same_fingerprint_same_plan() {
    // Two matrices, identical structure, different values.
    let a1 = gen::power_law_spd(120, 18, 1.0, 13);
    let mut a2 = a1.clone();
    a2.scale(3.25);

    let p1 = SolvePlan::build(&a1, 8, Topology::Hypercube);
    let p2 = SolvePlan::build(&a2, 8, Topology::Hypercube);
    assert_eq!(p1.fingerprint, p2.fingerprint);
    assert_eq!(p1.row_cuts, p2.row_cuts);
    assert_eq!(p1.loads, p2.loads);
    assert_eq!(p1.imbalance.to_bits(), p2.imbalance.to_bits());
    assert_eq!(p1.trio_descriptors(), p2.trio_descriptors());

    // Through the service: two runs report the same fingerprint and the
    // same plan imbalance for structurally identical inputs.
    let run = |m: hpf_sparse::CsrMatrix| {
        let service = SolverService::start(ServiceConfig {
            workers: 1,
            np: 8,
            ..ServiceConfig::default()
        });
        let m = Arc::new(m);
        let (b, _x) = gen::rhs_for_known_solution(&m);
        let resp = service.solve(SolveRequest::new(m, b)).unwrap();
        (resp.fingerprint, resp.plan_imbalance.to_bits())
    };
    assert_eq!(run(a1), run(a2));
}

/// A solver-level failure is reported as a typed error for that job
/// only; the worker thread keeps serving.
#[test]
fn solver_failure_does_not_poison_the_pool() {
    // Retry/escalation off so the breakdown surfaces instead of being
    // healed by the fallback chain (which has its own test).
    let service = SolverService::start(ServiceConfig {
        workers: 1,
        np: 2,
        max_attempts: 1,
        escalation_enabled: false,
        ..ServiceConfig::default()
    });
    // CG breaks down deterministically on this indefinite system:
    // A = [[0,1],[1,0]], b = [1,0] gives p·Ap = 0 in the first step.
    let coo = hpf_sparse::CooMatrix::from_triplets(2, 2, vec![(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
    let bad = Arc::new(hpf_sparse::CsrMatrix::from_coo(&coo));
    let out = service.solve(SolveRequest::new(bad, vec![1.0, 0.0]));
    assert!(matches!(out, Err(ServiceError::Solver(_))));

    let a = Arc::new(gen::tridiagonal(16, 4.0, -1.0));
    let (b, _x) = gen::rhs_for_known_solution(&a);
    let resp = service.solve(SolveRequest::new(a, b)).unwrap();
    assert!(resp.stats[0].converged);
    let m = service.shutdown();
    assert_eq!(m.failed, 1);
    assert_eq!(m.completed, 1);
}

/// Malformed requests are rejected up front with a typed error and never
/// consume a queue slot.
#[test]
fn invalid_requests_fail_fast() {
    let service = SolverService::start(ServiceConfig {
        workers: 1,
        np: 2,
        ..ServiceConfig::default()
    });
    let a = Arc::new(gen::tridiagonal(8, 4.0, -1.0));

    let wrong_len = service.submit(SolveRequest::new(a.clone(), vec![1.0; 5]));
    assert!(matches!(wrong_len, Err(ServiceError::InvalidRequest(_))));

    let no_rhs = service.submit(SolveRequest::with_rhs_set(a.clone(), Vec::new()));
    assert!(matches!(no_rhs, Err(ServiceError::InvalidRequest(_))));

    let zero_iters = service.submit(SolveRequest::new(a.clone(), vec![1.0; 8]).max_iters(0));
    assert!(matches!(zero_iters, Err(ServiceError::InvalidRequest(_))));

    let bad_partitioner =
        service.submit(SolveRequest::new(a.clone(), vec![1.0; 8]).partitioner("metis"));
    match bad_partitioner {
        Err(ServiceError::InvalidRequest(why)) => {
            assert!(why.contains("metis"), "{why}");
            assert!(why.contains("balanced-rows"), "{why}");
        }
        other => panic!("expected InvalidRequest, got {other:?}"),
    }

    let m = service.shutdown();
    assert_eq!(m.rejected_invalid, 4);
    assert_eq!(m.accepted, 0);
}

/// Every registered partitioner solves end to end, and the response
/// reports the one that laid out the plan. Each (structure, partitioner)
/// pair builds its own cached plan.
#[test]
fn every_partitioner_solves_through_the_service() {
    let service = SolverService::start(ServiceConfig {
        workers: 2,
        np: 4,
        ..ServiceConfig::default()
    });
    let a = Arc::new(gen::power_law_spd(80, 14, 0.9, 17));
    let (b, _x) = gen::rhs_for_known_solution(&a);

    for name in hpf_partition::partitioner_names() {
        let resp = service
            .solve(SolveRequest::new(a.clone(), b.clone()).partitioner(name))
            .unwrap();
        assert_eq!(resp.partitioner, name);
        assert!(resp.stats[0].converged, "{name}");
        assert!(residual_ok(&a, &resp.solutions[0], &b, 1e-6), "{name}");
    }

    assert_eq!(
        service.cached_plans(),
        hpf_partition::partitioner_names().len()
    );
    let m = service.shutdown();
    assert_eq!(m.partitioner_invocations, 4);
    assert_eq!(m.completed, 4);
}

/// Every configured solver kind works end to end on an SPD system.
#[test]
fn all_solver_kinds_run_through_the_service() {
    let service = SolverService::start(ServiceConfig {
        workers: 2,
        np: 4,
        ..ServiceConfig::default()
    });
    let a = Arc::new(gen::banded_spd(40, 2, 17));
    let (b, _x) = gen::rhs_for_known_solution(&a);
    for kind in [
        SolverKind::Cg,
        SolverKind::PcgJacobi,
        SolverKind::Bicg,
        SolverKind::Bicgstab,
        SolverKind::Gmres { restart: 20 },
    ] {
        let resp = service
            .solve(
                SolveRequest::new(a.clone(), b.clone())
                    .solver(kind)
                    .stop(StopCriterion::RelativeResidual(1e-8)),
            )
            .unwrap_or_else(|e| panic!("{} failed: {e}", kind.name()));
        assert!(resp.stats[0].converged, "{} did not converge", kind.name());
        assert!(residual_ok(&a, &resp.solutions[0], &b, 1e-6));
        assert!(resp.trace.events > 0);
    }
    drop(service);
}

/// The HPCG-class scenario end to end: a `SolveRequest::hpcg` runs
/// MG-PCG over the service's cached hierarchy, the answer satisfies the
/// Poisson system, and the per-level V-cycle attribution survives into
/// the response's trace summary.
#[test]
fn hpcg_scenario_solves_end_to_end_with_per_level_spans() {
    let service = SolverService::start(ServiceConfig {
        workers: 2,
        np: 4,
        ..ServiceConfig::default()
    });
    let dims = hpf_mg::GridDims::d2(15, 15);
    let a = dims.poisson();
    let (_x, b) = gen::rhs_for_known_solution(&a);

    for _ in 0..2 {
        let req =
            SolveRequest::hpcg(dims, 3, b.clone()).stop(StopCriterion::RelativeResidual(1e-8));
        assert_eq!(req.scenario, "hpcg");
        let resp = service.solve(req).expect("hpcg request must be answered");
        assert!(resp.stats[0].converged);
        assert_eq!(resp.solver_used.name(), "pcg-mg");
        assert!(residual_ok(&a, &resp.solutions[0], &b, 1e-6));
        let labels: Vec<&str> = resp
            .trace
            .by_label
            .iter()
            .map(|l| l.label.as_str())
            .collect();
        assert!(
            labels.iter().any(|l| l.starts_with("mg-smooth")),
            "{labels:?}"
        );
        for level in [0, 1] {
            assert!(
                labels
                    .iter()
                    .any(|l| l.ends_with(&format!("[level={level}]"))),
                "no level-{level} attribution in {labels:?}"
            );
        }
    }

    // Second round hit the depth-keyed plan cache.
    let m = service.shutdown();
    assert_eq!(m.completed, 2);
    assert_eq!(m.partitioner_invocations, 1);

    // A pcg-mg request without grid dims is refused up front.
    let service = SolverService::start(ServiceConfig {
        workers: 1,
        np: 4,
        ..ServiceConfig::default()
    });
    let bad =
        SolveRequest::new(Arc::new(a.clone()), b.clone()).solver(SolverKind::PcgMg { levels: 3 });
    match service.solve(bad) {
        Err(ServiceError::InvalidRequest(why)) => assert!(why.contains("grid"), "{why}"),
        other => panic!("expected InvalidRequest, got {other:?}"),
    }
}

/// CG breakdown on an indefinite system is healed by the escalation
/// chain: the job is answered (by GMRES, the chain's end) and the retry
/// and escalation counters record the path taken.
#[test]
fn breakdown_is_healed_by_escalation() {
    let service = SolverService::start(ServiceConfig {
        workers: 1,
        np: 2,
        ..ServiceConfig::default()
    });
    // p·Ap = 0 on the first CG step; BiCGSTAB also breaks down here, so
    // the chain must walk CG → BiCGSTAB → GMRES.
    let coo = hpf_sparse::CooMatrix::from_triplets(2, 2, vec![(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
    let a = Arc::new(hpf_sparse::CsrMatrix::from_coo(&coo));
    let b = vec![1.0, 0.0];
    let resp = service
        .solve(SolveRequest::new(a.clone(), b.clone()))
        .expect("escalation must answer the job");
    assert!(resp.stats[0].converged);
    assert!(matches!(resp.solver_used, SolverKind::Gmres { .. }));
    assert!(resp.attempts >= 2);
    assert!(residual_ok(&a, &resp.solutions[0], &b, 1e-6));

    let m = service.shutdown();
    assert_eq!(m.completed, 1);
    assert_eq!(m.failed, 0);
    assert!(m.retries >= 1, "retries: {}", m.retries);
    assert!(m.escalations >= 1, "escalations: {}", m.escalations);
}

/// A structure that keeps failing trips its circuit breaker: further
/// jobs on the same fingerprint are refused with a typed error instead
/// of burning a worker.
#[test]
fn repeated_failures_open_the_circuit_breaker() {
    let service = SolverService::start(ServiceConfig {
        workers: 1,
        np: 2,
        max_attempts: 1,
        escalation_enabled: false,
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_secs(30),
        ..ServiceConfig::default()
    });
    let coo = hpf_sparse::CooMatrix::from_triplets(2, 2, vec![(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
    let a = Arc::new(hpf_sparse::CsrMatrix::from_coo(&coo));
    let b = vec![1.0, 0.0];

    for _ in 0..2 {
        let out = service.solve(SolveRequest::new(a.clone(), b.clone()));
        assert!(matches!(out, Err(ServiceError::Solver(_))));
    }
    let refused = service.solve(SolveRequest::new(a.clone(), b.clone()));
    assert!(
        matches!(refused, Err(ServiceError::CircuitOpen { .. })),
        "third job must be refused: {refused:?}"
    );
    assert_eq!(service.open_circuits(), 1);

    // A different (healthy) structure is unaffected.
    let good = Arc::new(gen::tridiagonal(16, 4.0, -1.0));
    let (gb, _x) = gen::rhs_for_known_solution(&good);
    assert!(service.solve(SolveRequest::new(good, gb)).is_ok());

    let m = service.shutdown();
    assert_eq!(m.breaker_open, 1);
    assert_eq!(m.failed, 3);
    assert_eq!(m.completed, 1);
}

/// A request carrying a fault plan runs under injection on the first
/// attempt; the protected solver rides it out and the response reports
/// the recovery work.
#[test]
fn fault_plan_jobs_recover_and_report() {
    let service = SolverService::start(ServiceConfig {
        workers: 1,
        np: 4,
        ..ServiceConfig::default()
    });
    let a = Arc::new(gen::banded_spd(64, 3, 9));
    let (b, _x) = gen::rhs_for_known_solution(&a);
    let plan = hpf_machine::FaultPlan::new()
        .with_crash(25, 1)
        .with_message_drop(60, 2);
    let resp = service
        .solve(SolveRequest::new(a.clone(), b.clone()).fault_plan(plan))
        .expect("protected CG must survive the plan");
    assert!(resp.stats[0].converged);
    assert!(residual_ok(&a, &resp.solutions[0], &b, 1e-6));
    let rec = resp.recovery.expect("protected solver reports recovery");
    assert!(rec.checkpoints >= 1);
    assert!(rec.faults_detected >= 1);

    let m = service.shutdown();
    assert!(
        m.faults_injected >= 2,
        "faults_injected: {}",
        m.faults_injected
    );
    assert!(m.faults_detected >= 1);
    assert_eq!(m.completed, 1);
}

/// Shutdown answers still-queued jobs with a typed `Shutdown` error —
/// nobody hangs on a dropped responder — while jobs already executing
/// run to completion.
#[test]
fn shutdown_drains_queued_jobs_with_typed_errors() {
    let service = SolverService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 64,
        np: 4,
        batching_enabled: false,
        ..ServiceConfig::default()
    });
    // A deliberately slow head job: one structure, many right-hand
    // sides, tight tolerance.
    let slow_a = Arc::new(gen::poisson_2d(40, 40));
    let (sb, _x) = gen::rhs_for_known_solution(&slow_a);
    let slow = service
        .submit(SolveRequest::with_rhs_set(
            slow_a.clone(),
            vec![sb.clone(); 24],
        ))
        .unwrap();
    // Wait until the worker has actually picked the slow job up, so
    // "in-flight work finishes" is deterministic below.
    while service.metrics().batches_executed == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    // Distinct structures behind it, so each is its own batch.
    let queued: Vec<_> = (0..8)
        .map(|i| {
            let a = Arc::new(gen::banded_spd(32, 2, 100 + i));
            let (b, _x) = gen::rhs_for_known_solution(&a);
            service.submit(SolveRequest::new(a, b)).unwrap()
        })
        .collect();

    let metrics = service.shutdown();

    let slow_out = slow.wait();
    assert!(
        matches!(&slow_out, Ok(r) if r.stats.len() == 24),
        "the in-flight job finishes: {slow_out:?}"
    );
    let mut drained = 0usize;
    for h in queued {
        match h.wait() {
            Ok(r) => assert!(r.stats[0].converged),
            Err(ServiceError::Shutdown) => drained += 1,
            Err(e) => panic!("unexpected error during drain: {e}"),
        }
    }
    assert!(drained >= 1, "at least one queued job is drained");
    assert_eq!(metrics.completed + metrics.failed, 9);
    assert_eq!(metrics.in_flight, 0);
    assert_eq!(metrics.failed as usize, drained);
}

/// Tentpole acceptance: once the admission oracle has a calibration
/// sample, a deadline no prediction can meet is refused at `submit`
/// with a typed `Shed` — before the job consumes a queue slot — while
/// feasible deadlines keep flowing.
#[test]
fn calibrated_admission_sheds_impossible_deadlines_at_submit() {
    let service = SolverService::start(ServiceConfig {
        workers: 1,
        np: 4,
        admission_min_samples: 1,
        ..ServiceConfig::default()
    });
    let a = Arc::new(gen::banded_spd(256, 3, 11));
    let (b, _x) = gen::rhs_for_known_solution(&a);
    // One clean solve teaches the oracle this structure's wall cost.
    let resp = service
        .solve(SolveRequest::new(a.clone(), b.clone()))
        .unwrap();
    assert!(resp.stats[0].converged);

    // A 1 ns budget sits far below any calibrated prediction.
    let out =
        service.submit(SolveRequest::new(a.clone(), b.clone()).deadline(Duration::from_nanos(1)));
    match out {
        Err(ServiceError::Shed { predicted, budget }) => {
            assert_eq!(budget, Duration::from_nanos(1));
            assert!(predicted > budget, "{predicted:?} vs {budget:?}");
        }
        other => panic!("expected Shed, got {other:?}"),
    }

    // A generous deadline is still admitted and solved.
    let ok = service
        .solve(SolveRequest::new(a.clone(), b.clone()).deadline(Duration::from_secs(3600)))
        .unwrap();
    assert!(ok.stats[0].converged);

    let m = service.shutdown();
    assert_eq!(m.shed_total, 1);
    assert_eq!(m.accepted, 2);
    assert_eq!(m.completed, 2);
    assert_eq!(m.failed, 0);
}

/// Tentpole acceptance: with the single worker pinned by a slow batch
/// job, best-effort work submitted *first* still runs *after* the
/// interactive work that arrived later — weighted-fair dequeue, not
/// arrival order.
#[test]
fn interactive_jobs_overtake_best_effort_under_load() {
    let service = SolverService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 64,
        np: 4,
        batching_enabled: false,
        ..ServiceConfig::default()
    });
    // A slow head job pins the worker while the contest queues up.
    let slow_a = Arc::new(gen::poisson_2d(32, 32));
    let (sb, _x) = gen::rhs_for_known_solution(&slow_a);
    let blocker = service
        .submit(SolveRequest::with_rhs_set(slow_a.clone(), vec![sb; 8]))
        .unwrap();
    while service.metrics().batches_executed == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    // Two decoys park the dispatcher: one fills the worker hand-off
    // channel, the next blocks the dispatcher mid-send. Everything
    // submitted afterwards is dequeued in one weighted pass.
    let decoys: Vec<_> = (0..2)
        .map(|i| {
            let a = Arc::new(gen::banded_spd(32, 2, 200 + i));
            let (b, _x) = gen::rhs_for_known_solution(&a);
            service
                .submit(SolveRequest::new(a, b).qos(QosClass::Interactive))
                .unwrap()
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));

    let order = Arc::new(parking_lot::Mutex::new(Vec::<char>::new()));
    let mut contest = Vec::new();
    // Best-effort first: heavy enough that the completion gap at the
    // class boundary dwarfs waiter-thread wake-up jitter.
    for i in 0..3u64 {
        let a = Arc::new(gen::power_law_spd(256, 16, 0.9, 50 + i));
        let (b, _x) = gen::rhs_for_known_solution(&a);
        let h = service
            .submit(SolveRequest::new(a, b).qos(QosClass::BestEffort))
            .unwrap();
        let order = order.clone();
        contest.push(std::thread::spawn(move || {
            assert!(h.wait().is_ok());
            order.lock().push('B');
        }));
    }
    for i in 0..3u64 {
        let a = Arc::new(gen::banded_spd(48, 2, 300 + i));
        let (b, _x) = gen::rhs_for_known_solution(&a);
        let h = service
            .submit(SolveRequest::new(a, b).qos(QosClass::Interactive))
            .unwrap();
        let order = order.clone();
        contest.push(std::thread::spawn(move || {
            assert!(h.wait().is_ok());
            order.lock().push('I');
        }));
    }

    assert!(blocker.wait().is_ok());
    for d in decoys {
        assert!(d.wait().is_ok());
    }
    for t in contest {
        t.join().unwrap();
    }
    let observed: String = order.lock().iter().collect();
    assert_eq!(
        observed, "IIIBBB",
        "interactive must drain before best-effort"
    );
    let m = service.shutdown();
    assert_eq!(m.completed, 9);
}

/// Tentpole acceptance: a worker hung mid-solve (wall-clock stall fault,
/// no heartbeats) is killed by the supervisor — the job is answered with
/// a typed `WorkerKilled`, the worker is respawned, and the pool keeps
/// serving.
#[test]
fn hung_worker_is_killed_and_respawned() {
    let service = SolverService::start(ServiceConfig {
        workers: 1,
        np: 4,
        hang_timeout: Duration::from_millis(100),
        supervisor_poll: Duration::from_millis(10),
        breaker_threshold: 10,
        ..ServiceConfig::default()
    });
    let a = Arc::new(gen::banded_spd(64, 3, 7));
    let (b, _x) = gen::rhs_for_known_solution(&a);
    // A 600 ms stall on processor 0, six times the hang timeout:
    // heartbeats stop, the supervisor flags the worker, and the next
    // machine operation observes the abort.
    let plan = hpf_machine::FaultPlan::new().with_stall(30, 0, 600);
    let doomed = service
        .submit(SolveRequest::new(a.clone(), b.clone()).fault_plan(plan))
        .unwrap();
    match doomed.wait() {
        Err(ServiceError::WorkerKilled { after }) => {
            assert!(after >= Duration::from_millis(100), "{after:?}");
        }
        other => panic!("expected WorkerKilled, got {other:?}"),
    }

    // The respawned worker answers the next job.
    let resp = service
        .solve(SolveRequest::new(a.clone(), b.clone()))
        .unwrap();
    assert!(resp.stats[0].converged);

    let m = service.shutdown();
    assert!(m.supervisor_kills >= 1, "kills: {}", m.supervisor_kills);
    assert!(m.worker_restarts >= 1, "restarts: {}", m.worker_restarts);
    assert_eq!(m.completed, 1);
    assert_eq!(m.failed, 1);
    assert_eq!(m.in_flight, 0);
}

/// Satellite property: `shutdown` racing a full queue yields exactly
/// one terminal response per accepted job. `wait` consuming the
/// one-shot responder makes "at most once" structural; what this
/// exercises is "at least once" — nothing hangs, nothing is dropped —
/// plus a balanced completed/failed ledger, across class mixes,
/// deadlines, and batching on/off.
#[test]
fn shutdown_with_full_queue_answers_every_accepted_job_exactly_once() {
    for round in 0..3u64 {
        let service = SolverService::start(ServiceConfig {
            workers: 2,
            queue_capacity: 4,
            np: 4,
            batching_enabled: round % 2 == 0,
            ..ServiceConfig::default()
        });
        let mats: Vec<Arc<hpf_sparse::CsrMatrix>> = (0..3)
            .map(|s| Arc::new(gen::power_law_spd(160, 12, 0.9, 40 + round * 3 + s)))
            .collect();
        let mut state = round.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut handles = Vec::new();
        let mut overflowed = 0u64;
        for _ in 0..60 {
            let a = &mats[(next() % 3) as usize];
            let (b, _x) = gen::rhs_for_known_solution(a);
            let mut req = SolveRequest::new(a.clone(), b).qos(QosClass::ALL[(next() % 3) as usize]);
            if next() % 4 == 0 {
                // Some deadlines are generous, some already hopeless.
                req = req.deadline(if next() % 2 == 0 {
                    Duration::from_secs(600)
                } else {
                    Duration::from_nanos(1)
                });
            }
            match service.submit(req) {
                Ok(h) => handles.push(h),
                Err(ServiceError::Busy { .. }) => overflowed += 1,
                // Once calibrated, the hopeless deadlines are refused
                // up front; they get no handle and owe no response.
                Err(ServiceError::Shed { .. }) => {}
                Err(e) => panic!("round {round}: unexpected submit error: {e}"),
            }
        }
        assert!(overflowed >= 1, "round {round}: the queue never filled");
        let accepted = handles.len() as u64;

        // Shut down while the class queues are still loaded.
        let m = service.shutdown();

        let mut terminal = 0u64;
        for h in handles {
            match h.wait() {
                Ok(resp) => {
                    assert!(resp.stats.iter().all(|s| s.converged));
                    terminal += 1;
                }
                Err(ServiceError::Shutdown) | Err(ServiceError::DeadlineExceeded { .. }) => {
                    terminal += 1;
                }
                Err(e) => panic!("round {round}: unexpected terminal error: {e}"),
            }
        }
        assert_eq!(terminal, accepted, "round {round}");
        assert_eq!(m.accepted, accepted, "round {round}");
        assert_eq!(m.completed + m.failed, accepted, "round {round}");
        assert_eq!(m.in_flight, 0, "round {round}");
    }
}
