//! End-to-end observability: run a real distributed CG solve under a
//! telemetry observer and push the resulting trace through every
//! exporter and analysis pass.

use hpf_core::{DataArrayLayout, RowwiseCsr};
use hpf_machine::{CostModel, Machine, Topology};
use hpf_obs::{critical_path, load_imbalance, span_costs, ConvergenceLog, Timeline};
use hpf_solvers::{cg_distributed_with_observer, StopCriterion};
use hpf_sparse::gen;

fn solve_traced() -> (Machine, ConvergenceLog, usize) {
    let np = 4;
    let a = gen::poisson_2d(8, 8);
    let (b, _) = gen::rhs_for_known_solution(&a);
    let op = RowwiseCsr::block(a, np, DataArrayLayout::RowAligned);
    let mut m = Machine::new(np, Topology::Hypercube, CostModel::mpp_1995());
    m.set_tracing(true);
    let mut log = ConvergenceLog::new();
    let (_, stats) = cg_distributed_with_observer(
        &mut m,
        &op,
        &b,
        StopCriterion::RelativeResidual(1e-8),
        500,
        &mut log,
    )
    .unwrap();
    assert!(stats.converged);
    (m, log, stats.iterations)
}

#[test]
fn telemetry_covers_every_iteration_and_round_trips_csv() {
    let (_, log, iterations) = solve_traced();
    assert_eq!(log.samples.len(), iterations);
    for (i, s) in log.samples.iter().enumerate() {
        assert_eq!(s.iteration, i + 1);
        assert!(s.residual_norm.is_finite());
        assert!(s.alpha.is_finite());
        assert!(s.flops > 0, "iteration {} charged no flops", s.iteration);
        assert!(s.comm_bytes() > 0);
    }
    // Cumulative simulated time is nondecreasing.
    assert!(log
        .samples
        .windows(2)
        .all(|w| w[1].sim_time >= w[0].sim_time));
    let csv = log.to_csv();
    let back = ConvergenceLog::from_csv(&csv).unwrap();
    assert_eq!(back.samples.len(), log.samples.len());
    assert_eq!(back.to_csv(), csv);
}

#[test]
fn exporters_produce_valid_output_from_a_real_trace() {
    let (m, _, _) = solve_traced();
    let tl = Timeline::from_trace(m.trace());
    assert_eq!(tl.np, 4);
    assert!(!tl.slices.is_empty());
    let doc = hpf_obs::trace_events_json(&tl).expect("finite trace must export");
    hpf_obs::json::validate(&doc).expect("perfetto JSON must validate");
    assert!(doc.contains("solve/iter="));

    // JSONL round-trip of the same trace (exporters must agree on the
    // event count).
    let jsonl = m.trace().to_jsonl();
    let parsed = hpf_machine::Trace::from_jsonl(&jsonl).unwrap();
    assert_eq!(parsed.events().len(), m.trace().events().len());
}

#[test]
fn analyses_find_the_solver_structure() {
    let (m, _, iterations) = solve_traced();
    let report = critical_path(m.trace());
    assert!((report.total_seconds - m.elapsed()).abs() < 1e-9 * m.elapsed().max(1.0));
    assert!(report.compute_seconds > 0.0);
    assert!(report.comm_seconds > 0.0);
    // Per-span attribution names actual solver phases.
    let keys: Vec<&str> = report.by_span.iter().map(|c| c.key.as_str()).collect();
    assert!(keys.iter().any(|k| k.contains("matvec")));
    assert!(keys.iter().any(|k| k.contains("dot")));
    assert!(keys.iter().any(|k| k.ends_with("iter=1/axpy")));
    // One matvec span per iteration.
    let matvecs: usize = report
        .by_span
        .iter()
        .filter(|c| c.key.ends_with("/matvec"))
        .map(|c| c.count)
        .sum();
    assert!(matvecs >= iterations);
    let imbalance = load_imbalance(m.trace()).unwrap();
    assert!(imbalance.ratio >= 1.0);
    assert_eq!(imbalance.busy.len(), 4);
    assert_eq!(span_costs(m.trace()).len(), report.by_span.len());
}
