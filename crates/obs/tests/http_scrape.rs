//! Integration: run a real service, scrape its live HTTP endpoints the
//! way Prometheus (or a human with `curl`) would, and check that the
//! drift pipeline's artifacts round-trip through the wire.

use hpf_core::{DataArrayLayout, RowwiseCsr};
use hpf_machine::{CostModel, Machine, Topology};
use hpf_obs::{ConvergenceLog, DriftReport};
use hpf_service::{ServiceConfig, SolveRequest, SolverService};
use hpf_solvers::{cg_distributed_with_observer, StopCriterion};
use hpf_sparse::gen;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("headers then body");
    (head.to_string(), body.to_string())
}

#[test]
fn live_serve_loop_is_scrapable_end_to_end() {
    let service = SolverService::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let server = service.serve_http("127.0.0.1:0").unwrap();

    // Work the service: two scenarios so the labeled counters split.
    let a = Arc::new(gen::banded_spd(48, 3, 5));
    let (b, _) = gen::rhs_for_known_solution(&a);
    for scenario in ["rowwise", "colwise"] {
        let response = service
            .solve(SolveRequest::new(a.clone(), b.clone()).scenario(scenario))
            .unwrap();
        assert!(response.stats[0].converged);
    }

    // /healthz answers ok while the service is up.
    let (head, body) = http_get(server.addr(), "/healthz");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(body.contains("\"status\":\"ok\""));
    hpf_obs::json::validate(&body).expect("healthz body is strict JSON");

    // /metrics is a well-formed exposition carrying the labeled
    // counters and a consistent histogram.
    let (head, text) = http_get(server.addr(), "/metrics");
    assert!(head.starts_with("HTTP/1.1 200 OK"));
    assert!(head.contains("text/plain; version=0.0.4"));
    assert!(text.contains("hpf_service_completed_total 2"));
    assert!(text.contains("solve_completed_total{solver=\"cg\",scenario=\"rowwise\"} 1"));
    assert!(text.contains("solve_completed_total{solver=\"cg\",scenario=\"colwise\"} 1"));
    assert!(text.contains("latency_seconds_bucket{le=\"+Inf\"} 2"));
    assert!(text.contains("hpf_service_latency_seconds_sum "));
    assert!(text.contains("hpf_service_latency_seconds_count 2"));

    // The scrape matches what the in-process renderer would produce
    // (modulo the uptime gauge, which moves between snapshots).
    let strip_uptime = |s: &str| {
        s.lines()
            .filter(|l| !l.contains("uptime_seconds"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let local = hpf_obs::render_prometheus(&service.metrics());
    assert_eq!(strip_uptime(&text), strip_uptime(&local));

    // /drift 404s until a report is published, then serves it verbatim.
    let (head, _) = http_get(server.addr(), "/drift");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");

    let np = 4;
    let a2 = gen::poisson_2d(6, 6);
    let (b2, _) = gen::rhs_for_known_solution(&a2);
    let op = RowwiseCsr::block(a2, np, DataArrayLayout::RowAligned);
    let mut m = Machine::new(np, Topology::Hypercube, CostModel::mpp_1995());
    m.set_tracing(true);
    let mut log = ConvergenceLog::new();
    cg_distributed_with_observer(
        &mut m,
        &op,
        &b2,
        StopCriterion::RelativeResidual(1e-8),
        200,
        &mut log,
    )
    .unwrap();
    let report = DriftReport::from_trace(m.trace(), Topology::Hypercube, m.cost_model());
    server.publish_drift(report.to_json());

    let (head, body) = http_get(server.addr(), "/drift");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    hpf_obs::json::validate(&body).expect("drift body is strict JSON");
    assert_eq!(body, report.to_json());
    assert!(body.contains("\"categories\""));

    // Publishing has started (the drift report above), so /slo, /alerts
    // and /postmortems answer 200 with explicit empty documents instead
    // of 404 — a scraper can tell "nothing yet" from "not wired up".
    for (path, empty) in [
        ("/slo", "{\"slo\":[]}"),
        ("/alerts", "{\"alerts\":[]}"),
        ("/postmortems", "{\"postmortems\":[]}"),
    ] {
        let (head, body) = http_get(server.addr(), path);
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{path}: {head}");
        assert_eq!(body, empty, "{path}");
        hpf_obs::json::validate(&body).expect("empty doc is strict JSON");
    }
    let mut slo = hpf_obs::SloTracker::soak_defaults();
    // A clean sample then a sustained breach, so the published state
    // carries a live alert and a non-empty transition log.
    slo.observe(0.5, hpf_service::QosClass::Interactive, 1_000, true);
    let mut now = 1.0;
    while now < 6.0 {
        slo.observe_refusal(now, hpf_service::QosClass::Interactive);
        slo.evaluate(now);
        now += 0.1;
    }
    server.publish_slo(slo.status_json());
    server.publish_alerts(slo.alerts_json());

    let (head, body) = http_get(server.addr(), "/slo");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    hpf_obs::json::validate(&body).expect("slo body is strict JSON");
    assert_eq!(body, slo.status_json());
    assert!(body.contains("\"class\":\"interactive\""), "{body}");
    assert!(body.contains("\"state\":\"firing\""), "{body}");

    let (head, body) = http_get(server.addr(), "/alerts");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    hpf_obs::json::validate(&body).expect("alerts body is strict JSON");
    assert_eq!(body, slo.alerts_json());
    assert!(body.contains("\"to\":\"pending\""), "{body}");
    assert!(body.contains("\"to\":\"firing\""), "{body}");

    // Flight-recorder path: a synthetic bad job produces a post-mortem;
    // publishing it makes /postmortems serve the index and the per-trace
    // document, and the verdict counter reaches /metrics.
    let fr = hpf_obs::FlightRecorder::new(hpf_obs::FlightRecorderConfig::default());
    fr.machine_sink().emit(&hpf_machine::Event {
        kind: hpf_machine::EventKind::AllReduce,
        participants: 4,
        words: 8,
        flops: 0,
        time: 1e-4,
        start: 0.1,
        span: format!("trace={:016x}/solve/iter=2/dot", 0xabu64),
        label: "fault:stall:p2:op17:ms400".to_string(),
        proc_times: Vec::new(),
        payload_words: 8,
        hops: 0,
    });
    fr.service_sink(None)
        .emit(&hpf_service::ServiceEvent::Completed {
            trace_id: 0xab,
            class: hpf_service::QosClass::Interactive,
            latency_us: 900,
            ok: false,
            outcome: "worker-killed",
        });
    let pm = &fr.postmortems()[0];
    assert_eq!(pm.top_verdict().name(), "fault-stall");
    server.publish_postmortem(&pm.key, pm.to_json());
    server.publish_postmortems(fr.index_json());
    service
        .metrics_handle()
        .record_postmortem(pm.top_verdict().name());

    let (head, body) = http_get(server.addr(), "/postmortems");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    hpf_obs::json::validate(&body).expect("postmortems index is strict JSON");
    assert!(body.contains(&pm.key), "{body}");
    assert!(body.contains("\"verdict\":\"fault-stall\""), "{body}");

    let (head, body) = http_get(server.addr(), &format!("/postmortems/{}", pm.key));
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert_eq!(body, pm.to_json(), "per-trace doc served verbatim");
    let summary = hpf_obs::postmortem_summary_from_json(&body).expect("summary");
    assert_eq!(summary.top_verdict, "fault-stall");

    let (head, _) = http_get(server.addr(), "/postmortems/00000000deadbeef");
    assert!(
        head.starts_with("HTTP/1.1 404"),
        "unknown trace 404s: {head}"
    );

    let (_, text) = http_get(server.addr(), "/metrics");
    assert!(
        text.contains("hpf_service_postmortems_total{verdict=\"fault-stall\"} 1"),
        "verdict counter exported"
    );

    // Shutdown flips /healthz to draining / 503.
    service.shutdown();
    let (head, body) = http_get(server.addr(), "/healthz");
    assert!(head.starts_with("HTTP/1.1 503"), "{head}");
    assert!(body.contains("\"status\":\"draining\""), "{body}");
    drop(server);
}
