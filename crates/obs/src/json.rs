//! Minimal JSON utilities: a string escaper for the exporters and a
//! strict validator used by tests and the `trace-report` self-check.
//!
//! The validator accepts exactly one top-level value (RFC 8259 subset:
//! no trailing garbage, no NaN/Infinity literals) and reports the byte
//! offset of the first problem. It never builds a DOM — exported traces
//! can be large and we only need a well-formedness verdict.

/// Escape `s` for inclusion inside a JSON string literal (no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Maximum container nesting the validator will follow before rejecting
/// the document. Deeply nested arrays/objects are almost always hostile
/// or corrupt input, and an unbounded recursive-descent parser would
/// turn them into a stack overflow.
pub const MAX_DEPTH: usize = 128;

/// Check that `s` is exactly one well-formed JSON value.
pub fn validate(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    if depth >= MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", *pos));
    }
    match b.get(*pos) {
        Some(b'{') => object(b, pos, depth),
        Some(b'[') => array(b, pos, depth),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
        None => Err(format!("unexpected end of input at byte {pos}")),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn object(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos, depth + 1)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos, depth + 1)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        let unit = hex_unit(b, *pos + 1)
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        *pos += 5;
                        match unit {
                            // A high surrogate must be immediately
                            // followed by an escaped low surrogate.
                            0xD800..=0xDBFF => {
                                let low = (b.get(*pos) == Some(&b'\\')
                                    && b.get(*pos + 1) == Some(&b'u'))
                                .then(|| hex_unit(b, *pos + 2))
                                .flatten();
                                match low {
                                    Some(0xDC00..=0xDFFF) => *pos += 6,
                                    _ => {
                                        return Err(format!(
                                            "lone high surrogate at byte {}",
                                            *pos - 5
                                        ))
                                    }
                                }
                            }
                            0xDC00..=0xDFFF => {
                                return Err(format!("lone low surrogate at byte {}", *pos - 5))
                            }
                            _ => {}
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn hex_unit(b: &[u8], at: usize) -> Option<u32> {
    let digits = b.get(at..at + 4)?;
    if !digits.iter().all(u8::is_ascii_hexdigit) {
        return None;
    }
    u32::from_str_radix(std::str::from_utf8(digits).ok()?, 16).ok()
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while pos_digit(b, *pos) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("expected digits at byte {pos}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("expected fraction digits at byte {pos}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("expected exponent digits at byte {pos}"));
        }
    }
    // Reject a bare leading zero followed by digits ("007").
    let text = &b[start..*pos];
    let unsigned = if text.first() == Some(&b'-') {
        &text[1..]
    } else {
        text
    };
    if unsigned.len() > 1 && unsigned[0] == b'0' && unsigned[1].is_ascii_digit() {
        return Err(format!("leading zero in number at byte {start}"));
    }
    Ok(())
}

fn pos_digit(b: &[u8], pos: usize) -> bool {
    b.get(pos).is_some_and(u8::is_ascii_digit)
}

/// Format an `f64` as a JSON number; non-finite values become `null`
/// (JSON has no NaN/Infinity).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            "0",
            "\"a\\\"b\\u00e9\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":true}",
            " [ 1 , 2 ] ",
        ] {
            assert!(validate(ok).is_ok(), "should accept {ok}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "007",
            "1 2",
            "\"unterminated",
            "{\"a\":1,}",
            "NaN",
        ] {
            assert!(validate(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb\u{1}"), "a\\nb\\u0001");
        let quoted = format!("\"{}\"", escape("x\n\"\\\ty\u{7}"));
        assert!(validate(&quoted).is_ok());
    }

    #[test]
    fn json_f64_maps_nonfinite_to_null() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn rejects_nonfinite_number_literals() {
        for bad in [
            "NaN",
            "-NaN",
            "Infinity",
            "-Infinity",
            "inf",
            "-inf",
            "1e",
            "nan",
        ] {
            let err = validate(bad).unwrap_err();
            assert!(!err.is_empty(), "should reject {bad:?}");
            // Same rejection when embedded in a container.
            assert!(validate(&format!("[{bad}]")).is_err(), "in array: {bad}");
            assert!(
                validate(&format!("{{\"x\":{bad}}}")).is_err(),
                "in object: {bad}"
            );
        }
        // json_f64 renders non-finite as null, which must validate.
        assert!(validate(&format!("[{}]", json_f64(f64::NAN))).is_ok());
    }

    #[test]
    fn rejects_deeply_nested_arrays_with_typed_error() {
        let fits = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(validate(&fits).is_ok(), "depth {MAX_DEPTH} must pass");
        let deep = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        let err = validate(&deep).unwrap_err();
        assert!(err.contains("nesting deeper than"), "got: {err}");
        // Hostile depth far past the limit must not overflow the stack.
        let hostile = "[".repeat(100_000);
        assert!(validate(&hostile).is_err());
        // Mixed object/array nesting counts too.
        let mixed = "{\"a\":".repeat(MAX_DEPTH + 1) + "1" + &"}".repeat(MAX_DEPTH + 1);
        assert!(validate(&mixed)
            .unwrap_err()
            .contains("nesting deeper than"));
    }

    #[test]
    fn rejects_lone_surrogates_in_strings() {
        // Valid pair: U+1F600 as \uD83D\uDE00.
        assert!(validate("\"\\uD83D\\uDE00\"").is_ok());
        // Lone high, high+non-escape, high+wrong-escape, lone low.
        for (bad, want) in [
            ("\"\\uD83D\"", "lone high surrogate"),
            ("\"\\uD83Dx\"", "lone high surrogate"),
            ("\"\\uD83D\\n\"", "lone high surrogate"),
            ("\"\\uD800\\uD800\"", "lone high surrogate"),
            ("\"\\uDE00\"", "lone low surrogate"),
        ] {
            let err = validate(bad).unwrap_err();
            assert!(err.contains(want), "{bad}: got {err}");
        }
        // Non-surrogate escapes are unaffected.
        assert!(validate("\"\\u00e9\\u0041\"").is_ok());
    }
}
