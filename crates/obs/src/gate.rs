//! Bench regression gate: a persistent, schema-versioned trajectory of
//! benchmark results with a pass/fail comparison against the previous
//! run.
//!
//! Every gated run produces a [`BenchRecord`]: a named set of scalar
//! series (simulated seconds, drift percentages — anything where
//! *lower is better*). [`RegressionGate::check_and_record`] compares
//! the fresh record against the committed `BENCH_<n>.json` from the
//! previous run, fails with a typed [`GateError::Regression`] when any
//! series regressed by more than the configured percentage, then
//! rewrites `BENCH_<n>.json` and appends the record to the rolling
//! `bench-history.jsonl` — so the repository itself carries the
//! performance trajectory from PR to PR and CI can refuse changes that
//! walk it backwards.
//!
//! Records hold *simulated* quantities only (the machine's cost-model
//! clock), never wall time, so the gate is deterministic across hosts.

use std::fmt;
use std::path::PathBuf;

/// Version stamp written into every record; bump on layout changes so
/// an old CI baseline fails loudly instead of comparing garbage.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// One benchmark run: an ordered set of named scalar series values.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    pub schema_version: u32,
    /// Bench number: record `n` persists as `BENCH_<n>.json`.
    pub bench: u32,
    /// Human name of the benchmark (e.g. `"e25-drift"`).
    pub name: String,
    /// `(series name, value)` pairs; lower is better for every series.
    pub series: Vec<(String, f64)>,
}

impl BenchRecord {
    pub fn new(bench: u32, name: impl Into<String>) -> Self {
        BenchRecord {
            schema_version: BENCH_SCHEMA_VERSION,
            bench,
            name: name.into(),
            series: Vec::new(),
        }
    }

    /// Append one series value. Series names must be unique; lower is
    /// better by contract.
    pub fn push(&mut self, name: impl Into<String>, value: f64) {
        self.series.push((name.into(), value));
    }

    /// Look up a series value by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.series.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Render as one JSON object (single line, suitable for both the
    /// `BENCH_<n>.json` file and a `bench-history.jsonl` row).
    pub fn to_json(&self) -> String {
        let series: Vec<String> = self
            .series
            .iter()
            .map(|(n, v)| {
                format!(
                    "{{\"name\":\"{}\",\"value\":{}}}",
                    crate::json::escape(n),
                    crate::json::json_f64(*v)
                )
            })
            .collect();
        format!(
            "{{\"schema_version\":{},\"bench\":{},\"name\":\"{}\",\"series\":[{}]}}",
            self.schema_version,
            self.bench,
            crate::json::escape(&self.name),
            series.join(",")
        )
    }

    /// Parse a record back from [`Self::to_json`] output. Rejects
    /// malformed JSON and schema mismatches with typed errors.
    pub fn from_json(text: &str) -> Result<BenchRecord, GateError> {
        crate::json::validate(text).map_err(|e| GateError::Parse(format!("invalid JSON: {e}")))?;
        let scalar = |src: &str, key: &str| -> Result<String, GateError> {
            let needle = format!("\"{key}\":");
            let at = src
                .find(&needle)
                .ok_or_else(|| GateError::Parse(format!("missing field {key:?}")))?;
            let rest = &src[at + needle.len()..];
            let end = rest
                .find([',', '}', ']'])
                .ok_or_else(|| GateError::Parse(format!("unterminated field {key:?}")))?;
            Ok(rest[..end].trim().to_string())
        };
        let quoted = |tok: String| -> Result<String, GateError> {
            tok.strip_prefix('"')
                .and_then(|t| t.strip_suffix('"'))
                .map(str::to_string)
                .ok_or_else(|| GateError::Parse(format!("expected string, got {tok:?}")))
        };
        let schema_version: u32 = scalar(text, "schema_version")?
            .parse()
            .map_err(|_| GateError::Parse("bad schema_version".to_string()))?;
        if schema_version != BENCH_SCHEMA_VERSION {
            return Err(GateError::SchemaMismatch {
                found: schema_version,
                expected: BENCH_SCHEMA_VERSION,
            });
        }
        let bench: u32 = scalar(text, "bench")?
            .parse()
            .map_err(|_| GateError::Parse("bad bench number".to_string()))?;
        let name = quoted(scalar(text, "name")?)?;
        let series_at = text
            .find("\"series\":[")
            .ok_or_else(|| GateError::Parse("missing series array".to_string()))?;
        let series_src = &text[series_at + "\"series\":[".len()..];
        let series_src = &series_src[..series_src
            .find(']')
            .ok_or_else(|| GateError::Parse("unterminated series array".to_string()))?];
        let mut series = Vec::new();
        for obj in series_src.split('{').skip(1) {
            let n = quoted(scalar(obj, "name")?)?;
            let v: f64 = scalar(obj, "value")?
                .parse()
                .map_err(|_| GateError::Parse(format!("bad value for series {n:?}")))?;
            series.push((n, v));
        }
        Ok(BenchRecord {
            schema_version,
            bench,
            name,
            series,
        })
    }
}

/// One series that regressed past the gate's threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    pub series: String,
    pub previous: f64,
    pub current: f64,
    /// Regression in percent (positive = got worse).
    pub pct: f64,
}

/// Why a gated bench run failed.
#[derive(Debug, Clone, PartialEq)]
pub enum GateError {
    /// Reading or writing a bench file failed.
    Io(String),
    /// A bench file existed but could not be parsed.
    Parse(String),
    /// The baseline was written by an incompatible schema.
    SchemaMismatch { found: u32, expected: u32 },
    /// At least one series regressed past the threshold.
    Regression { violations: Vec<Violation> },
}

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateError::Io(e) => write!(f, "bench gate I/O error: {e}"),
            GateError::Parse(e) => write!(f, "bench record parse error: {e}"),
            GateError::SchemaMismatch { found, expected } => write!(
                f,
                "bench schema mismatch: baseline is v{found}, this binary writes v{expected}"
            ),
            GateError::Regression { violations } => {
                write!(f, "bench regression gate failed:")?;
                for v in violations {
                    write!(
                        f,
                        " [{} {:.6e} -> {:.6e} (+{:.1}%)]",
                        v.series, v.previous, v.current, v.pct
                    )?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for GateError {}

/// What a successful gate pass did.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// False on the first run (no baseline existed yet).
    pub compared: bool,
    /// Series present in both the baseline and the fresh record.
    pub series_compared: usize,
    /// Where the new baseline was written.
    pub baseline_path: PathBuf,
}

/// The regression gate: compares a fresh [`BenchRecord`] against the
/// persisted baseline in `dir` and maintains the trajectory files.
#[derive(Debug, Clone)]
pub struct RegressionGate {
    pub dir: PathBuf,
    /// Fail when a series grows by more than this percentage over the
    /// baseline.
    pub max_regression_pct: f64,
}

impl RegressionGate {
    /// Gate rooted at `dir` with the default 10% tolerance.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        RegressionGate {
            dir: dir.into(),
            max_regression_pct: 10.0,
        }
    }

    pub fn with_tolerance(mut self, pct: f64) -> Self {
        self.max_regression_pct = pct;
        self
    }

    /// Path of the baseline file for bench `n`.
    pub fn baseline_path(&self, bench: u32) -> PathBuf {
        self.dir.join(format!("BENCH_{bench}.json"))
    }

    /// Path of the rolling history journal.
    pub fn history_path(&self) -> PathBuf {
        self.dir.join("bench-history.jsonl")
    }

    /// Compare `record` against the previous baseline (when one
    /// exists), then persist `record` as the new baseline and append it
    /// to the history journal.
    ///
    /// On regression the error is returned *before* the baseline is
    /// rewritten, so a failing run leaves the old baseline in place and
    /// re-running the comparison stays meaningful.
    pub fn check_and_record(&self, record: &BenchRecord) -> Result<GateOutcome, GateError> {
        let baseline_path = self.baseline_path(record.bench);
        let mut compared = false;
        let mut series_compared = 0;
        if baseline_path.exists() {
            let text = std::fs::read_to_string(&baseline_path)
                .map_err(|e| GateError::Io(format!("{}: {e}", baseline_path.display())))?;
            let baseline = BenchRecord::from_json(&text)?;
            compared = true;
            let mut violations = Vec::new();
            for (name, current) in &record.series {
                let Some(previous) = baseline.get(name) else {
                    continue;
                };
                series_compared += 1;
                // Series too small to compare meaningfully are skipped;
                // percentages on ~0 baselines amplify noise.
                if previous.abs() < 1e-12 {
                    continue;
                }
                let pct = (current - previous) / previous * 100.0;
                if pct > self.max_regression_pct {
                    violations.push(Violation {
                        series: name.clone(),
                        previous,
                        current: *current,
                        pct,
                    });
                }
            }
            if !violations.is_empty() {
                return Err(GateError::Regression { violations });
            }
        }
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| GateError::Io(format!("{}: {e}", self.dir.display())))?;
        std::fs::write(&baseline_path, format!("{}\n", record.to_json()))
            .map_err(|e| GateError::Io(format!("{}: {e}", baseline_path.display())))?;
        let history = self.history_path();
        let mut journal = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&history)
            .map_err(|e| GateError::Io(format!("{}: {e}", history.display())))?;
        use std::io::Write as _;
        writeln!(journal, "{}", record.to_json())
            .map_err(|e| GateError::Io(format!("{}: {e}", history.display())))?;
        Ok(GateOutcome {
            compared,
            series_compared,
            baseline_path,
        })
    }
}

/// Render a side-by-side regression table for two bench records (the
/// `bench-diff` CLI). Returns the table and whether any shared series
/// regressed past `max_regression_pct`.
pub fn render_diff(
    prev: &BenchRecord,
    cur: &BenchRecord,
    max_regression_pct: f64,
) -> (String, bool) {
    let mut out = String::new();
    let mut regressed = false;
    out.push_str(&format!(
        "bench diff: {} (BENCH_{}) -> {} (BENCH_{})\n{:<28} {:>14} {:>14} {:>9}\n",
        prev.name, prev.bench, cur.name, cur.bench, "series", "previous", "current", "delta"
    ));
    for (name, current) in &cur.series {
        match prev.get(name) {
            Some(previous) if previous.abs() > 1e-12 => {
                let pct = (current - previous) / previous * 100.0;
                let mark = if pct > max_regression_pct {
                    regressed = true;
                    " REGRESSED"
                } else {
                    ""
                };
                out.push_str(&format!(
                    "{name:<28} {previous:>14.6e} {current:>14.6e} {pct:>+8.1}%{mark}\n"
                ));
            }
            Some(previous) => {
                out.push_str(&format!(
                    "{name:<28} {previous:>14.6e} {current:>14.6e} {:>9}\n",
                    "~0 base"
                ));
            }
            None => {
                out.push_str(&format!(
                    "{name:<28} {:>14} {current:>14.6e} {:>9}\n",
                    "(new)", ""
                ));
            }
        }
    }
    for (name, previous) in &prev.series {
        if cur.get(name).is_none() {
            out.push_str(&format!(
                "{name:<28} {previous:>14.6e} {:>14} {:>9}\n",
                "(gone)", ""
            ));
        }
    }
    (out, regressed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hpf-gate-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn record(bench: u32, solve: f64, drift: f64) -> BenchRecord {
        let mut r = BenchRecord::new(bench, "e25-drift");
        r.push("rowwise/solve_seconds", solve);
        r.push("rowwise/max_drift_pct", drift);
        r
    }

    #[test]
    fn record_json_round_trips_and_validates() {
        let r = record(25, 0.0123, 1.5);
        let json = r.to_json();
        crate::json::validate(&json).unwrap();
        assert_eq!(BenchRecord::from_json(&json).unwrap(), r);
    }

    #[test]
    fn parser_rejects_garbage_and_wrong_schema() {
        assert!(matches!(
            BenchRecord::from_json("nope"),
            Err(GateError::Parse(_))
        ));
        let wrong = r#"{"schema_version":99,"bench":1,"name":"x","series":[]}"#;
        assert!(matches!(
            BenchRecord::from_json(wrong),
            Err(GateError::SchemaMismatch {
                found: 99,
                expected: BENCH_SCHEMA_VERSION
            })
        ));
    }

    #[test]
    fn first_run_writes_baseline_and_history() {
        let dir = temp_dir("first");
        let gate = RegressionGate::new(&dir);
        let out = gate.check_and_record(&record(25, 0.01, 1.0)).unwrap();
        assert!(!out.compared);
        assert!(gate.baseline_path(25).exists());
        let history = std::fs::read_to_string(gate.history_path()).unwrap();
        assert_eq!(history.lines().count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn improvement_passes_and_extends_history() {
        let dir = temp_dir("improve");
        let gate = RegressionGate::new(&dir);
        gate.check_and_record(&record(25, 0.010, 2.0)).unwrap();
        let out = gate.check_and_record(&record(25, 0.009, 1.5)).unwrap();
        assert!(out.compared);
        assert_eq!(out.series_compared, 2);
        let history = std::fs::read_to_string(gate.history_path()).unwrap();
        assert_eq!(history.lines().count(), 2);
        // Baseline now holds the newer run.
        let base =
            BenchRecord::from_json(&std::fs::read_to_string(gate.baseline_path(25)).unwrap())
                .unwrap();
        assert_eq!(base.get("rowwise/solve_seconds"), Some(0.009));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn regression_fails_typed_and_keeps_the_old_baseline() {
        let dir = temp_dir("regress");
        let gate = RegressionGate::new(&dir).with_tolerance(10.0);
        gate.check_and_record(&record(25, 0.010, 1.0)).unwrap();
        let err = gate.check_and_record(&record(25, 0.013, 1.0)).unwrap_err();
        let GateError::Regression { violations } = &err else {
            panic!("expected Regression, got {err:?}");
        };
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].series, "rowwise/solve_seconds");
        assert!((violations[0].pct - 30.0).abs() < 1e-9);
        assert!(err.to_string().contains("regression gate failed"));
        // Baseline untouched; history has only the passing run.
        let base =
            BenchRecord::from_json(&std::fs::read_to_string(gate.baseline_path(25)).unwrap())
                .unwrap();
        assert_eq!(base.get("rowwise/solve_seconds"), Some(0.010));
        assert_eq!(
            std::fs::read_to_string(gate.history_path())
                .unwrap()
                .lines()
                .count(),
            1
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn small_baselines_and_new_series_do_not_trip_the_gate() {
        let dir = temp_dir("small");
        let gate = RegressionGate::new(&dir);
        let mut first = BenchRecord::new(7, "tiny");
        first.push("zero_series", 0.0);
        gate.check_and_record(&first).unwrap();
        let mut second = BenchRecord::new(7, "tiny");
        second.push("zero_series", 5.0); // huge % over ~0 baseline: skipped
        second.push("brand_new", 1.0); // not in baseline: skipped
        gate.check_and_record(&second).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn diff_table_marks_regressions_new_and_gone_series() {
        let mut prev = record(25, 0.010, 1.0);
        prev.push("colwise/only_old", 3.0);
        let mut cur = record(25, 0.013, 0.9);
        cur.push("colwise/only_new", 2.0);
        let (table, regressed) = render_diff(&prev, &cur, 10.0);
        assert!(regressed);
        assert!(table.contains("REGRESSED"));
        assert!(table.contains("(new)"));
        assert!(table.contains("(gone)"));
        let (_, ok) = render_diff(&prev, &prev.clone(), 10.0);
        assert!(!ok);
    }
}
