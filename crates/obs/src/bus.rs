//! The live telemetry bus: a bounded lock-free ring buffer fed by the
//! machine- and service-level event taps, with per-job head sampling.
//!
//! Post-hoc traces answer "what did that solve cost?"; the bus answers
//! the operational question "what is the service doing *right now*?".
//! Producers (worker threads recording machine events, the submitter
//! shedding at the door, the supervisor killing a hung worker) publish
//! into a fixed-capacity multi-producer/multi-consumer ring — the
//! classic bounded MPMC queue of Vyukov, one sequence-stamped slot per
//! cell, every operation a couple of atomics, no locks anywhere on the
//! publish path. A consumer (`trace-report --follow`, the E29 harness)
//! drains at its own pace; when producers outrun it the ring *drops new
//! events and counts them* rather than blocking a solver thread.
//!
//! **Head sampling** keeps the always-on cost negligible: the keep/drop
//! decision is made once per *job* (keyed on the request's trace id, so
//! a kept job streams all of its events and a dropped job none — paths
//! stay joinable end to end), except that operationally critical events
//! — machine faults and service sheds, kills, rollbacks, retries,
//! deadline expiries — bypass sampling entirely. You can lower the
//! sample rate to shed volume, never visibility of failures.

use crate::json::{escape, json_f64};
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Where a bus event was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusOrigin {
    /// The simulated machine's recording chokepoint
    /// ([`hpf_machine::EventSink`]): spans, collectives, faults.
    Machine,
    /// The service lifecycle ([`hpf_service::ServiceEvent`]): admission,
    /// sheds, kills, completions.
    Service,
}

impl BusOrigin {
    pub fn name(&self) -> &'static str {
        match self {
            BusOrigin::Machine => "machine",
            BusOrigin::Service => "service",
        }
    }

    fn parse(s: &str) -> Option<BusOrigin> {
        match s {
            "machine" => Some(BusOrigin::Machine),
            "service" => Some(BusOrigin::Service),
            _ => None,
        }
    }
}

/// One sampled telemetry event, flattened to a common schema so machine
/// and service events interleave on a single stream.
///
/// This is deliberately *not* the [`hpf_machine::Event`] JSONL schema —
/// that parser rejects unknown keys by contract, and the bus needs
/// stream metadata (`seq`, `wall_s`, `origin`, `trace`) the post-hoc
/// trace never carries.
#[derive(Debug, Clone, PartialEq)]
pub struct BusEvent {
    /// Publication sequence number (gaps = ring overflow drops).
    pub seq: u64,
    /// Wall-clock seconds since the bus was created.
    pub wall_s: f64,
    pub origin: BusOrigin,
    /// Stable kind label: the machine [`hpf_machine::EventKind`] name
    /// or the service event kind (`"shed"`, `"worker-killed"`, ...).
    pub kind: String,
    /// Request trace id (0 = not tied to one request).
    pub trace_id: u64,
    /// QoS class name for service events; empty for machine events.
    pub class: String,
    /// Span path for machine events; empty for service events.
    pub span: String,
    pub label: String,
    /// Simulated seconds (machine events; 0 for service events).
    pub time_s: f64,
    /// Completion latency in µs (service `completed` events; else 0).
    pub latency_us: u64,
    /// Completion outcome (service `completed` events; else `true`).
    pub ok: bool,
    /// Stable outcome tag for service `completed` events (`"ok"`,
    /// `"worker-killed"`, `"recovery-exhausted"`, ...); empty for every
    /// other event. Serialized only when non-empty, and old followers
    /// ignore it — the lenient parser contract at work.
    pub outcome: String,
}

impl BusEvent {
    /// One-line JSON rendering (the `--follow` wire format).
    pub fn to_jsonl(&self) -> String {
        let outcome = if self.outcome.is_empty() {
            String::new()
        } else {
            format!(",\"outcome\":\"{}\"", escape(&self.outcome))
        };
        format!(
            "{{\"seq\":{},\"wall_s\":{},\"origin\":\"{}\",\"kind\":\"{}\",\"trace\":\"{:016x}\",\
             \"class\":\"{}\",\"span\":\"{}\",\"label\":\"{}\",\"time_s\":{},\"latency_us\":{},\"ok\":{}{}}}",
            self.seq,
            json_f64(self.wall_s),
            self.origin.name(),
            escape(&self.kind),
            self.trace_id,
            escape(&self.class),
            escape(&self.span),
            escape(&self.label),
            json_f64(self.time_s),
            self.latency_us,
            self.ok,
            outcome,
        )
    }

    /// Parse one [`BusEvent::to_jsonl`] line. Unlike the post-hoc trace
    /// parser this is *lenient about unknown keys* (a follower must keep
    /// working when a newer producer adds fields) but strict about the
    /// ones it understands.
    pub fn from_jsonl(line: &str) -> Result<BusEvent, String> {
        let inner = line
            .trim()
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or_else(|| "bus event line is not a JSON object".to_string())?;
        let mut ev = BusEvent {
            seq: 0,
            wall_s: 0.0,
            origin: BusOrigin::Machine,
            kind: String::new(),
            trace_id: 0,
            class: String::new(),
            span: String::new(),
            label: String::new(),
            time_s: 0.0,
            latency_us: 0,
            ok: true,
            outcome: String::new(),
        };
        let mut saw_origin = false;
        for (key, value) in split_top_level_pairs(inner)? {
            match key {
                "seq" => ev.seq = value.parse().map_err(|_| format!("bad seq {value:?}"))?,
                "wall_s" => {
                    ev.wall_s = value.parse().map_err(|_| format!("bad wall_s {value:?}"))?
                }
                "origin" => {
                    let raw = unquote(value)?;
                    ev.origin =
                        BusOrigin::parse(&raw).ok_or_else(|| format!("unknown origin {raw:?}"))?;
                    saw_origin = true;
                }
                "kind" => ev.kind = unquote(value)?,
                "trace" => {
                    let raw = unquote(value)?;
                    ev.trace_id = u64::from_str_radix(&raw, 16)
                        .map_err(|_| format!("bad trace id {raw:?}"))?;
                }
                "class" => ev.class = unquote(value)?,
                "span" => ev.span = unquote(value)?,
                "label" => ev.label = unquote(value)?,
                "time_s" => {
                    ev.time_s = value.parse().map_err(|_| format!("bad time_s {value:?}"))?
                }
                "latency_us" => {
                    ev.latency_us = value
                        .parse()
                        .map_err(|_| format!("bad latency_us {value:?}"))?
                }
                "ok" => ev.ok = value.parse().map_err(|_| format!("bad ok {value:?}"))?,
                "outcome" => ev.outcome = unquote(value)?,
                _ => {} // forward compatibility: ignore unknown keys
            }
        }
        if !saw_origin {
            return Err("bus event line is missing 'origin'".to_string());
        }
        Ok(ev)
    }
}

/// Split `"k":v,...` at the top level (no nested objects/arrays in the
/// bus schema; strings may contain escaped quotes and commas).
fn split_top_level_pairs(inner: &str) -> Result<Vec<(&str, &str)>, String> {
    let mut pairs = Vec::new();
    let bytes = inner.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        // Key: "name"
        if bytes[i] != b'"' {
            return Err(format!("expected key quote at byte {i}"));
        }
        let key_end = inner[i + 1..]
            .find('"')
            .ok_or_else(|| "unterminated key".to_string())?
            + i
            + 1;
        let key = &inner[i + 1..key_end];
        if bytes.get(key_end + 1) != Some(&b':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        // Value: scan to the next top-level comma.
        let mut j = key_end + 2;
        let mut in_string = false;
        let mut escaped = false;
        while j < bytes.len() {
            let b = bytes[j];
            if in_string {
                if escaped {
                    escaped = false;
                } else if b == b'\\' {
                    escaped = true;
                } else if b == b'"' {
                    in_string = false;
                }
            } else if b == b'"' {
                in_string = true;
            } else if b == b',' {
                break;
            }
            j += 1;
        }
        pairs.push((key, &inner[key_end + 2..j]));
        i = j + 1;
    }
    Ok(pairs)
}

/// Undo [`escape`] on a quoted JSON string value.
fn unquote(value: &str) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("expected string, got {value:?}"))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let code =
                    u32::from_str_radix(&hex, 16).map_err(|_| format!("bad \\u escape {hex:?}"))?;
                out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
            }
            other => return Err(format!("bad escape {other:?}")),
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// The lock-free ring
// ---------------------------------------------------------------------

struct Slot {
    /// Vyukov sequence stamp: `pos` when free for the producer claiming
    /// `pos`, `pos + 1` when holding that producer's value.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<BusEvent>>,
}

/// Bounded multi-producer/multi-consumer queue (Vyukov). `push` never
/// blocks: on a full ring it drops the event and returns `false`.
pub struct RingBuffer {
    slots: Box<[Slot]>,
    mask: usize,
    enqueue: AtomicUsize,
    dequeue: AtomicUsize,
}

// Safety: slots are handed off between threads through the per-slot
// `seq` stamp (acquire/release pairs below); a slot's value is only
// touched by the single thread that claimed its position.
unsafe impl Send for RingBuffer {}
unsafe impl Sync for RingBuffer {}

impl RingBuffer {
    /// Capacity is rounded up to a power of two (minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        RingBuffer {
            slots,
            mask: cap - 1,
            enqueue: AtomicUsize::new(0),
            dequeue: AtomicUsize::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Non-blocking push; `false` = ring full, event dropped.
    pub fn push(&self, event: BusEvent) -> bool {
        let mut pos = self.enqueue.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            match seq as isize - pos as isize {
                0 => {
                    // Slot free for this position: claim it.
                    match self.enqueue.compare_exchange_weak(
                        pos,
                        pos.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            unsafe { (*slot.value.get()).write(event) };
                            slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                            return true;
                        }
                        Err(actual) => pos = actual,
                    }
                }
                d if d < 0 => return false, // full: a lap behind the consumers
                _ => pos = self.enqueue.load(Ordering::Relaxed), // raced: reload
            }
        }
    }

    /// Non-blocking pop; `None` = ring empty.
    pub fn pop(&self) -> Option<BusEvent> {
        let mut pos = self.dequeue.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            match seq as isize - (pos.wrapping_add(1)) as isize {
                0 => {
                    match self.dequeue.compare_exchange_weak(
                        pos,
                        pos.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            let value = unsafe { (*slot.value.get()).assume_init_read() };
                            slot.seq
                                .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                            return Some(value);
                        }
                        Err(actual) => pos = actual,
                    }
                }
                d if d < 0 => return None, // empty
                _ => pos = self.dequeue.load(Ordering::Relaxed),
            }
        }
    }
}

impl Drop for RingBuffer {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

// ---------------------------------------------------------------------
// Sampling
// ---------------------------------------------------------------------

/// Head-sampling policy: one keep/drop decision per job, critical
/// events always kept.
#[derive(Debug, Clone, Copy)]
pub struct SamplingPolicy {
    /// Fraction of jobs whose non-critical events are kept, `0.0..=1.0`.
    pub sample_rate: f64,
}

impl SamplingPolicy {
    /// Keep everything (the E29 overhead phase measures this worst case).
    pub fn keep_all() -> Self {
        SamplingPolicy { sample_rate: 1.0 }
    }

    pub fn with_rate(sample_rate: f64) -> Self {
        SamplingPolicy {
            sample_rate: sample_rate.clamp(0.0, 1.0),
        }
    }

    /// The head decision for a job: deterministic in its trace id, so
    /// every producer (and a replay) agrees without coordination.
    /// Events with no trace id (`0`) share one fixed decision.
    pub fn keep_job(&self, trace_id: u64) -> bool {
        if self.sample_rate >= 1.0 {
            return true;
        }
        if self.sample_rate <= 0.0 {
            return false;
        }
        // splitmix64 finalizer: uniform bits even for sequential ids.
        let mut x = trace_id.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x as f64 / u64::MAX as f64) < self.sample_rate
    }

    /// Full decision: critical events bypass the head sample.
    pub fn keep(&self, trace_id: u64, critical: bool) -> bool {
        critical || self.keep_job(trace_id)
    }
}

impl Default for SamplingPolicy {
    /// Keep 10% of jobs (plus every critical event).
    fn default() -> Self {
        SamplingPolicy { sample_rate: 0.1 }
    }
}

// ---------------------------------------------------------------------
// The bus
// ---------------------------------------------------------------------

/// Publication counters (all monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Events accepted into the ring.
    pub published: u64,
    /// Events refused because the ring was full (consumer too slow).
    pub dropped: u64,
    /// Events skipped by the head-sampling policy (working as designed).
    pub sampled_out: u64,
}

/// One cache line per counter stripe, so threads hammering the
/// sampled-out path (every machine op of a dropped job) never ping-pong
/// a shared line between cores.
#[repr(align(64))]
#[derive(Default)]
struct PaddedCounter(AtomicU64);

const COUNTER_STRIPES: usize = 8;

/// This thread's stripe index: assigned round-robin on first use.
fn counter_stripe() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed) % COUNTER_STRIPES;
    }
    STRIPE.with(|s| *s)
}

/// The streaming event bus: sampling policy + ring + wall clock.
pub struct EventBus {
    ring: RingBuffer,
    policy: SamplingPolicy,
    started: Instant,
    seq: AtomicU64,
    dropped: AtomicU64,
    sampled_out: [PaddedCounter; COUNTER_STRIPES],
}

impl EventBus {
    pub fn new(capacity: usize, policy: SamplingPolicy) -> Arc<Self> {
        Arc::new(EventBus {
            ring: RingBuffer::new(capacity),
            policy,
            started: Instant::now(),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            sampled_out: Default::default(),
        })
    }

    /// Count one head-sampled-out event on this thread's stripe.
    fn note_sampled_out(&self) {
        self.sampled_out[counter_stripe()]
            .0
            .fetch_add(1, Ordering::Relaxed);
    }

    pub fn policy(&self) -> SamplingPolicy {
        self.policy
    }

    pub fn stats(&self) -> BusStats {
        BusStats {
            published: self.seq.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            sampled_out: self
                .sampled_out
                .iter()
                .map(|c| c.0.load(Ordering::Relaxed))
                .sum(),
        }
    }

    /// Apply sampling and publish. The caller supplies everything but
    /// `seq`/`wall_s`, which the bus stamps.
    pub fn publish(&self, mut event: BusEvent, critical: bool) {
        if !self.policy.keep(event.trace_id, critical) {
            self.note_sampled_out();
            return;
        }
        event.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        event.wall_s = self.started.elapsed().as_secs_f64();
        if !self.ring.push(event) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Pop every currently-buffered event (FIFO).
    pub fn drain(&self) -> Vec<BusEvent> {
        let mut out = Vec::new();
        while let Some(e) = self.ring.pop() {
            out.push(e);
        }
        out
    }

    /// Pop one event.
    pub fn pop(&self) -> Option<BusEvent> {
        self.ring.pop()
    }

    /// A machine-level tap for [`hpf_machine::Machine::set_event_sink`]:
    /// every recorded machine event is flattened and offered to the bus.
    /// The trace id is read from the span path's `trace=<hex>` segment
    /// (stamped by the service worker); machine faults are critical.
    ///
    /// The sink carries a pre-filter so that, with tracing off, a
    /// head-sampled-out job's machine operations never even build an
    /// event — the E29 <5% telemetry-overhead band depends on this.
    pub fn machine_sink(self: &Arc<Self>) -> hpf_machine::EventSink {
        let filter_bus = Arc::clone(self);
        let bus = Arc::clone(self);
        hpf_machine::EventSink::new(move |e: &hpf_machine::Event| {
            let trace_id = hpf_machine::span::trace_of(&e.span).unwrap_or(0);
            let critical = e.kind == hpf_machine::EventKind::Fault;
            // Decide before building: with tracing on the machine hands
            // us every event, and a sampled-out job must not pay three
            // allocations per operation just to be dropped in publish.
            if !bus.policy.keep(trace_id, critical) {
                bus.note_sampled_out();
                return;
            }
            bus.publish(
                BusEvent {
                    seq: 0,
                    wall_s: 0.0,
                    origin: BusOrigin::Machine,
                    kind: format!("{:?}", e.kind),
                    trace_id,
                    class: String::new(),
                    span: e.span.clone(),
                    label: e.label.clone(),
                    time_s: e.time,
                    latency_us: 0,
                    ok: true,
                    outcome: String::new(),
                },
                critical,
            );
        })
        .with_filter(move |trace_id, kind| {
            let critical = kind == hpf_machine::EventKind::Fault;
            if filter_bus.policy.keep(trace_id, critical) {
                true
            } else {
                filter_bus.note_sampled_out();
                false
            }
        })
    }

    /// A service-level tap for
    /// [`hpf_service::ServiceConfig::event_sink`]: lifecycle events
    /// (sheds, kills, completions...) flattened onto the same stream.
    pub fn service_sink(self: &Arc<Self>) -> hpf_service::ServiceEventSink {
        let bus = Arc::clone(self);
        hpf_service::ServiceEventSink::new(move |e: &hpf_service::ServiceEvent| {
            let (class, latency_us, ok, outcome) = match *e {
                hpf_service::ServiceEvent::Completed {
                    class,
                    latency_us,
                    ok,
                    outcome,
                    ..
                } => (class.name(), latency_us, ok, outcome),
                hpf_service::ServiceEvent::Admitted { class, .. }
                | hpf_service::ServiceEvent::Shed { class, .. }
                | hpf_service::ServiceEvent::DeadlineExpired { class, .. }
                | hpf_service::ServiceEvent::WorkerKilled { class, .. }
                | hpf_service::ServiceEvent::Rollback { class, .. }
                | hpf_service::ServiceEvent::Retry { class, .. } => (class.name(), 0, true, ""),
                hpf_service::ServiceEvent::WorkerRestarted { .. } => ("", 0, true, ""),
            };
            bus.publish(
                BusEvent {
                    seq: 0,
                    wall_s: 0.0,
                    origin: BusOrigin::Service,
                    kind: e.kind().to_string(),
                    trace_id: e.trace_id(),
                    class: class.to_string(),
                    span: String::new(),
                    label: String::new(),
                    time_s: 0.0,
                    latency_us,
                    ok,
                    outcome: outcome.to_string(),
                },
                e.is_critical(),
            );
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, trace_id: u64) -> BusEvent {
        BusEvent {
            seq,
            wall_s: 0.25,
            origin: BusOrigin::Machine,
            kind: "AllReduce".to_string(),
            trace_id,
            class: String::new(),
            span: format!("trace={trace_id:016x}/solve/iter=1/matvec"),
            label: "dot-merge".to_string(),
            time_s: 1.5e-4,
            latency_us: 0,
            ok: true,
            outcome: String::new(),
        }
    }

    #[test]
    fn ring_is_fifo_and_drops_when_full() {
        let ring = RingBuffer::new(4);
        assert_eq!(ring.capacity(), 4);
        for i in 0..4 {
            assert!(ring.push(ev(i, 1)));
        }
        assert!(!ring.push(ev(9, 1)), "full ring refuses, never blocks");
        for i in 0..4 {
            assert_eq!(ring.pop().unwrap().seq, i);
        }
        assert!(ring.pop().is_none());
        // Wrap-around: the freed slots are reusable.
        assert!(ring.push(ev(10, 1)));
        assert_eq!(ring.pop().unwrap().seq, 10);
    }

    #[test]
    fn ring_survives_concurrent_producers_and_consumer() {
        let ring = Arc::new(RingBuffer::new(64));
        let total = Arc::new(AtomicU64::new(0));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    let mut pushed = 0u64;
                    for i in 0..500 {
                        if ring.push(ev(p * 1000 + i, p)) {
                            pushed += 1;
                        }
                    }
                    pushed
                })
            })
            .collect();
        let consumer = {
            let ring = Arc::clone(&ring);
            let total = Arc::clone(&total);
            std::thread::spawn(move || {
                let mut idle = 0;
                while idle < 200 {
                    match ring.pop() {
                        Some(_) => {
                            idle = 0;
                            total.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            idle += 1;
                            std::thread::yield_now();
                        }
                    }
                }
            })
        };
        let pushed: u64 = producers.into_iter().map(|p| p.join().unwrap()).sum();
        consumer.join().unwrap();
        let drained = total.load(Ordering::Relaxed) + {
            let mut rest = 0;
            while ring.pop().is_some() {
                rest += 1;
            }
            rest
        };
        assert_eq!(drained, pushed, "every accepted push pops exactly once");
    }

    #[test]
    fn bus_event_jsonl_round_trips() {
        let mut e = ev(42, 0xdead_beef);
        e.origin = BusOrigin::Service;
        e.kind = "shed".to_string();
        e.class = "interactive".to_string();
        e.label = "weird \"label\"\nnewline\\".to_string();
        e.latency_us = 1234;
        e.ok = false;
        let line = e.to_jsonl();
        crate::json::validate(&line).expect("bus jsonl is valid JSON");
        let back = BusEvent::from_jsonl(&line).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn from_jsonl_tolerates_unknown_keys_and_rejects_garbage() {
        let line = "{\"origin\":\"machine\",\"kind\":\"Fault\",\"trace\":\"ff\",\"future_key\":7}";
        let e = BusEvent::from_jsonl(line).unwrap();
        assert_eq!(e.trace_id, 0xff);
        assert_eq!(e.kind, "Fault");
        assert!(BusEvent::from_jsonl("not json").is_err());
        assert!(
            BusEvent::from_jsonl("{\"kind\":\"x\"}").is_err(),
            "origin required"
        );
        assert!(BusEvent::from_jsonl("{\"origin\":\"bogus\"}").is_err());
    }

    #[test]
    fn head_sampling_is_deterministic_consistent_and_rate_shaped() {
        let policy = SamplingPolicy::with_rate(0.2);
        // Sequential ids: the internal mix must make the decision
        // uniform anyway (service trace ids derive from job counters).
        let kept = (0..10_000u64).filter(|&id| policy.keep_job(id)).count();
        // Well-mixed ids should land near the configured rate.
        assert!((1_500..2_500).contains(&kept), "kept {kept} of 10000");
        // Same id, same answer (all producers agree).
        assert_eq!(policy.keep_job(77), policy.keep_job(77));
        // Critical events bypass the head decision entirely.
        assert!(SamplingPolicy::with_rate(0.0).keep(77, true));
        assert!(!SamplingPolicy::with_rate(0.0).keep(77, false));
        assert!(SamplingPolicy::keep_all().keep(77, false));
    }

    #[test]
    fn bus_counts_sampled_out_and_dropped() {
        let bus = EventBus::new(2, SamplingPolicy::with_rate(0.0));
        bus.publish(ev(0, 5), false);
        assert_eq!(bus.stats().sampled_out, 1);
        bus.publish(ev(0, 5), true); // critical bypasses sampling
        bus.publish(ev(0, 5), true);
        bus.publish(ev(0, 5), true); // ring (cap 2) now overflows
        let stats = bus.stats();
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.published, 3, "seq counts accepted publishes");
        assert_eq!(bus.drain().len(), 2);
    }

    #[test]
    fn machine_sink_streams_spans_with_trace_ids_mid_solve() {
        use hpf_machine::Machine;
        let bus = EventBus::new(256, SamplingPolicy::keep_all());
        let mut m = Machine::hypercube(4);
        m.set_tracing(false); // the bus needs no post-hoc trace
        m.set_event_sink(bus.machine_sink());
        {
            let _t = hpf_machine::span::enter("trace=00000000000000ff");
            let _s = hpf_machine::span::enter("solve");
            m.compute_uniform(100, "local");
            m.allreduce(1, "merge");
        }
        let events = bus.drain();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.trace_id == 0xff));
        assert!(events.iter().all(|e| e.origin == BusOrigin::Machine));
        assert_eq!(events[1].kind, "AllReduce");
        assert!(events[1].span.ends_with("/solve"));
    }

    #[test]
    fn service_sink_flattens_lifecycle_events() {
        use hpf_service::{QosClass, ServiceEvent};
        let bus = EventBus::new(16, SamplingPolicy::with_rate(0.0));
        let sink = bus.service_sink();
        // Sampled out: a completion under rate 0.
        sink.emit(&ServiceEvent::Completed {
            trace_id: 3,
            class: QosClass::Batch,
            latency_us: 900,
            ok: true,
            outcome: "ok",
        });
        // Critical: a shed always lands.
        sink.emit(&ServiceEvent::Shed {
            trace_id: 4,
            class: QosClass::Interactive,
            predicted_us: 100,
            budget_us: 10,
        });
        let events = bus.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "shed");
        assert_eq!(events[0].class, "interactive");
        assert_eq!(events[0].trace_id, 4);
    }
}
