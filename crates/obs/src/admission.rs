//! Audit trail for the service's deadline-aware admission controller.
//!
//! The controller (`hpf_service::AdmissionController`) sheds a request
//! when its predicted completion time exceeds the deadline budget. That
//! prediction can be wrong in two directions, and only one of them is
//! observable from inside the service:
//!
//! - **shed too little** — an admitted job misses its deadline anyway;
//!   the service already counts that (`deadline_exceeded`).
//! - **shed too much** — a refused job *would* have finished in time.
//!   Nobody runs the refused job, so the service cannot know. This
//!   module reconstructs it in hindsight: a shed was *feasible* if its
//!   budget was at least the p99 wall latency of comparable jobs that
//!   did complete. The chaos-soak gate (E27) holds the resulting
//!   [`AdmissionAudit::shed_when_feasible_rate`] under a bound, so the
//!   controller is penalised for being trigger-happy, not just for
//!   being permissive.
//!
//! The audit is fed from the *outside* of the service (the load
//! harness records every shed's `predicted`/`budget` pair and every
//! completion's wall latency), keeping the `hpf-service` → `hpf-obs`
//! dependency direction intact.

use hpf_service::QosClass;
use std::sync::Mutex;
use std::time::Duration;

/// One refused request: what the controller predicted, what the caller
/// was willing to wait.
#[derive(Debug, Clone, Copy)]
pub struct ShedSample {
    pub class: QosClass,
    pub predicted_us: u64,
    pub budget_us: u64,
}

#[derive(Default)]
struct Inner {
    sheds: Vec<ShedSample>,
    /// Completed-job wall latencies (µs), one bucket per QoS class.
    completed_us: [Vec<u64>; 3],
}

/// Thread-safe collector for shed decisions and completed-job
/// latencies; see the module docs for the hindsight-feasibility rule.
#[derive(Default)]
pub struct AdmissionAudit {
    inner: Mutex<Inner>,
}

impl AdmissionAudit {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a refusal (`ServiceError::Shed`) with the controller's
    /// stated prediction and the request's budget.
    pub fn record_shed(&self, class: QosClass, predicted: Duration, budget: Duration) {
        self.inner.lock().unwrap().sheds.push(ShedSample {
            class,
            predicted_us: predicted.as_micros() as u64,
            budget_us: budget.as_micros() as u64,
        });
    }

    /// Record the wall latency (submit → response) of a job that
    /// completed successfully.
    pub fn record_completed(&self, class: QosClass, wall: Duration) {
        self.inner.lock().unwrap().completed_us[class.index()].push(wall.as_micros() as u64);
    }

    /// Number of sheds recorded so far.
    pub fn sheds(&self) -> usize {
        self.inner.lock().unwrap().sheds.len()
    }

    /// Number of completed-latency samples recorded so far.
    pub fn completions(&self) -> usize {
        self.inner
            .lock()
            .unwrap()
            .completed_us
            .iter()
            .map(Vec::len)
            .sum()
    }

    /// The `q`-quantile (`0.0..=1.0`) of completed wall latencies for
    /// `class`, falling back to the pooled distribution when the class
    /// has no samples. `None` until any completion is recorded.
    pub fn completed_quantile_us(&self, class: QosClass, q: f64) -> Option<u64> {
        let inner = self.inner.lock().unwrap();
        let bucket = &inner.completed_us[class.index()];
        if !bucket.is_empty() {
            return Some(percentile_us(bucket, q));
        }
        let pooled: Vec<u64> = inner.completed_us.iter().flatten().copied().collect();
        if pooled.is_empty() {
            None
        } else {
            Some(percentile_us(&pooled, q))
        }
    }

    /// Fraction of sheds that were feasible in hindsight: the budget
    /// was at least the p99 completed wall latency of the shed's own
    /// class. `0.0` when nothing was shed, and also when nothing
    /// completed (no evidence that any budget was meetable).
    pub fn shed_when_feasible_rate(&self) -> f64 {
        let (sheds, p99s) = {
            let inner = self.inner.lock().unwrap();
            if inner.sheds.is_empty() {
                return 0.0;
            }
            let sheds = inner.sheds.clone();
            drop(inner);
            let p99s: [Option<u64>; 3] =
                std::array::from_fn(|i| self.completed_quantile_us(QosClass::ALL[i], 0.99));
            (sheds, p99s)
        };
        let feasible = sheds
            .iter()
            .filter(|s| matches!(p99s[s.class.index()], Some(p99) if s.budget_us >= p99))
            .count();
        feasible as f64 / sheds.len() as f64
    }

    /// One-object JSON summary for bench records and reports.
    pub fn to_json(&self) -> String {
        let rate = self.shed_when_feasible_rate();
        let inner = self.inner.lock().unwrap();
        let per_class: Vec<String> = QosClass::ALL
            .iter()
            .map(|&c| {
                let bucket = &inner.completed_us[c.index()];
                let (p50, p99) = if bucket.is_empty() {
                    ("null".to_string(), "null".to_string())
                } else {
                    (
                        percentile_us(bucket, 0.50).to_string(),
                        percentile_us(bucket, 0.99).to_string(),
                    )
                };
                format!(
                    "{{\"class\":\"{}\",\"completed\":{},\"p50_us\":{},\"p99_us\":{}}}",
                    c.name(),
                    bucket.len(),
                    p50,
                    p99
                )
            })
            .collect();
        format!(
            "{{\"sheds\":{},\"completions\":{},\"shed_when_feasible_rate\":{},\"classes\":[{}]}}",
            inner.sheds.len(),
            inner.completed_us.iter().map(Vec::len).sum::<usize>(),
            crate::json::json_f64(rate),
            per_class.join(",")
        )
    }
}

/// Nearest-rank percentile over raw microsecond samples; `q` clamped to
/// `0.0..=1.0`. Copies and sorts — audit-sized inputs, not hot-path.
pub fn percentile_us(samples: &[u64], q: f64) -> u64 {
    assert!(!samples.is_empty(), "percentile of empty sample set");
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&s, 0.50), 50);
        assert_eq!(percentile_us(&s, 0.99), 99);
        assert_eq!(percentile_us(&s, 1.0), 100);
        assert_eq!(percentile_us(&s, 0.0), 1);
        assert_eq!(percentile_us(&[7], 0.99), 7);
    }

    #[test]
    fn feasible_rate_flags_budgets_above_the_completed_p99() {
        let audit = AdmissionAudit::new();
        // 100 interactive completions at 1..=100 ms → p99 = 99 ms.
        for ms in 1..=100u64 {
            audit.record_completed(QosClass::Interactive, Duration::from_millis(ms));
        }
        // Budget below p99: genuinely infeasible, not counted.
        audit.record_shed(
            QosClass::Interactive,
            Duration::from_millis(500),
            Duration::from_millis(50),
        );
        assert_eq!(audit.shed_when_feasible_rate(), 0.0);
        // Budget above p99: shed a job that typically would have made it.
        audit.record_shed(
            QosClass::Interactive,
            Duration::from_millis(500),
            Duration::from_millis(200),
        );
        assert_eq!(audit.shed_when_feasible_rate(), 0.5);
    }

    #[test]
    fn class_without_samples_falls_back_to_the_pool() {
        let audit = AdmissionAudit::new();
        for ms in [10u64, 20, 30] {
            audit.record_completed(QosClass::Batch, Duration::from_millis(ms));
        }
        // No interactive completions: the pooled p99 (30 ms) judges it.
        audit.record_shed(
            QosClass::Interactive,
            Duration::from_millis(100),
            Duration::from_millis(40),
        );
        assert_eq!(audit.shed_when_feasible_rate(), 1.0);
        assert_eq!(
            audit.completed_quantile_us(QosClass::Interactive, 0.99),
            Some(30_000)
        );
    }

    #[test]
    fn no_completions_means_no_feasibility_evidence() {
        let audit = AdmissionAudit::new();
        audit.record_shed(
            QosClass::Interactive,
            Duration::from_millis(1),
            Duration::from_secs(10),
        );
        assert_eq!(audit.shed_when_feasible_rate(), 0.0);
        assert_eq!(audit.completed_quantile_us(QosClass::Batch, 0.5), None);
    }

    #[test]
    fn json_summary_is_well_formed() {
        let audit = AdmissionAudit::new();
        audit.record_completed(QosClass::Interactive, Duration::from_millis(12));
        audit.record_shed(
            QosClass::BestEffort,
            Duration::from_millis(90),
            Duration::from_millis(5),
        );
        let json = audit.to_json();
        crate::json::validate(&json).unwrap();
        assert!(json.contains("\"sheds\":1"), "{json}");
        assert!(json.contains("\"completions\":1"), "{json}");
        assert!(json.contains("\"class\":\"interactive\""), "{json}");
    }
}
