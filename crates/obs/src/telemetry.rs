//! Per-iteration solver telemetry: an [`IterObserver`] that keeps the
//! whole convergence history and round-trips it through CSV.

use hpf_solvers::{IterObserver, IterSample};

/// CSV header written by [`ConvergenceLog::to_csv`]; `from_csv` insists
/// on exactly this first line so format drift fails loudly.
pub const CSV_HEADER: &str =
    "iteration,residual_norm,alpha,beta,flops,comm_words,sim_time,predicted_time,rollbacks";

/// Records every [`IterSample`] a solver emits, plus rollback/restart
/// marks, and exports the lot as CSV (one row per sample).
///
/// Replayed iterations (after a rollback) appear as repeated iteration
/// numbers, in emission order — the log is a faithful journal, not a
/// deduplicated table.
#[derive(Debug, Default, Clone)]
pub struct ConvergenceLog {
    pub samples: Vec<IterSample>,
    pub rollbacks: Vec<(usize, String)>,
    pub restarts: Vec<usize>,
}

impl ConvergenceLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Residual norms in emission order.
    pub fn residuals(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.residual_norm).collect()
    }

    /// Render the sample journal as CSV (header + one row per sample).
    /// Floats use Rust's `Display`, which `from_csv` parses back
    /// exactly (including `NaN` for the iterations where a solver
    /// never computes β).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(CSV_HEADER);
        out.push('\n');
        for s in &self.samples {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{}\n",
                s.iteration,
                s.residual_norm,
                s.alpha,
                s.beta,
                s.flops,
                s.comm_words,
                s.sim_time,
                s.predicted_time,
                s.rollbacks
            ));
        }
        out
    }

    /// Parse a CSV journal produced by [`Self::to_csv`]. Rollback and
    /// restart marks are not part of the CSV and come back empty.
    pub fn from_csv(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(h) if h == CSV_HEADER => {}
            Some(h) => return Err(format!("unexpected header: {h:?}")),
            None => return Err("empty input".to_string()),
        }
        let mut log = ConvergenceLog::new();
        for (i, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let cols: Vec<&str> = line.split(',').collect();
            if cols.len() != 9 {
                return Err(format!(
                    "row {}: expected 9 columns, got {}",
                    i + 2,
                    cols.len()
                ));
            }
            let err = |what: &str| format!("row {}: bad {what}", i + 2);
            log.samples.push(IterSample {
                iteration: cols[0].parse().map_err(|_| err("iteration"))?,
                residual_norm: cols[1].parse().map_err(|_| err("residual_norm"))?,
                alpha: cols[2].parse().map_err(|_| err("alpha"))?,
                beta: cols[3].parse().map_err(|_| err("beta"))?,
                flops: cols[4].parse().map_err(|_| err("flops"))?,
                comm_words: cols[5].parse().map_err(|_| err("comm_words"))?,
                sim_time: cols[6].parse().map_err(|_| err("sim_time"))?,
                predicted_time: cols[7].parse().map_err(|_| err("predicted_time"))?,
                rollbacks: cols[8].parse().map_err(|_| err("rollbacks"))?,
            });
        }
        Ok(log)
    }
}

impl IterObserver for ConvergenceLog {
    fn on_iteration(&mut self, sample: &IterSample) {
        self.samples.push(*sample);
    }
    fn on_rollback(&mut self, iteration: usize, reason: &str) {
        self.rollbacks.push((iteration, reason.to_string()));
    }
    fn on_restart(&mut self, iteration: usize) {
        self.restarts.push(iteration);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: usize, rn: f64, beta: f64) -> IterSample {
        IterSample {
            iteration: i,
            residual_norm: rn,
            alpha: 0.25,
            beta,
            flops: 100 * i as u64,
            comm_words: 8 * i as u64,
            sim_time: 1e-6 * i as f64,
            predicted_time: 0.9e-6 * i as f64,
            rollbacks: 0,
        }
    }

    #[test]
    fn csv_round_trips_including_nan_beta() {
        let mut log = ConvergenceLog::new();
        log.on_iteration(&sample(1, 0.5, 0.9));
        log.on_iteration(&sample(2, 0.25, f64::NAN));
        let text = log.to_csv();
        let back = ConvergenceLog::from_csv(&text).unwrap();
        assert_eq!(back.samples.len(), 2);
        assert_eq!(back.samples[0].iteration, 1);
        assert_eq!(back.samples[0].beta, 0.9);
        assert!(back.samples[1].beta.is_nan());
        assert_eq!(back.samples[1].flops, 200);
        // Re-serialisation is byte-identical.
        assert_eq!(back.to_csv(), text);
    }

    #[test]
    fn from_csv_rejects_drifted_formats() {
        assert!(ConvergenceLog::from_csv("").is_err());
        assert!(ConvergenceLog::from_csv("iteration,residual\n").is_err());
        let short_row = format!("{CSV_HEADER}\n1,2,3\n");
        assert!(ConvergenceLog::from_csv(&short_row).is_err());
        let bad_num = format!("{CSV_HEADER}\n1,x,0,0,0,0,0,0,0\n");
        assert!(ConvergenceLog::from_csv(&bad_num).is_err());
        // The pre-oracle 8-column layout is rejected by the header.
        let old = "iteration,residual_norm,alpha,beta,flops,comm_words,sim_time,rollbacks\n";
        assert!(ConvergenceLog::from_csv(old).is_err());
    }

    #[test]
    fn observer_hooks_record_rollbacks_and_restarts() {
        let mut log = ConvergenceLog::new();
        log.on_rollback(3, "divergence");
        log.on_restart(4);
        assert_eq!(log.rollbacks, vec![(3, "divergence".to_string())]);
        assert_eq!(log.restarts, vec![4]);
    }
}
