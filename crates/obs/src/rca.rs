//! Flight recorder + automated root-cause attribution for bad solves.
//!
//! The live bus (`hpf-obs::bus`) *samples*: most jobs stream nothing, so
//! when a sampled-out job dies there is no evidence left to autopsy. The
//! [`FlightRecorder`] closes that gap by retaining three cheap, bounded
//! tails for **every** in-flight job regardless of sampling:
//!
//! - the machine-side black box ([`hpf_machine::BlackBox`]) — the last N
//!   simulated-machine events per trace, fault labels included;
//! - a service-event tail — admission verdict, rollbacks, retries,
//!   kills, in arrival order;
//! - the residual-series tail of the last solve attempt, flushed by the
//!   worker through [`hpf_service::SolverTapSink`].
//!
//! When a job terminates *badly* (supervisor kill, recovery exhaustion,
//! divergence, stagnation, numerical breakdown, deadline expiry of an
//! admitted job) — or when an SLO alert transitions to Firing — the
//! recorder correlates the three tails into a ranked [`RootCause`] list
//! with confidence scores and a human-readable narrative, and stores the
//! result as a [`Postmortem`] JSON document. Jobs that finish fine have
//! their tails discarded; nothing is written.
//!
//! Exactly-one-dump is a contract: the terminal `Completed` event is the
//! only per-job dump trigger, and a bounded dedupe set guards replays.

use crate::json::{escape, json_f64};
use crate::slo::{AlertState, AlertTransition};
use hpf_machine::{BlackBox, BlackBoxRecord, BlackBoxTail, EventSink};
use hpf_service::{ServiceEvent, ServiceEventSink, SolverTail, SolverTapSink};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex};

/// Schema marker stamped into every post-mortem document; the CLI
/// refuses to `--format postmortem|explain` anything without it.
pub const POSTMORTEM_SCHEMA: &str = "hpf-postmortem/1";

/// What the attribution engine concluded. `name()` strings are the
/// public vocabulary (metrics labels, JSON, E30 match criterion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// An injected/observed `fault:bitflip` machine event.
    FaultBitflip,
    /// An injected/observed `fault:drop` machine event.
    FaultDrop,
    /// An injected/observed `fault:crash` machine event.
    FaultCrash,
    /// An injected/observed `fault:stall` machine event.
    FaultStall,
    /// An injected/observed `fault:straggler` machine event.
    FaultStraggler,
    /// Straggling processor inferred from per-event imbalance, with no
    /// fault label in evidence.
    Straggler,
    /// Residual series went non-finite or grew without bound.
    Divergence,
    /// Residual series flatlined short of the stop criterion.
    Stagnation,
    /// Admission admitted (or priced) a job whose deadline then expired
    /// in queue — the cost oracle's promise was wrong in hindsight.
    AdmissionMispricing,
    /// Systemic pressure: refusals/expiries dominate the bad outcomes.
    Overload,
    /// Krylov breakdown, singular operator, or a corrupted recurrence.
    NumericalBreakdown,
    /// Nothing retained explains the outcome.
    Unknown,
}

impl Verdict {
    pub fn name(&self) -> &'static str {
        match self {
            Verdict::FaultBitflip => "fault-bitflip",
            Verdict::FaultDrop => "fault-drop",
            Verdict::FaultCrash => "fault-crash",
            Verdict::FaultStall => "fault-stall",
            Verdict::FaultStraggler => "fault-straggler",
            Verdict::Straggler => "straggler",
            Verdict::Divergence => "divergence",
            Verdict::Stagnation => "stagnation",
            Verdict::AdmissionMispricing => "admission-mispricing",
            Verdict::Overload => "overload",
            Verdict::NumericalBreakdown => "numerical-breakdown",
            Verdict::Unknown => "unknown",
        }
    }

    fn from_fault_kind(kind: &str) -> Verdict {
        match kind {
            "bitflip" => Verdict::FaultBitflip,
            "drop" => Verdict::FaultDrop,
            "crash" => Verdict::FaultCrash,
            "stall" => Verdict::FaultStall,
            "straggler" => Verdict::FaultStraggler,
            _ => Verdict::Unknown,
        }
    }
}

/// Which terminal condition opened the dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Supervisor declared the worker hung and killed it.
    WorkerKilled,
    /// Protected solver burned through its rollback budget.
    RecoveryExhausted,
    /// Solve failed with a non-finite residual.
    Divergence,
    /// Solve failed the stagnation check.
    Stagnation,
    /// An *admitted* (priced-as-feasible) job's deadline expired in
    /// queue — the shed the admission controller promised would not
    /// happen.
    DeadlineShed,
    /// Some other typed solve failure (breakdown, singular operator,
    /// worker panic).
    Failure,
    /// A burn-rate alert transitioned to Firing (class-level dump).
    SloFiring,
}

impl Trigger {
    pub fn name(&self) -> &'static str {
        match self {
            Trigger::WorkerKilled => "worker-killed",
            Trigger::RecoveryExhausted => "recovery-exhausted",
            Trigger::Divergence => "divergence",
            Trigger::Stagnation => "stagnation",
            Trigger::DeadlineShed => "deadline-shed",
            Trigger::Failure => "failure",
            Trigger::SloFiring => "slo-firing",
        }
    }

    /// Map a terminal `Completed` outcome tag to a dump trigger. `None`
    /// means the outcome is not a flight-recorder matter: success, or a
    /// refusal that is the service behaving correctly (`busy`,
    /// `circuit-open`, `shed`, `invalid-request`, `shutdown`).
    pub fn from_outcome(outcome: &str) -> Option<Trigger> {
        match outcome {
            "worker-killed" => Some(Trigger::WorkerKilled),
            "recovery-exhausted" => Some(Trigger::RecoveryExhausted),
            "non-finite" => Some(Trigger::Divergence),
            "stagnation" => Some(Trigger::Stagnation),
            "deadline" => Some(Trigger::DeadlineShed),
            "breakdown" | "singular" | "invalid-operator" | "worker-panic" => {
                Some(Trigger::Failure)
            }
            _ => None,
        }
    }
}

/// One ranked hypothesis about why the job ended badly.
#[derive(Debug, Clone)]
pub struct RootCause {
    pub verdict: Verdict,
    /// Heuristic confidence in `[0, 1]`; causes are ranked by it.
    pub confidence: f64,
    /// Human-readable evidence lines backing the verdict.
    pub evidence: Vec<String>,
}

/// One retained service lifecycle event (flattened for the dump).
#[derive(Debug, Clone)]
pub struct ServiceRec {
    pub kind: &'static str,
    pub detail: String,
}

/// A complete post-mortem document for one bad outcome.
#[derive(Debug, Clone)]
pub struct Postmortem {
    /// Document key: the 16-hex-digit trace id, or `slo-<class>-<n>`
    /// for class-level alert dumps.
    pub key: String,
    pub trace_id: u64,
    pub trigger: Trigger,
    pub class: String,
    /// Terminal outcome tag ([`hpf_service::ServiceError::outcome`]).
    pub outcome: String,
    pub latency_us: u64,
    /// Monotone dump sequence number within this recorder.
    pub seq: u64,
    /// Ranked causes, most confident first. Never empty.
    pub causes: Vec<RootCause>,
    pub narrative: String,
    pub machine_tail: Vec<BlackBoxRecord>,
    pub machine_overwritten: u64,
    pub service_tail: Vec<ServiceRec>,
    pub residual_tail: Option<SolverTail>,
}

impl Postmortem {
    /// The highest-confidence verdict (the metrics label).
    pub fn top_verdict(&self) -> Verdict {
        self.causes
            .first()
            .map(|c| c.verdict)
            .unwrap_or(Verdict::Unknown)
    }

    /// Render the full document as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "{{\"schema\":\"{}\",\"trace\":\"{}\",\"trigger\":\"{}\",\"class\":\"{}\",\
             \"outcome\":\"{}\",\"latency_us\":{},\"seq\":{}",
            POSTMORTEM_SCHEMA,
            escape(&self.key),
            self.trigger.name(),
            escape(&self.class),
            escape(&self.outcome),
            self.latency_us,
            self.seq
        ));
        let top = self.causes.first();
        out.push_str(&format!(
            ",\"top_verdict\":\"{}\",\"top_confidence\":{}",
            top.map(|c| c.verdict.name()).unwrap_or("unknown"),
            json_f64(top.map(|c| c.confidence).unwrap_or(0.0))
        ));
        out.push_str(&format!(
            ",\"machine_events\":{},\"machine_overwritten\":{},\"service_events\":{},\
             \"residual_samples\":{}",
            self.machine_tail.len(),
            self.machine_overwritten,
            self.service_tail.len(),
            self.residual_tail.as_ref().map_or(0, |t| t.samples.len())
        ));
        out.push_str(",\"causes\":[");
        for (i, c) in self.causes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"verdict\":\"{}\",\"confidence\":{},\"evidence\":[",
                c.verdict.name(),
                json_f64(c.confidence)
            ));
            for (j, e) in c.evidence.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\"", escape(e)));
            }
            out.push_str("]}");
        }
        out.push(']');
        out.push_str(&format!(",\"narrative\":\"{}\"", escape(&self.narrative)));
        out.push_str(",\"machine_tail\":[");
        for (i, r) in self.machine_tail.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"kind\":\"{:?}\",\"span\":\"{}\",\"label\":\"{}\",\"participants\":{},\
                 \"words\":{},\"flops\":{},\"start_s\":{},\"time_s\":{},\"imbalance\":{}",
                r.kind,
                escape(&r.span),
                escape(&r.label),
                r.participants,
                r.words,
                r.flops,
                json_f64(r.start),
                json_f64(r.time),
                json_f64(r.imbalance)
            ));
            if let Some(p) = r.slowest_proc {
                out.push_str(&format!(",\"slowest_proc\":{p}"));
            }
            out.push('}');
        }
        out.push(']');
        out.push_str(",\"service_tail\":[");
        for (i, r) in self.service_tail.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"kind\":\"{}\",\"detail\":\"{}\"}}",
                r.kind,
                escape(&r.detail)
            ));
        }
        out.push(']');
        match &self.residual_tail {
            None => out.push_str(",\"residual_tail\":null"),
            Some(t) => {
                out.push_str(&format!(
                    ",\"residual_tail\":{{\"solver\":\"{}\",\"attempt\":{},\"overwritten\":{},\
                     \"rollbacks\":[",
                    escape(t.solver),
                    t.attempt,
                    t.overwritten
                ));
                for (i, (iter, reason)) in t.rollbacks.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"iteration\":{},\"reason\":\"{}\"}}",
                        iter,
                        escape(reason)
                    ));
                }
                out.push_str("],\"restarts\":[");
                for (i, r) in t.restarts.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&r.to_string());
                }
                out.push_str("],\"samples\":[");
                for (i, s) in t.samples.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"iteration\":{},\"residual\":{},\"sim_time_s\":{}}}",
                        s.iteration,
                        json_f64(s.residual_norm),
                        json_f64(s.sim_time)
                    ));
                }
                out.push_str("]}");
            }
        }
        out.push('}');
        out
    }
}

/// The cheap, parse-once view of a post-mortem document that
/// `trace-report` renders (`--format postmortem|explain`).
#[derive(Debug, Clone, PartialEq)]
pub struct PostmortemSummary {
    pub trace: String,
    pub trigger: String,
    pub class: String,
    pub outcome: String,
    pub top_verdict: String,
    pub top_confidence: f64,
    pub narrative: String,
    pub machine_events: u64,
    pub machine_overwritten: u64,
    pub service_events: u64,
    pub residual_samples: u64,
    /// Every `(verdict, confidence)` pair in rank order.
    pub causes: Vec<(String, f64)>,
}

/// Parse the summary fields back out of a [`Postmortem::to_json`]
/// document. Refuses (typed error) anything without the
/// [`POSTMORTEM_SCHEMA`] marker — this is the CLI's guard against being
/// pointed at an event log or metrics snapshot.
pub fn summary_from_json(text: &str) -> Result<PostmortemSummary, String> {
    crate::json::validate(text).map_err(|e| format!("not valid JSON: {e}"))?;
    if scalar(text, "schema").as_deref() != Some(&format!("\"{POSTMORTEM_SCHEMA}\"")) {
        return Err(format!(
            "not a post-mortem document (missing \"schema\":\"{POSTMORTEM_SCHEMA}\" marker)"
        ));
    }
    let s = |key: &str| -> Result<String, String> {
        scalar(text, key).ok_or_else(|| format!("missing field {key:?}"))
    };
    let quoted = |key: &str| -> Result<String, String> {
        let raw = s(key)?;
        raw.strip_prefix('"')
            .and_then(|t| t.strip_suffix('"'))
            .map(unescape)
            .ok_or_else(|| format!("field {key:?} is not a string"))
    };
    let num = |key: &str| -> Result<u64, String> {
        s(key)?
            .parse()
            .map_err(|_| format!("bad integer for {key:?}"))
    };
    // Verdict/confidence pairs appear (in rank order) only inside the
    // causes array; evidence strings never contain a `"verdict"` key.
    let mut causes = Vec::new();
    let mut rest = text;
    while let Some(at) = rest.find("\"verdict\":\"") {
        rest = &rest[at + "\"verdict\":\"".len()..];
        let end = rest.find('"').ok_or("unterminated verdict")?;
        let verdict = rest[..end].to_string();
        let conf_at = rest
            .find("\"confidence\":")
            .ok_or("verdict without confidence")?;
        let conf_raw: String = rest[conf_at + "\"confidence\":".len()..]
            .chars()
            .take_while(|c| !matches!(c, ',' | '}' | ']'))
            .collect();
        let confidence = conf_raw
            .trim()
            .parse()
            .map_err(|_| format!("bad confidence {conf_raw:?}"))?;
        causes.push((verdict, confidence));
    }
    Ok(PostmortemSummary {
        trace: quoted("trace")?,
        trigger: quoted("trigger")?,
        class: quoted("class")?,
        outcome: quoted("outcome")?,
        top_verdict: quoted("top_verdict")?,
        top_confidence: s("top_confidence")?
            .parse()
            .map_err(|_| "bad top_confidence".to_string())?,
        narrative: quoted("narrative")?,
        machine_events: num("machine_events")?,
        machine_overwritten: num("machine_overwritten")?,
        service_events: num("service_events")?,
        residual_samples: num("residual_samples")?,
        causes,
    })
}

/// Raw token following the first `"key":` occurrence (quoted string with
/// escapes intact, or a bare number token).
fn scalar(text: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)?;
    let rest = &text[at + needle.len()..];
    if let Some(stripped) = rest.strip_prefix('"') {
        let mut out = String::from("\"");
        let mut escaped = false;
        for c in stripped.chars() {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                return Some(out);
            }
        }
        None
    } else {
        Some(
            rest.chars()
                .take_while(|c| !matches!(c, ',' | '}' | ']'))
                .collect::<String>()
                .trim()
                .to_string(),
        )
    }
}

/// Undo [`crate::json::escape`].
fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(other) => out.push(other), // \" \\ \/
            None => {}
        }
    }
    out
}

/// Flight-recorder sizing knobs.
#[derive(Debug, Clone)]
pub struct FlightRecorderConfig {
    /// Machine events retained per trace by the black box.
    pub ring_capacity: usize,
    /// Service lifecycle events retained per trace.
    pub service_tail_capacity: usize,
    /// Post-mortem documents kept before the oldest is dropped.
    pub max_postmortems: usize,
}

impl Default for FlightRecorderConfig {
    fn default() -> Self {
        FlightRecorderConfig {
            ring_capacity: hpf_machine::blackbox::DEFAULT_RING_CAPACITY,
            service_tail_capacity: 32,
            max_postmortems: 64,
        }
    }
}

/// Terminal outcomes remembered per class for class-level (SLO-firing)
/// attribution.
const RECENT_OUTCOMES: usize = 512;

/// Trace ids remembered by the exactly-one-dump dedupe guard.
const DEDUPE_CAPACITY: usize = 8192;

#[derive(Default)]
struct Inner {
    service_tails: HashMap<u64, VecDeque<ServiceRec>>,
    solver_tails: HashMap<u64, SolverTail>,
    /// Last admission prediction per trace (mispricing evidence).
    predicted_us: HashMap<u64, u64>,
    dumped: HashSet<u64>,
    dumped_order: VecDeque<u64>,
    postmortems: VecDeque<Arc<Postmortem>>,
    recent_outcomes: VecDeque<(&'static str, &'static str)>,
    seq: u64,
    slo_dumps: u64,
}

type DumpCallback = Arc<dyn Fn(&Postmortem) + Send + Sync>;

/// The per-job flight recorder and post-mortem store. Construct once,
/// wire into a [`hpf_service::ServiceConfig`] via [`Self::install`] (or
/// the individual `*_sink` methods), and read dumps back through
/// [`Self::postmortems`] / [`Self::index_json`].
pub struct FlightRecorder {
    blackbox: Arc<BlackBox>,
    config: FlightRecorderConfig,
    inner: Mutex<Inner>,
    on_dump: Mutex<Option<DumpCallback>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl FlightRecorder {
    pub fn new(config: FlightRecorderConfig) -> Arc<Self> {
        Arc::new(FlightRecorder {
            blackbox: Arc::new(BlackBox::new(config.ring_capacity)),
            config,
            inner: Mutex::new(Inner::default()),
            on_dump: Mutex::new(None),
        })
    }

    /// The shared black box (overhead audits read its counters).
    pub fn blackbox(&self) -> &Arc<BlackBox> {
        &self.blackbox
    }

    /// Callback fired (outside the recorder lock) with every finished
    /// dump — the hook that bumps
    /// `hpf_service_postmortems_total{verdict=...}` and publishes the
    /// document to `/postmortems/<trace>`.
    pub fn set_on_dump(&self, f: impl Fn(&Postmortem) + Send + Sync + 'static) {
        *self.on_dump.lock().unwrap() = Some(Arc::new(f));
    }

    /// Machine-side tap: the black box as an [`EventSink`]. Fan this out
    /// with the live bus's sink ([`EventSink::fanout`]) when both run.
    pub fn machine_sink(self: &Arc<Self>) -> EventSink {
        self.blackbox.sink()
    }

    /// Service-side tap. Records the per-trace lifecycle tail, decides
    /// dumps on terminal events, then forwards to `forward` (the live
    /// bus adapter) if given.
    pub fn service_sink(self: &Arc<Self>, forward: Option<ServiceEventSink>) -> ServiceEventSink {
        let fr = Arc::clone(self);
        ServiceEventSink::new(move |e| {
            fr.observe(e);
            if let Some(f) = &forward {
                f.emit(e);
            }
        })
    }

    /// Worker tap receiving the bounded residual tail of each finished
    /// solve attempt; the last flush per trace is kept as evidence.
    pub fn solver_tap(self: &Arc<Self>) -> SolverTapSink {
        let fr = Arc::clone(self);
        SolverTapSink::new(move |tail| {
            if tail.trace_id == 0 {
                return;
            }
            let mut inner = fr.inner.lock().unwrap();
            inner.solver_tails.insert(tail.trace_id, tail.clone());
        })
    }

    /// Wire every tap into `cfg`, fanning out with any sinks already
    /// installed (the live bus keeps streaming; the recorder rides the
    /// same chokepoints).
    pub fn install(self: &Arc<Self>, cfg: &mut hpf_service::ServiceConfig) {
        cfg.machine_sink = Some(match cfg.machine_sink.take() {
            Some(existing) => EventSink::fanout(vec![existing, self.machine_sink()]),
            None => self.machine_sink(),
        });
        cfg.event_sink = Some(self.service_sink(cfg.event_sink.take()));
        cfg.solver_tap = Some(self.solver_tap());
    }

    /// Feed one SLO alert transition; a transition *to* Firing produces
    /// a class-level post-mortem keyed `slo-<class>-<n>`.
    pub fn on_transition(&self, t: &AlertTransition) {
        if t.to != AlertState::Firing {
            return;
        }
        let pm = {
            let mut inner = self.inner.lock().unwrap();
            inner.seq += 1;
            inner.slo_dumps += 1;
            let (seq, nth) = (inner.seq, inner.slo_dumps);
            let class = t.class.name();
            let bad: Vec<&'static str> = inner
                .recent_outcomes
                .iter()
                .filter(|(c, o)| *c == class && *o != "ok")
                .map(|(_, o)| *o)
                .collect();
            let mut counts: HashMap<&'static str, usize> = HashMap::new();
            for o in &bad {
                *counts.entry(o).or_default() += 1;
            }
            let dominant = counts
                .iter()
                .max_by_key(|(_, n)| **n)
                .map(|(o, n)| (*o, *n));
            let verdict = match dominant.map(|(o, _)| o) {
                Some("shed") | Some("busy") | Some("deadline") | Some("circuit-open") => {
                    Verdict::Overload
                }
                Some("recovery-exhausted")
                | Some("non-finite")
                | Some("breakdown")
                | Some("singular")
                | Some("stagnation") => Verdict::NumericalBreakdown,
                Some(_) => Verdict::Overload,
                None => Verdict::Unknown,
            };
            let mut evidence = vec![format!(
                "burn rates at transition: slow {:.2}x, fast {:.2}x over threshold",
                t.slow_burn, t.fast_burn
            )];
            if let Some((o, n)) = dominant {
                evidence.push(format!(
                    "dominant bad outcome for class {class}: \"{o}\" ({n} of {} recent bad \
                     terminals)",
                    bad.len()
                ));
            } else {
                evidence.push(format!(
                    "no recent bad terminal outcomes retained for {class}"
                ));
            }
            let causes = vec![RootCause {
                verdict,
                confidence: if dominant.is_some() { 0.7 } else { 0.3 },
                evidence,
            }];
            let mut pm = Postmortem {
                key: format!("slo-{class}-{nth}"),
                trace_id: 0,
                trigger: Trigger::SloFiring,
                class: class.to_string(),
                outcome: "slo-firing".to_string(),
                latency_us: 0,
                seq,
                causes,
                narrative: String::new(),
                machine_tail: Vec::new(),
                machine_overwritten: 0,
                service_tail: Vec::new(),
                residual_tail: None,
            };
            pm.narrative = narrative(&pm);
            let pm = Arc::new(pm);
            inner.postmortems.push_back(Arc::clone(&pm));
            while inner.postmortems.len() > self.config.max_postmortems {
                inner.postmortems.pop_front();
            }
            pm
        };
        self.fire_on_dump(&pm);
    }

    /// Dumps written since creation (per-job and SLO together).
    pub fn dumps(&self) -> u64 {
        self.inner.lock().unwrap().seq
    }

    /// Retained post-mortems, oldest first.
    pub fn postmortems(&self) -> Vec<Arc<Postmortem>> {
        self.inner
            .lock()
            .unwrap()
            .postmortems
            .iter()
            .cloned()
            .collect()
    }

    /// Look a document up by its key (`<16-hex trace>` or `slo-...`).
    pub fn get(&self, key: &str) -> Option<Arc<Postmortem>> {
        self.inner
            .lock()
            .unwrap()
            .postmortems
            .iter()
            .find(|p| p.key == key)
            .cloned()
    }

    /// The `/postmortems` index document.
    pub fn index_json(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::from("{\"postmortems\":[");
        for (i, p) in inner.postmortems.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"trace\":\"{}\",\"trigger\":\"{}\",\"class\":\"{}\",\"outcome\":\"{}\",\
                 \"verdict\":\"{}\",\"confidence\":{}}}",
                escape(&p.key),
                p.trigger.name(),
                escape(&p.class),
                escape(&p.outcome),
                p.top_verdict().name(),
                json_f64(p.causes.first().map(|c| c.confidence).unwrap_or(0.0))
            ));
        }
        out.push_str("]}");
        out
    }

    fn fire_on_dump(&self, pm: &Postmortem) {
        let cb = self.on_dump.lock().unwrap().clone();
        if let Some(cb) = cb {
            cb(pm);
        }
    }

    fn observe(self: &Arc<Self>, e: &ServiceEvent) {
        let trace_id = e.trace_id();
        if trace_id == 0 {
            return; // worker-slot respawns are not tied to one request
        }
        let rec = service_rec(e);
        let mut inner = self.inner.lock().unwrap();
        let tail = inner.service_tails.entry(trace_id).or_default();
        if tail.len() >= self.config.service_tail_capacity {
            tail.pop_front();
        }
        tail.push_back(rec);
        if let ServiceEvent::Admitted { predicted_us, .. } = *e {
            inner.predicted_us.insert(trace_id, predicted_us);
        }
        let ServiceEvent::Completed {
            class,
            latency_us,
            outcome,
            ..
        } = *e
        else {
            return;
        };
        inner.recent_outcomes.push_back((class.name(), outcome));
        while inner.recent_outcomes.len() > RECENT_OUTCOMES {
            inner.recent_outcomes.pop_front();
        }
        let Some(trigger) = Trigger::from_outcome(outcome) else {
            // Clean completion or a correct refusal: release every tail.
            inner.service_tails.remove(&trace_id);
            inner.solver_tails.remove(&trace_id);
            inner.predicted_us.remove(&trace_id);
            drop(inner);
            self.blackbox.discard(trace_id);
            return;
        };
        if inner.dumped.contains(&trace_id) {
            return; // exactly-one-dump guard
        }
        inner.dumped.insert(trace_id);
        inner.dumped_order.push_back(trace_id);
        while inner.dumped_order.len() > DEDUPE_CAPACITY {
            if let Some(old) = inner.dumped_order.pop_front() {
                inner.dumped.remove(&old);
            }
        }
        let service_tail: Vec<ServiceRec> = inner
            .service_tails
            .remove(&trace_id)
            .map(|t| t.into_iter().collect())
            .unwrap_or_default();
        let residual_tail = inner.solver_tails.remove(&trace_id);
        let predicted = inner.predicted_us.remove(&trace_id);
        inner.seq += 1;
        let seq = inner.seq;
        drop(inner);
        // Machine events for this job were emitted synchronously on the
        // worker thread that is now delivering Completed, so the ring is
        // final: take it (removing) and attribute.
        let machine = self.blackbox.take(trace_id).unwrap_or(BlackBoxTail {
            trace_id,
            ..BlackBoxTail::default()
        });
        let causes = attribute(
            trigger,
            outcome,
            latency_us,
            predicted,
            &machine,
            &service_tail,
            residual_tail.as_ref(),
        );
        let mut pm = Postmortem {
            key: format!("{trace_id:016x}"),
            trace_id,
            trigger,
            class: class.name().to_string(),
            outcome: outcome.to_string(),
            latency_us,
            seq,
            causes,
            narrative: String::new(),
            machine_tail: machine.events,
            machine_overwritten: machine.overwritten,
            service_tail,
            residual_tail,
        };
        pm.narrative = narrative(&pm);
        let pm = Arc::new(pm);
        {
            let mut inner = self.inner.lock().unwrap();
            inner.postmortems.push_back(Arc::clone(&pm));
            while inner.postmortems.len() > self.config.max_postmortems {
                inner.postmortems.pop_front();
            }
        }
        self.fire_on_dump(&pm);
    }
}

fn service_rec(e: &ServiceEvent) -> ServiceRec {
    let detail = match *e {
        ServiceEvent::Admitted { predicted_us, .. } => format!("predicted_us={predicted_us}"),
        ServiceEvent::Shed {
            predicted_us,
            budget_us,
            ..
        } => format!("predicted_us={predicted_us} budget_us={budget_us}"),
        ServiceEvent::DeadlineExpired { .. } => String::new(),
        ServiceEvent::WorkerKilled { after_us, .. } => format!("after_us={after_us}"),
        ServiceEvent::WorkerRestarted { worker } => format!("worker={worker}"),
        ServiceEvent::Rollback { .. } => String::new(),
        ServiceEvent::Retry { attempt, .. } => format!("attempt={attempt}"),
        ServiceEvent::Completed {
            latency_us,
            outcome,
            ..
        } => format!("latency_us={latency_us} outcome={outcome}"),
    };
    ServiceRec {
        kind: e.kind(),
        detail,
    }
}

/// Relative residual drop below which the tail counts as flat.
const STAGNATION_IMPROVEMENT: f64 = 0.05;
/// Per-event imbalance above which a straggler is inferred.
const STRAGGLER_IMBALANCE: f64 = 2.0;
/// Consecutive-sample residual jump treated as a corruption signature.
const JUMP_FACTOR: f64 = 1e3;

/// Correlate the retained tails into ranked causes. Pure function —
/// unit-testable without a recorder.
fn attribute(
    trigger: Trigger,
    outcome: &str,
    latency_us: u64,
    predicted_us: Option<u64>,
    machine: &BlackBoxTail,
    service: &[ServiceRec],
    solver: Option<&SolverTail>,
) -> Vec<RootCause> {
    let mut causes: Vec<RootCause> = Vec::new();
    let rollbacks = solver.map_or(0, |t| t.rollbacks.len())
        + service.iter().filter(|r| r.kind == "rollback").count();
    let retries = service.iter().filter(|r| r.kind == "retry").count();

    // 1. Direct evidence: fault-labelled machine events.
    let mut fault_kinds: Vec<(&str, usize, &BlackBoxRecord)> = Vec::new();
    for rec in &machine.events {
        let Some(rest) = rec.label.strip_prefix("fault:") else {
            continue;
        };
        let kind = rest.split(':').next().unwrap_or("");
        match fault_kinds.iter_mut().find(|(k, ..)| *k == kind) {
            Some((_, n, _)) => *n += 1,
            None => fault_kinds.push((kind, 1, rec)),
        }
    }
    for (kind, count, first) in &fault_kinds {
        let corroboration = (rollbacks + retries).min(3) as f64;
        let mut evidence = vec![format!(
            "{count} fault-labelled machine event(s) of kind \"{kind}\"; first: \"{}\" in span \
             \"{}\"",
            first.label, first.span
        )];
        if rollbacks + retries > 0 {
            evidence.push(format!(
                "corroborated by {rollbacks} rollback(s) and {retries} retry attempt(s)"
            ));
        }
        causes.push(RootCause {
            verdict: Verdict::from_fault_kind(kind),
            confidence: (0.9 + 0.03 * corroboration).min(0.98),
            evidence,
        });
    }

    // 2. Inferred straggler: heavy per-event imbalance without a label.
    if !fault_kinds.iter().any(|(k, ..)| *k == "straggler") {
        if let Some(worst) = machine
            .events
            .iter()
            .filter(|r| r.imbalance > STRAGGLER_IMBALANCE)
            .max_by(|a, b| a.imbalance.total_cmp(&b.imbalance))
        {
            causes.push(RootCause {
                verdict: Verdict::Straggler,
                confidence: (0.5 + 0.1 * worst.imbalance).min(0.85),
                evidence: vec![format!(
                    "event \"{}\" in span \"{}\" ran {:.1}x slower on proc {} than the mean",
                    worst.label,
                    worst.span,
                    worst.imbalance,
                    worst
                        .slowest_proc
                        .map(|p| p.to_string())
                        .unwrap_or_else(|| "?".to_string())
                )],
            });
        }
    }

    // 3. Residual-series anomalies from the last attempt's tail.
    if let Some(tail) = solver {
        let samples = &tail.samples;
        let last = samples.last();
        let non_finite = last.is_some_and(|s| !s.residual_norm.is_finite());
        let jump = samples.windows(2).find(|w| {
            w[0].residual_norm.is_finite()
                && w[0].residual_norm > 0.0
                && (!w[1].residual_norm.is_finite()
                    || w[1].residual_norm / w[0].residual_norm > JUMP_FACTOR)
        });
        if let Some(w) = jump {
            let line = format!(
                "residual jumped {} -> {} at iteration {} (attempt {}, {})",
                fmt_res(w[0].residual_norm),
                fmt_res(w[1].residual_norm),
                w[1].iteration,
                tail.attempt,
                tail.solver
            );
            match causes
                .iter_mut()
                .max_by(|a, b| a.confidence.total_cmp(&b.confidence))
            {
                // A transient fault already in evidence: the jump
                // corroborates it rather than competing with it.
                Some(top) if top.confidence >= 0.5 => {
                    top.evidence.push(line);
                    top.confidence = (top.confidence + 0.02).min(0.99);
                }
                _ => causes.push(RootCause {
                    verdict: Verdict::NumericalBreakdown,
                    confidence: 0.6,
                    evidence: vec![line],
                }),
            }
        }
        if non_finite {
            causes.push(RootCause {
                verdict: Verdict::Divergence,
                confidence: 0.85,
                evidence: vec![format!(
                    "residual non-finite at iteration {} (attempt {}, {})",
                    last.map(|s| s.iteration).unwrap_or(0),
                    tail.attempt,
                    tail.solver
                )],
            });
        } else if samples.len() >= 8
            && matches!(trigger, Trigger::Stagnation | Trigger::RecoveryExhausted)
        {
            let window = &samples[samples.len() - 8..];
            let first = window[0].residual_norm;
            let lastr = window[7].residual_norm;
            if first.is_finite() && first > 0.0 && (first - lastr) / first < STAGNATION_IMPROVEMENT
            {
                causes.push(RootCause {
                    verdict: Verdict::Stagnation,
                    confidence: 0.8,
                    evidence: vec![format!(
                        "residual flat over last 8 iterations ({} -> {}), stop criterion unmet",
                        fmt_res(first),
                        fmt_res(lastr)
                    )],
                });
            }
        }
        for (iter, reason) in &tail.rollbacks {
            if let Some(top) = causes.first_mut() {
                top.evidence.push(format!(
                    "protected solver rolled back at iteration {iter} ({reason})"
                ));
            }
        }
    }

    // 4. Trigger-specific service-plane verdicts.
    match trigger {
        Trigger::DeadlineShed => {
            let mut evidence = vec![format!(
                "admitted job's deadline expired in queue after {latency_us} us"
            )];
            if let Some(p) = predicted_us {
                evidence.push(format!(
                    "admission predicted {p} us at the door; actual wait was {latency_us} us \
                     ({}x)",
                    if p > 0 { latency_us / p.max(1) } else { 0 }
                ));
            }
            causes.push(RootCause {
                verdict: Verdict::AdmissionMispricing,
                confidence: 0.8,
                evidence,
            });
            causes.push(RootCause {
                verdict: Verdict::Overload,
                confidence: 0.6,
                evidence: vec![
                    "queue wait, not solve time, consumed the deadline budget".to_string()
                ],
            });
        }
        Trigger::Failure => {
            causes.push(RootCause {
                verdict: Verdict::NumericalBreakdown,
                confidence: 0.75,
                evidence: vec![format!("solver reported terminal outcome \"{outcome}\"")],
            });
        }
        Trigger::WorkerKilled if causes.is_empty() => {
            causes.push(RootCause {
                verdict: Verdict::Unknown,
                confidence: 0.4,
                evidence: vec![format!(
                    "worker killed after {latency_us} us with no fault event retained"
                )],
            });
        }
        _ => {}
    }

    if causes.is_empty() {
        causes.push(RootCause {
            verdict: Verdict::Unknown,
            confidence: 0.25,
            evidence: vec!["no machine, service, or residual evidence retained".to_string()],
        });
    }
    causes.sort_by(|a, b| b.confidence.total_cmp(&a.confidence));
    causes.dedup_by(|b, a| {
        if a.verdict == b.verdict {
            let ev = std::mem::take(&mut b.evidence);
            a.evidence.extend(ev);
            true
        } else {
            false
        }
    });
    causes
}

fn fmt_res(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3e}")
    } else {
        format!("{v}")
    }
}

/// Build the human-readable narrative from a finished attribution.
fn narrative(pm: &Postmortem) -> String {
    let mut out = String::new();
    if pm.trigger == Trigger::SloFiring {
        out.push_str(&format!(
            "SLO alert for class {} transitioned to Firing (dump {}).",
            pm.class, pm.key
        ));
    } else {
        out.push_str(&format!(
            "Job {} ({}) terminated with outcome \"{}\" after {} us (trigger: {}).",
            pm.key,
            pm.class,
            pm.outcome,
            pm.latency_us,
            pm.trigger.name()
        ));
        out.push_str(&format!(
            " Black box retained {} machine event(s) ({} overwritten), {} service event(s), {} \
             residual sample(s).",
            pm.machine_tail.len(),
            pm.machine_overwritten,
            pm.service_tail.len(),
            pm.residual_tail.as_ref().map_or(0, |t| t.samples.len())
        ));
    }
    if let Some(top) = pm.causes.first() {
        out.push_str(&format!(
            " Top cause: {} (confidence {:.2})",
            top.verdict.name(),
            top.confidence
        ));
        if let Some(first) = top.evidence.first() {
            out.push_str(&format!(" — {first}"));
        }
        out.push('.');
    }
    if pm.causes.len() > 1 {
        let also: Vec<String> = pm.causes[1..]
            .iter()
            .map(|c| format!("{} ({:.2})", c.verdict.name(), c.confidence))
            .collect();
        out.push_str(&format!(" Also considered: {}.", also.join(", ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_machine::{Event, EventKind};
    use hpf_service::QosClass;
    use hpf_solvers::IterSample;

    fn machine_event(trace_id: u64, label: &str, proc_times: Vec<f64>) -> Event {
        Event {
            kind: EventKind::AllReduce,
            participants: 4,
            words: 8,
            flops: 16,
            time: 1e-4,
            start: 0.5,
            span: format!("trace={trace_id:016x}/solve/iter=3/dot"),
            label: label.to_string(),
            proc_times,
            payload_words: 8,
            hops: 0,
        }
    }

    fn sample(iteration: usize, residual: f64) -> IterSample {
        IterSample {
            iteration,
            residual_norm: residual,
            alpha: 1.0,
            beta: 0.5,
            flops: 100,
            comm_words: 10,
            sim_time: iteration as f64 * 1e-3,
            predicted_time: 0.0,
            rollbacks: 0,
        }
    }

    fn completed(trace_id: u64, ok: bool, outcome: &'static str) -> ServiceEvent {
        ServiceEvent::Completed {
            trace_id,
            class: QosClass::Interactive,
            latency_us: 1234,
            ok,
            outcome,
        }
    }

    #[test]
    fn injected_stall_dominates_attribution_and_doc_is_valid_json() {
        let fr = FlightRecorder::new(FlightRecorderConfig::default());
        let msink = fr.machine_sink();
        let ssink = fr.service_sink(None);
        msink.emit(&machine_event(0xab, "dot-merge", Vec::new()));
        msink.emit(&machine_event(
            0xab,
            "fault:stall:p2:op17:ms400",
            Vec::new(),
        ));
        ssink.emit(&ServiceEvent::Admitted {
            trace_id: 0xab,
            class: QosClass::Interactive,
            predicted_us: 120,
        });
        ssink.emit(&ServiceEvent::WorkerKilled {
            trace_id: 0xab,
            class: QosClass::Interactive,
            after_us: 900,
        });
        ssink.emit(&completed(0xab, false, "worker-killed"));
        let pms = fr.postmortems();
        assert_eq!(pms.len(), 1);
        let pm = &pms[0];
        assert_eq!(pm.key, format!("{:016x}", 0xab));
        assert_eq!(pm.trigger, Trigger::WorkerKilled);
        assert_eq!(pm.top_verdict(), Verdict::FaultStall);
        assert!(pm.causes[0].confidence >= 0.9);
        assert_eq!(pm.machine_tail.len(), 2);
        assert!(pm.narrative.contains("fault-stall"));
        let doc = pm.to_json();
        crate::json::validate(&doc).expect("postmortem json");
        let summary = summary_from_json(&doc).expect("summary");
        assert_eq!(summary.top_verdict, "fault-stall");
        assert_eq!(summary.trigger, "worker-killed");
        assert_eq!(summary.machine_events, 2);
        assert_eq!(summary.causes[0].0, "fault-stall");
        assert_eq!(summary.narrative, pm.narrative);
    }

    #[test]
    fn clean_completion_discards_every_tail_and_writes_nothing() {
        let fr = FlightRecorder::new(FlightRecorderConfig::default());
        let msink = fr.machine_sink();
        let ssink = fr.service_sink(None);
        msink.emit(&machine_event(7, "dot-merge", Vec::new()));
        ssink.emit(&completed(7, true, "ok"));
        assert_eq!(fr.postmortems().len(), 0);
        assert_eq!(fr.dumps(), 0);
        assert_eq!(fr.blackbox().traces(), 0, "ring released");
        assert_eq!(fr.index_json(), "{\"postmortems\":[]}");
    }

    #[test]
    fn exactly_one_dump_per_trace_even_on_replayed_terminal_events() {
        let fr = FlightRecorder::new(FlightRecorderConfig::default());
        let ssink = fr.service_sink(None);
        ssink.emit(&completed(9, false, "recovery-exhausted"));
        ssink.emit(&completed(9, false, "recovery-exhausted"));
        assert_eq!(fr.dumps(), 1);
        assert_eq!(fr.postmortems().len(), 1);
    }

    #[test]
    fn divergence_is_read_from_the_residual_tail() {
        let fr = FlightRecorder::new(FlightRecorderConfig::default());
        let tap = fr.solver_tap();
        tap.emit(&SolverTail {
            trace_id: 5,
            attempt: 1,
            solver: "cg",
            samples: vec![sample(1, 1e-2), sample(2, 1e-3), sample(3, f64::NAN)],
            rollbacks: Vec::new(),
            restarts: Vec::new(),
            overwritten: 0,
        });
        fr.service_sink(None)
            .emit(&completed(5, false, "non-finite"));
        let pms = fr.postmortems();
        assert_eq!(pms[0].top_verdict(), Verdict::Divergence);
        assert!(pms[0].narrative.contains("divergence"));
        crate::json::validate(&pms[0].to_json()).expect("json with NaN residual");
    }

    #[test]
    fn stagnation_needs_a_flat_tail() {
        let flat: Vec<IterSample> = (0..10).map(|i| sample(i, 1e-3)).collect();
        let tail = SolverTail {
            trace_id: 6,
            attempt: 1,
            solver: "cg",
            samples: flat,
            rollbacks: Vec::new(),
            restarts: Vec::new(),
            overwritten: 0,
        };
        let causes = attribute(
            Trigger::Stagnation,
            "stagnation",
            10,
            None,
            &BlackBoxTail::default(),
            &[],
            Some(&tail),
        );
        assert_eq!(causes[0].verdict, Verdict::Stagnation);
    }

    #[test]
    fn deadline_expiry_of_an_admitted_job_is_mispricing_over_overload() {
        let fr = FlightRecorder::new(FlightRecorderConfig::default());
        let ssink = fr.service_sink(None);
        ssink.emit(&ServiceEvent::Admitted {
            trace_id: 11,
            class: QosClass::Interactive,
            predicted_us: 50,
        });
        ssink.emit(&ServiceEvent::DeadlineExpired {
            trace_id: 11,
            class: QosClass::Interactive,
        });
        ssink.emit(&completed(11, false, "deadline"));
        let pm = &fr.postmortems()[0];
        assert_eq!(pm.trigger, Trigger::DeadlineShed);
        assert_eq!(pm.top_verdict(), Verdict::AdmissionMispricing);
        assert!(pm.causes.iter().any(|c| c.verdict == Verdict::Overload));
        assert!(pm.causes[0]
            .evidence
            .iter()
            .any(|e| e.contains("predicted 50 us")));
    }

    #[test]
    fn refusals_and_successes_do_not_dump() {
        let fr = FlightRecorder::new(FlightRecorderConfig::default());
        let ssink = fr.service_sink(None);
        for outcome in [
            "ok",
            "busy",
            "circuit-open",
            "shed",
            "invalid-request",
            "shutdown",
        ] {
            ssink.emit(&completed(outcome.as_ptr() as u64, true, outcome));
        }
        assert_eq!(fr.dumps(), 0);
    }

    #[test]
    fn slo_firing_produces_a_class_level_dump() {
        let fr = FlightRecorder::new(FlightRecorderConfig::default());
        let ssink = fr.service_sink(None);
        ssink.emit(&completed(21, false, "worker-killed"));
        fr.on_transition(&AlertTransition {
            class: QosClass::Interactive,
            at_s: 3.0,
            from: AlertState::Pending,
            to: AlertState::Firing,
            slow_burn: 4.0,
            fast_burn: 9.0,
        });
        // Pending and Resolved transitions are not dump triggers.
        fr.on_transition(&AlertTransition {
            class: QosClass::Interactive,
            at_s: 9.0,
            from: AlertState::Firing,
            to: AlertState::Resolved,
            slow_burn: 0.1,
            fast_burn: 0.1,
        });
        let pms = fr.postmortems();
        assert_eq!(pms.len(), 2, "one job dump + one slo dump");
        let slo = fr
            .get("slo-interactive-1")
            .expect("slo dump keyed by class");
        assert_eq!(slo.trigger, Trigger::SloFiring);
        crate::json::validate(&slo.to_json()).expect("slo dump json");
        let index = fr.index_json();
        crate::json::validate(&index).expect("index json");
        assert!(index.contains("slo-interactive-1"));
    }

    #[test]
    fn solver_tap_and_forwarding_sink_compose() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let fr = FlightRecorder::new(FlightRecorderConfig::default());
        let forwarded = Arc::new(AtomicUsize::new(0));
        let f2 = forwarded.clone();
        let ssink = fr.service_sink(Some(ServiceEventSink::new(move |_| {
            f2.fetch_add(1, Ordering::Relaxed);
        })));
        let dumps = Arc::new(AtomicUsize::new(0));
        let d2 = dumps.clone();
        fr.set_on_dump(move |pm| {
            assert!(!pm.narrative.is_empty());
            d2.fetch_add(1, Ordering::Relaxed);
        });
        ssink.emit(&completed(31, false, "non-finite"));
        assert_eq!(
            forwarded.load(Ordering::Relaxed),
            1,
            "events still forwarded"
        );
        assert_eq!(dumps.load(Ordering::Relaxed), 1, "on_dump fired");
    }

    #[test]
    fn summary_refuses_documents_without_the_schema_marker() {
        let err = summary_from_json("{\"alerts\":[]}").unwrap_err();
        assert!(
            err.contains("hpf-postmortem/1"),
            "error names the marker: {err}"
        );
        assert!(summary_from_json("not json at all").is_err());
    }

    #[test]
    fn inferred_straggler_from_imbalance_without_fault_labels() {
        let fr = FlightRecorder::new(FlightRecorderConfig::default());
        fr.machine_sink()
            .emit(&machine_event(41, "dot-merge", vec![1.0, 1.0, 6.0, 1.0]));
        fr.service_sink(None)
            .emit(&completed(41, false, "worker-killed"));
        let pm = &fr.postmortems()[0];
        assert_eq!(pm.top_verdict(), Verdict::Straggler);
        assert!(pm.causes[0].evidence[0].contains("proc 2"));
    }
}
