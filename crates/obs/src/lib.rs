//! # hpf-obs — observability for the simulated HPF machine
//!
//! The paper's performance story ("CG spends its time in matvec
//! communication and dot-product reductions") is only checkable if the
//! simulator can *show* where simulated time goes. This crate turns the
//! raw event [`Trace`](hpf_machine::Trace) and the solver telemetry
//! hooks into artifacts a human (or CI) can consume:
//!
//! - **Spans** — re-exported from `hpf_machine::span`: every traced
//!   event carries a `/`-joined path like `solve/iter=12/matvec`
//!   describing *what the program was doing* when the event occurred.
//! - **Telemetry** — [`ConvergenceLog`] records the per-iteration
//!   [`IterSample`](hpf_solvers::IterSample) stream (residual, α/β,
//!   flops, comm, rollbacks) and round-trips it through CSV.
//! - **Timelines** — [`timeline::Timeline`] reconstructs per-processor
//!   busy intervals from event `start`/`proc_times` stamps.
//! - **Exporters** — [`perfetto`] renders a timeline as Chrome/Perfetto
//!   trace-event JSON; [`prom`] renders an `hpf-service`
//!   [`MetricsSnapshot`](hpf_service::MetricsSnapshot) as Prometheus
//!   text exposition.
//! - **Analysis** — [`analysis`] extracts the critical path, the
//!   per-processor load-imbalance ratio, and per-span cost attribution.
//! - **Cost oracle** — [`oracle`] attributes every event to one of the
//!   paper's Section-4 analytic categories, prices it with the closed
//!   forms, and emits a [`DriftReport`] of predicted-vs-measured time.
//! - **Admission audit** — [`admission::AdmissionAudit`] judges the
//!   service's shed decisions in hindsight against completed-job
//!   latencies, pricing over-shedding as a "shed-when-feasible" rate.
//! - **Flight recorder** — [`rca::FlightRecorder`] retains bounded
//!   machine/service/residual tails for every job and, on a bad terminal
//!   outcome or a firing SLO alert, correlates them into a ranked
//!   root-cause [`rca::Postmortem`] document.
//! - **Regression gate** — [`gate`] persists bench runs as
//!   schema-versioned `BENCH_<n>.json` records plus a rolling
//!   `bench-history.jsonl`, and fails (typed [`GateError`]) when a
//!   series regresses past tolerance.
//!
//! Everything is hand-rolled plain text/JSON: the offline build has no
//! real serde, and the formats here are the public contract.

pub mod admission;
pub mod analysis;
pub mod bus;
pub mod gate;
pub mod json;
pub mod oracle;
pub mod perfetto;
pub mod profile;
pub mod prom;
pub mod rca;
pub mod slo;
pub mod telemetry;
pub mod timeline;

pub use admission::{percentile_us, AdmissionAudit, ShedSample};
pub use analysis::{critical_path, load_imbalance, span_costs, CriticalPathReport, SpanCost};
pub use bus::{BusEvent, BusOrigin, BusStats, EventBus, RingBuffer, SamplingPolicy};
pub use gate::{
    render_diff, BenchRecord, GateError, GateOutcome, RegressionGate, Violation,
    BENCH_SCHEMA_VERSION,
};
pub use hpf_machine::span::{self, current_path, enter};
pub use hpf_machine::{ScopeGuard, Span};
pub use hpf_solvers::{IterObserver, IterSample, NullObserver, RecordingObserver};
pub use oracle::{classify, CategoryDrift, DriftCategory, DriftReport, IterDrift, WorstOffender};
pub use perfetto::{trace_events_json, PerfettoError};
pub use profile::{normalize_path, HotSpan, SpanProfile};
pub use prom::{render_prometheus, snapshot_from_json};
pub use rca::{
    summary_from_json as postmortem_summary_from_json, FlightRecorder, FlightRecorderConfig,
    Postmortem, PostmortemSummary, RootCause, Trigger, Verdict, POSTMORTEM_SCHEMA,
};
pub use slo::{AlertState, AlertTransition, SloSpec, SloStatus, SloTracker};
pub use telemetry::ConvergenceLog;
pub use timeline::{Slice, Timeline};
