//! Chrome / Perfetto trace-event JSON exporter.
//!
//! Produces the classic `{"traceEvents": [...]}` JSON Array Format that
//! both `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev)
//! load directly. Mapping:
//!
//! - one *process* (`pid` 0) represents the simulated machine;
//! - each simulated processor is a *thread* (`tid` = processor rank),
//!   named via `thread_name` metadata events;
//! - every [`Slice`](crate::timeline::Slice) becomes a complete event
//!   (`ph: "X"`) with `ts`/`dur` in microseconds (simulated seconds ×
//!   10⁶ — the cost model's natural unit is seconds);
//! - zero-duration slices (instantaneous faults) become thread-scoped
//!   instant events (`ph: "i"`);
//! - the span path, word and flop counts ride along in `args`.
//!
//! A slice with a non-finite start or duration (a corrupted or
//! hand-edited trace) is rejected with a typed [`PerfettoError`] rather
//! than silently serialized as `null` — Perfetto refuses such
//! documents, so failing here keeps the error close to its cause.

use crate::json::{escape, json_f64};
use crate::timeline::{Slice, Timeline};

const US_PER_S: f64 = 1e6;

/// Why a timeline could not be exported.
#[derive(Debug, Clone, PartialEq)]
pub enum PerfettoError {
    /// A slice's `start` or `dur` was NaN or infinite.
    NonFiniteTime {
        /// Index of the offending slice in `Timeline::slices`.
        slice: usize,
        /// The slice's processor rank.
        proc: usize,
        /// The slice's label (or kind when unlabeled).
        name: String,
    },
}

impl std::fmt::Display for PerfettoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PerfettoError::NonFiniteTime { slice, proc, name } => write!(
                f,
                "slice #{slice} ({name:?} on proc {proc}) has a non-finite start or duration"
            ),
        }
    }
}

impl std::error::Error for PerfettoError {}

/// Render a timeline as Chrome trace-event JSON (one self-contained
/// document, pretty enough to diff but compact per event).
pub fn trace_events_json(tl: &Timeline) -> Result<String, PerfettoError> {
    let mut events: Vec<String> = Vec::with_capacity(tl.slices.len() + tl.np);
    for proc in 0..tl.np {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{proc},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"proc {proc}\"}}}}"
        ));
    }
    for (i, slice) in tl.slices.iter().enumerate() {
        if !slice.start.is_finite() || !slice.dur.is_finite() {
            let name = if slice.label.is_empty() {
                slice.kind
            } else {
                &slice.label
            };
            return Err(PerfettoError::NonFiniteTime {
                slice: i,
                proc: slice.proc,
                name: name.to_string(),
            });
        }
        events.push(slice_json(slice));
    }
    Ok(format!(
        "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}",
        events.join(",\n")
    ))
}

fn slice_json(s: &Slice) -> String {
    let name = if s.label.is_empty() { s.kind } else { &s.label };
    let args = format!(
        "{{\"span\":\"{}\",\"words\":{},\"flops\":{}}}",
        escape(&s.span),
        s.words,
        s.flops
    );
    if s.dur > 0.0 {
        format!(
            "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"name\":\"{}\",\"cat\":\"{}\",\
             \"ts\":{},\"dur\":{},\"args\":{}}}",
            s.proc,
            escape(name),
            s.kind,
            json_f64(s.start * US_PER_S),
            json_f64(s.dur * US_PER_S),
            args
        )
    } else {
        format!(
            "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\"name\":\"{}\",\"cat\":\"{}\",\
             \"ts\":{},\"args\":{}}}",
            s.proc,
            escape(name),
            s.kind,
            json_f64(s.start * US_PER_S),
            args
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use hpf_machine::{CostModel, Machine, Topology};

    #[test]
    fn exported_document_is_valid_json_with_one_event_per_slice() {
        let mut m = Machine::new(4, Topology::Hypercube, CostModel::mpp_1995());
        m.set_tracing(true);
        {
            let _s = hpf_machine::span::enter("solve");
            m.compute_all(&[50, 50, 80, 50], "matvec");
            m.allreduce(1, "dot");
            m.barrier("sync");
        }
        let tl = Timeline::from_trace(m.trace());
        let doc = trace_events_json(&tl).unwrap();
        validate(&doc).expect("perfetto export must be well-formed JSON");
        // 4 thread_name metadata events + one event per slice.
        let events = doc.matches("\"ph\":").count();
        assert_eq!(events, 4 + tl.slices.len());
        assert!(doc.contains("\"thread_name\""));
        assert!(doc.contains("\"span\":\"solve\""));
        assert!(doc.contains("\"cat\":\"allreduce\""));
    }

    #[test]
    fn zero_duration_slices_become_instant_events() {
        let tl = Timeline {
            np: 1,
            slices: vec![crate::timeline::Slice {
                proc: 0,
                kind: "fault",
                span: "solve".to_string(),
                label: "bitflip".to_string(),
                start: 0.5,
                dur: 0.0,
                words: 0,
                flops: 0,
            }],
            total_time: 0.5,
        };
        let doc = trace_events_json(&tl).unwrap();
        validate(&doc).unwrap();
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("\"ts\":500000"));
    }

    #[test]
    fn empty_timeline_is_still_a_valid_document() {
        let doc = trace_events_json(&Timeline::default()).unwrap();
        validate(&doc).unwrap();
        assert!(doc.contains("\"traceEvents\""));
    }

    fn slice(start: f64, dur: f64) -> crate::timeline::Slice {
        crate::timeline::Slice {
            proc: 2,
            kind: "compute",
            span: "solve/iter=1".to_string(),
            label: "saxpy".to_string(),
            start,
            dur,
            words: 0,
            flops: 10,
        }
    }

    #[test]
    fn non_finite_durations_are_a_typed_error_not_nan_in_output() {
        for (start, dur) in [
            (f64::NAN, 1.0),
            (0.0, f64::NAN),
            (f64::INFINITY, 1.0),
            (0.0, f64::NEG_INFINITY),
        ] {
            let tl = Timeline {
                np: 3,
                slices: vec![slice(start, dur)],
                total_time: 1.0,
            };
            let err = trace_events_json(&tl).unwrap_err();
            let PerfettoError::NonFiniteTime {
                slice: idx,
                proc,
                name,
            } = &err;
            assert_eq!((*idx, *proc, name.as_str()), (0, 2, "saxpy"));
            // The error is also printable for CLI use.
            assert!(err.to_string().contains("non-finite"));
        }
    }

    #[test]
    fn single_event_timeline_exports_one_slice() {
        let tl = Timeline {
            np: 1,
            slices: vec![slice(0.0, 0.25)],
            total_time: 0.25,
        };
        let doc = trace_events_json(&tl).unwrap();
        validate(&doc).unwrap();
        assert_eq!(doc.matches("\"ph\":\"X\"").count(), 1);
        assert!(doc.contains("\"span\":\"solve/iter=1\""));
    }
}
