//! Chrome / Perfetto trace-event JSON exporter.
//!
//! Produces the classic `{"traceEvents": [...]}` JSON Array Format that
//! both `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev)
//! load directly. Mapping:
//!
//! - one *process* (`pid` 0) represents the simulated machine;
//! - each simulated processor is a *thread* (`tid` = processor rank),
//!   named via `thread_name` metadata events;
//! - every [`Slice`](crate::timeline::Slice) becomes a complete event
//!   (`ph: "X"`) with `ts`/`dur` in microseconds (simulated seconds ×
//!   10⁶ — the cost model's natural unit is seconds);
//! - zero-duration slices (instantaneous faults) become thread-scoped
//!   instant events (`ph: "i"`);
//! - the span path, word and flop counts ride along in `args`.

use crate::json::{escape, json_f64};
use crate::timeline::{Slice, Timeline};

const US_PER_S: f64 = 1e6;

/// Render a timeline as Chrome trace-event JSON (one self-contained
/// document, pretty enough to diff but compact per event).
pub fn trace_events_json(tl: &Timeline) -> String {
    let mut events: Vec<String> = Vec::with_capacity(tl.slices.len() + tl.np);
    for proc in 0..tl.np {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{proc},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"proc {proc}\"}}}}"
        ));
    }
    for slice in &tl.slices {
        events.push(slice_json(slice));
    }
    format!(
        "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}",
        events.join(",\n")
    )
}

fn slice_json(s: &Slice) -> String {
    let name = if s.label.is_empty() { s.kind } else { &s.label };
    let args = format!(
        "{{\"span\":\"{}\",\"words\":{},\"flops\":{}}}",
        escape(&s.span),
        s.words,
        s.flops
    );
    if s.dur > 0.0 {
        format!(
            "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"name\":\"{}\",\"cat\":\"{}\",\
             \"ts\":{},\"dur\":{},\"args\":{}}}",
            s.proc,
            escape(name),
            s.kind,
            json_f64(s.start * US_PER_S),
            json_f64(s.dur * US_PER_S),
            args
        )
    } else {
        format!(
            "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\"name\":\"{}\",\"cat\":\"{}\",\
             \"ts\":{},\"args\":{}}}",
            s.proc,
            escape(name),
            s.kind,
            json_f64(s.start * US_PER_S),
            args
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use hpf_machine::{CostModel, Machine, Topology};

    #[test]
    fn exported_document_is_valid_json_with_one_event_per_slice() {
        let mut m = Machine::new(4, Topology::Hypercube, CostModel::mpp_1995());
        m.set_tracing(true);
        {
            let _s = hpf_machine::span::enter("solve");
            m.compute_all(&[50, 50, 80, 50], "matvec");
            m.allreduce(1, "dot");
            m.barrier("sync");
        }
        let tl = Timeline::from_trace(m.trace());
        let doc = trace_events_json(&tl);
        validate(&doc).expect("perfetto export must be well-formed JSON");
        // 4 thread_name metadata events + one event per slice.
        let events = doc.matches("\"ph\":").count();
        assert_eq!(events, 4 + tl.slices.len());
        assert!(doc.contains("\"thread_name\""));
        assert!(doc.contains("\"span\":\"solve\""));
        assert!(doc.contains("\"cat\":\"allreduce\""));
    }

    #[test]
    fn zero_duration_slices_become_instant_events() {
        let tl = Timeline {
            np: 1,
            slices: vec![crate::timeline::Slice {
                proc: 0,
                kind: "fault",
                span: "solve".to_string(),
                label: "bitflip".to_string(),
                start: 0.5,
                dur: 0.0,
                words: 0,
                flops: 0,
            }],
            total_time: 0.5,
        };
        let doc = trace_events_json(&tl);
        validate(&doc).unwrap();
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("\"ts\":500000"));
    }

    #[test]
    fn empty_timeline_is_still_a_valid_document() {
        let doc = trace_events_json(&Timeline::default());
        validate(&doc).unwrap();
        assert!(doc.contains("\"traceEvents\""));
    }
}
