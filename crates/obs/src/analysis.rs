//! Trace analysis passes: critical path, load imbalance, and per-span
//! cost attribution.
//!
//! The machine model is loosely synchronous (the paper's execution
//! model): collectives synchronise all processors, and a compute phase
//! lasts as long as its slowest processor. The critical path of such a
//! program is therefore the *sequence of events itself*, each charged
//! at its slowest participant — the analyses here quantify where that
//! path spends its time and how much of the compute time is wasted
//! waiting for the most-loaded processor.

use hpf_machine::{EventKind, Trace};
use std::collections::HashMap;

/// One aggregated contributor to the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanCost {
    /// Grouping key (a span path, or an event-kind name).
    pub key: String,
    /// Events aggregated under this key.
    pub count: usize,
    /// Seconds this key contributes to the critical path.
    pub seconds: f64,
    /// Words moved by these events.
    pub words: u64,
    /// Flops charged by these events (slowest-processor flops for
    /// compute events are not separable, so this is the total).
    pub flops: u64,
}

/// Critical-path decomposition of a trace.
#[derive(Debug, Clone, Default)]
pub struct CriticalPathReport {
    /// Length of the critical path in simulated seconds (equals the
    /// machine's elapsed time for a fully traced run).
    pub total_seconds: f64,
    /// Seconds spent in compute events (slowest processor per event).
    pub compute_seconds: f64,
    /// Seconds spent in communication and synchronisation events.
    pub comm_seconds: f64,
    /// Seconds attributable to injected faults (stragglers, recovery
    /// stalls); 0 in fault-free runs.
    pub fault_seconds: f64,
    /// Contributors grouped by span path, sorted by descending cost.
    pub by_span: Vec<SpanCost>,
}

impl CriticalPathReport {
    /// Fraction of the critical path spent communicating (0..=1);
    /// `None` for an empty trace.
    pub fn comm_fraction(&self) -> Option<f64> {
        (self.total_seconds > 0.0).then(|| self.comm_seconds / self.total_seconds)
    }
}

/// Extract the critical path and its per-span decomposition.
pub fn critical_path(trace: &Trace) -> CriticalPathReport {
    let mut report = CriticalPathReport::default();
    for event in trace.events() {
        // `time` is already the synchronised (slowest-participant)
        // duration the machine advanced its clocks by.
        report.total_seconds += event.time;
        match event.kind {
            EventKind::Compute => report.compute_seconds += event.time,
            EventKind::Fault => report.fault_seconds += event.time,
            _ => report.comm_seconds += event.time,
        }
    }
    report.by_span = aggregate(trace, |e| e.span.clone());
    report
}

/// Per-span cost attribution (same aggregation as the critical path's
/// `by_span`, exposed directly for the `summary`/`csv` report views).
pub fn span_costs(trace: &Trace) -> Vec<SpanCost> {
    aggregate(trace, |e| e.span.clone())
}

fn aggregate(trace: &Trace, key: impl Fn(&hpf_machine::Event) -> String) -> Vec<SpanCost> {
    let mut order: Vec<String> = Vec::new();
    let mut map: HashMap<String, SpanCost> = HashMap::new();
    for event in trace.events() {
        let k = key(event);
        let entry = map.entry(k.clone()).or_insert_with(|| {
            order.push(k.clone());
            SpanCost {
                key: k,
                count: 0,
                seconds: 0.0,
                words: 0,
                flops: 0,
            }
        });
        entry.count += 1;
        entry.seconds += event.time;
        entry.words += event.words as u64;
        entry.flops += event.flops as u64;
    }
    let mut costs: Vec<SpanCost> = order.into_iter().filter_map(|k| map.remove(&k)).collect();
    costs.sort_by(|a, b| b.seconds.total_cmp(&a.seconds));
    costs
}

/// Per-processor compute load imbalance.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadImbalance {
    /// Total compute-busy seconds per processor.
    pub busy: Vec<f64>,
    /// `max(busy) / mean(busy)` — 1.0 is perfectly balanced; the excess
    /// over 1.0 is the fraction of compute capacity lost to waiting.
    pub ratio: f64,
}

/// Measure compute load imbalance from the trace's per-processor
/// compute durations. Returns `None` when the trace has no compute
/// events with per-processor timings (or all durations are zero).
pub fn load_imbalance(trace: &Trace) -> Option<LoadImbalance> {
    let np = trace
        .events()
        .iter()
        .map(|e| e.participants)
        .max()
        .unwrap_or(0);
    if np == 0 {
        return None;
    }
    let mut busy = vec![0.0f64; np];
    let mut saw_compute = false;
    for event in trace.events() {
        if event.kind == EventKind::Compute && event.proc_times.len() == np {
            saw_compute = true;
            for (b, t) in busy.iter_mut().zip(&event.proc_times) {
                *b += t;
            }
        }
    }
    let max = busy.iter().cloned().fold(0.0f64, f64::max);
    let mean = busy.iter().sum::<f64>() / np as f64;
    if !saw_compute || mean <= 0.0 {
        return None;
    }
    Some(LoadImbalance {
        busy,
        ratio: max / mean,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_machine::{CostModel, Machine, Topology};

    fn machine(np: usize) -> Machine {
        let mut m = Machine::new(np, Topology::Hypercube, CostModel::mpp_1995());
        m.set_tracing(true);
        m
    }

    #[test]
    fn critical_path_matches_machine_elapsed_time() {
        let mut m = machine(4);
        {
            let _s = hpf_machine::span::enter("solve");
            {
                let _mv = hpf_machine::span::enter("matvec");
                m.compute_all(&[1000, 1000, 1000, 1000], "spmv");
            }
            {
                let _d = hpf_machine::span::enter("dot");
                m.allreduce(1, "dot");
            }
        }
        let report = critical_path(m.trace());
        assert!((report.total_seconds - m.elapsed()).abs() < 1e-12);
        assert!(report.compute_seconds > 0.0);
        assert!(report.comm_seconds > 0.0);
        assert_eq!(report.fault_seconds, 0.0);
        let f = report.comm_fraction().unwrap();
        assert!(f > 0.0 && f < 1.0);
        // by_span has both paths and is sorted by descending cost.
        let keys: Vec<&str> = report.by_span.iter().map(|c| c.key.as_str()).collect();
        assert!(keys.contains(&"solve/matvec"));
        assert!(keys.contains(&"solve/dot"));
        assert!(report
            .by_span
            .windows(2)
            .all(|w| w[0].seconds >= w[1].seconds));
    }

    #[test]
    fn load_imbalance_ratio_reflects_skew() {
        let mut m = machine(4);
        m.compute_all(&[100, 100, 100, 100], "even");
        let balanced = load_imbalance(m.trace()).unwrap();
        assert!((balanced.ratio - 1.0).abs() < 1e-12);

        let mut m = machine(4);
        m.compute_all(&[400, 100, 100, 100], "skewed");
        let skewed = load_imbalance(m.trace()).unwrap();
        // max = 400, mean = 175 → ratio ≈ 2.2857
        assert!((skewed.ratio - 400.0 / 175.0).abs() < 1e-12);
        assert_eq!(skewed.busy.len(), 4);
    }

    #[test]
    fn load_imbalance_is_none_without_compute_events() {
        let mut m = machine(2);
        m.allreduce(1, "dot");
        assert!(load_imbalance(m.trace()).is_none());
        let empty = machine(2);
        assert!(load_imbalance(empty.trace()).is_none());
    }

    #[test]
    fn span_costs_aggregate_counts_and_words() {
        let mut m = machine(2);
        {
            let _s = hpf_machine::span::enter("solve");
            m.allreduce(2, "dot");
            m.allreduce(2, "dot");
        }
        let costs = span_costs(m.trace());
        assert_eq!(costs.len(), 1);
        assert_eq!(costs[0].key, "solve");
        assert_eq!(costs[0].count, 2);
        assert!(costs[0].seconds > 0.0);
        assert!(costs[0].words > 0);
    }
}
