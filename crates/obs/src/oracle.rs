//! The cost oracle: predicted-vs-measured drift attribution.
//!
//! Walks a recorded [`Trace`], sorts every event into one of the
//! paper's analytic cost categories (Section 4 prices each CG building
//! block in closed form), evaluates the same [`CostModel`] formulas the
//! machine used — via [`hpf_machine::predicted_time`], with the actual
//! sizes, participant counts and hop distances recorded on the event —
//! and reports where the measured schedule drifted from the analytic
//! prediction.
//!
//! On a clean simulated machine drift is ~0 by construction; the oracle
//! earns its keep when something breaks that correspondence: stragglers
//! and fault penalties, load imbalance in `compute_all` (predictions
//! assume perfect balance, as the paper's formulas do), replays after
//! rollbacks, or a trace captured under one topology being priced under
//! another. Categories follow the paper's decomposition of CG:
//!
//! | category        | paper operation                                  |
//! |-----------------|--------------------------------------------------|
//! | `saxpy`         | §4.1 vector update `x + αp` (no communication)    |
//! | `dot-reduce`    | §4.2 inner product: local dots + `log P` combine  |
//! | `matvec-gather` | §4.3 row-block `(BLOCK,*)` matvec: allgather of p |
//! | `matvec-reduce` | §4.4 col-block `(*,BLOCK)` matvec: allreduce of q |
//! | `redistribute`  | §5 `REDISTRIBUTE` / alltoall data motion          |
//! | `mg-smooth`     | multigrid level work: SymGS sweeps, residual +    |
//! |                 | halo exchange, coarsest direct solve              |
//! | `mg-transfer`   | multigrid level transfers: restrict / prolong     |
//! |                 | motion and apply, coarse gather/scatter funnel    |
//! | `compute-bulk`  | other data-parallel compute (local matvec, ...)   |
//! | `compute-serial`| single-processor compute sections                 |
//! | `comm-other`    | remaining collectives and messages                |
//! | `overhead`      | fault penalties; no analytic prediction exists    |
//!
//! The two `mg-*` categories carve the HPCG-class workload out of the
//! generic buckets (labels stamped by `hpf-mg` start with `mg-`), so a
//! V-cycle's smoother cost and its transfer cost drift independently.
//! [`DriftReport::gflops_equivalent`] derives the HPCG-style figure of
//! merit — total recorded flops over total simulated seconds — from the
//! same cost model.

use crate::json::json_f64;
use hpf_machine::{predicted_time, CostModel, Event, EventKind, Topology, Trace};

/// The analytic categories the oracle attributes events to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DriftCategory {
    Saxpy,
    DotReduce,
    MatvecGather,
    MatvecReduce,
    Redistribute,
    MgSmooth,
    MgTransfer,
    ComputeBulk,
    ComputeSerial,
    CommOther,
    Overhead,
}

impl DriftCategory {
    pub const ALL: [DriftCategory; 11] = [
        DriftCategory::Saxpy,
        DriftCategory::DotReduce,
        DriftCategory::MatvecGather,
        DriftCategory::MatvecReduce,
        DriftCategory::Redistribute,
        DriftCategory::MgSmooth,
        DriftCategory::MgTransfer,
        DriftCategory::ComputeBulk,
        DriftCategory::ComputeSerial,
        DriftCategory::CommOther,
        DriftCategory::Overhead,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            DriftCategory::Saxpy => "saxpy",
            DriftCategory::DotReduce => "dot-reduce",
            DriftCategory::MatvecGather => "matvec-gather",
            DriftCategory::MatvecReduce => "matvec-reduce",
            DriftCategory::Redistribute => "redistribute",
            DriftCategory::MgSmooth => "mg-smooth",
            DriftCategory::MgTransfer => "mg-transfer",
            DriftCategory::ComputeBulk => "compute-bulk",
            DriftCategory::ComputeSerial => "compute-serial",
            DriftCategory::CommOther => "comm-other",
            DriftCategory::Overhead => "overhead",
        }
    }
}

/// Sort one event into its analytic category. Classification uses the
/// event kind first, then the solver's own operation labels (the
/// `saxpy` / `dot-local` / `bcast-p` vocabulary the core crates stamp
/// on every operation), then payload size to split the two collective
/// roles an allreduce can play in CG: combining a scalar dot product
/// versus merging a distributed `q = A·p` in the `(*,BLOCK)` layout.
pub fn classify(event: &Event) -> DriftCategory {
    let label = event.label.as_str();
    // Multigrid labels (`mg-*`, stamped by hpf-mg) take precedence over
    // the kind rules, splitting the V-cycle into level work versus
    // level transfers regardless of the event's transport: a halo
    // Redistribute belongs to the smoother it feeds, a restrict-apply
    // Compute to the transfer it implements.
    if event.kind != EventKind::Fault {
        if let Some(op) = label.strip_prefix("mg-") {
            let level_work = op.starts_with("smooth")
                || op.starts_with("residual")
                || op.starts_with("halo")
                || op == "coarse-solve";
            return if level_work {
                DriftCategory::MgSmooth
            } else {
                DriftCategory::MgTransfer
            };
        }
    }
    match event.kind {
        EventKind::Fault => DriftCategory::Overhead,
        EventKind::Redistribute | EventKind::AllToAll => DriftCategory::Redistribute,
        EventKind::AllGather => DriftCategory::MatvecGather,
        EventKind::AllReduce => {
            if event.payload_words <= 2 {
                DriftCategory::DotReduce
            } else {
                DriftCategory::MatvecReduce
            }
        }
        EventKind::Compute => {
            if label.contains("saxpy") || label.contains("saypx") || label.contains("scale") {
                DriftCategory::Saxpy
            } else if label.contains("dot") || label.contains("sum-local") {
                DriftCategory::DotReduce
            } else if event.proc_times.is_empty() {
                DriftCategory::ComputeSerial
            } else {
                DriftCategory::ComputeBulk
            }
        }
        _ => DriftCategory::CommOther,
    }
}

/// Aggregated drift for one category.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoryDrift {
    pub category: DriftCategory,
    /// Events attributed to this category.
    pub events: usize,
    /// Events that had a closed-form prediction (faults and
    /// redistributes never do; they count at measured time).
    pub predicted_events: usize,
    /// Sum of analytic predictions (unpredictable events contribute
    /// their measured time, so totals stay comparable).
    pub predicted_seconds: f64,
    /// Sum of measured (simulated) event times.
    pub measured_seconds: f64,
    /// Total words moved by this category's events.
    pub words: u64,
}

impl CategoryDrift {
    /// `(measured − predicted) / predicted`; `None` when the category
    /// predicted (essentially) zero time.
    pub fn rel_error(&self) -> Option<f64> {
        if self.predicted_seconds > f64::EPSILON {
            Some((self.measured_seconds - self.predicted_seconds) / self.predicted_seconds)
        } else {
            None
        }
    }
}

/// One event whose measured time strayed furthest from its prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct WorstOffender {
    /// Index of the event in the trace.
    pub event: usize,
    pub kind: &'static str,
    pub span: String,
    pub label: String,
    pub category: DriftCategory,
    pub predicted_seconds: f64,
    pub measured_seconds: f64,
}

/// Cumulative predicted/measured pair at the end of one solver
/// iteration (events whose span path carries an `iter=K` segment).
#[derive(Debug, Clone, PartialEq)]
pub struct IterDrift {
    pub iteration: usize,
    pub predicted_seconds: f64,
    pub measured_seconds: f64,
}

/// The oracle's verdict on one trace: per-category drift, the worst
/// individual offenders, and a per-iteration series.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    pub topology: Topology,
    /// Categories in [`DriftCategory::ALL`] order, empty ones omitted.
    pub categories: Vec<CategoryDrift>,
    pub total_predicted_seconds: f64,
    pub total_measured_seconds: f64,
    /// Total floating-point operations recorded on the trace's compute
    /// events (communication moves words, not flops).
    pub total_flops: u64,
    /// Events with no closed-form prediction (counted at measured time).
    pub unpredicted_events: usize,
    /// Up to ten events with the largest absolute drift, sorted worst
    /// first.
    pub worst: Vec<WorstOffender>,
    /// Per-iteration drift, sorted by iteration number.
    pub iterations: Vec<IterDrift>,
}

impl DriftReport {
    /// Attribute and price every event of `trace` under `topology` /
    /// `cost`. Pass the same topology and cost model the machine ran
    /// with to measure simulator/model agreement, or different ones to
    /// ask "what does the model say this schedule *should* have cost
    /// elsewhere?".
    pub fn from_trace(trace: &Trace, topology: Topology, cost: &CostModel) -> DriftReport {
        let mut cats: Vec<CategoryDrift> = DriftCategory::ALL
            .iter()
            .map(|&category| CategoryDrift {
                category,
                events: 0,
                predicted_events: 0,
                predicted_seconds: 0.0,
                measured_seconds: 0.0,
                words: 0,
            })
            .collect();
        let mut worst: Vec<WorstOffender> = Vec::new();
        let mut iters: std::collections::BTreeMap<usize, IterDrift> =
            std::collections::BTreeMap::new();
        let mut unpredicted = 0usize;
        let mut total_flops = 0u64;
        for (i, event) in trace.events().iter().enumerate() {
            total_flops += event.flops as u64;
            let category = classify(event);
            let prediction = predicted_time(event, topology, cost);
            let predicted = prediction.unwrap_or(event.time);
            if prediction.is_none() {
                unpredicted += 1;
            }
            let slot = &mut cats[DriftCategory::ALL
                .iter()
                .position(|&c| c == category)
                .expect("category table covers the enum")];
            slot.events += 1;
            slot.predicted_events += usize::from(prediction.is_some());
            slot.predicted_seconds += predicted;
            slot.measured_seconds += event.time;
            slot.words += event.words as u64;
            if prediction.is_some() {
                worst.push(WorstOffender {
                    event: i,
                    kind: event.kind.name(),
                    span: event.span.clone(),
                    label: event.label.clone(),
                    category,
                    predicted_seconds: predicted,
                    measured_seconds: event.time,
                });
            }
            if let Some(k) = iteration_of(&event.span) {
                let entry = iters.entry(k).or_insert(IterDrift {
                    iteration: k,
                    predicted_seconds: 0.0,
                    measured_seconds: 0.0,
                });
                entry.predicted_seconds += predicted;
                entry.measured_seconds += event.time;
            }
        }
        worst.sort_by(|a, b| {
            let da = (a.measured_seconds - a.predicted_seconds).abs();
            let db = (b.measured_seconds - b.predicted_seconds).abs();
            db.partial_cmp(&da)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.event.cmp(&b.event))
        });
        worst.truncate(10);
        DriftReport {
            topology,
            total_predicted_seconds: cats.iter().map(|c| c.predicted_seconds).sum(),
            total_measured_seconds: cats.iter().map(|c| c.measured_seconds).sum(),
            total_flops,
            unpredicted_events: unpredicted,
            categories: cats.into_iter().filter(|c| c.events > 0).collect(),
            worst,
            iterations: iters.into_values().collect(),
        }
    }

    /// Overall `(measured − predicted) / predicted`.
    pub fn total_rel_error(&self) -> f64 {
        if self.total_predicted_seconds > f64::EPSILON {
            (self.total_measured_seconds - self.total_predicted_seconds)
                / self.total_predicted_seconds
        } else {
            0.0
        }
    }

    /// HPCG-style figure of merit: GFLOP/s-equivalent under the cost
    /// model — total recorded flops over total *simulated* seconds
    /// (the wall-clock the machine would have taken, not host time).
    /// `None` when the trace measured (essentially) zero time.
    pub fn gflops_equivalent(&self) -> Option<f64> {
        if self.total_measured_seconds > f64::EPSILON {
            Some(self.total_flops as f64 / self.total_measured_seconds / 1e9)
        } else {
            None
        }
    }

    /// Largest per-category |relative error| (categories that predicted
    /// zero time are skipped).
    pub fn max_abs_rel_error(&self) -> f64 {
        self.categories
            .iter()
            .filter_map(CategoryDrift::rel_error)
            .map(f64::abs)
            .fold(0.0, f64::max)
    }

    /// Render as a JSON object (strict RFC 8259; non-finite values
    /// become `null`).
    pub fn to_json(&self) -> String {
        let cats: Vec<String> = self
            .categories
            .iter()
            .map(|c| {
                format!(
                    "{{\"category\":\"{}\",\"events\":{},\"predicted_events\":{},\
                     \"predicted_seconds\":{},\"measured_seconds\":{},\"words\":{},\
                     \"rel_error\":{}}}",
                    c.category.name(),
                    c.events,
                    c.predicted_events,
                    json_f64(c.predicted_seconds),
                    json_f64(c.measured_seconds),
                    c.words,
                    c.rel_error().map_or("null".to_string(), json_f64)
                )
            })
            .collect();
        let worst: Vec<String> = self
            .worst
            .iter()
            .map(|w| {
                format!(
                    "{{\"event\":{},\"kind\":\"{}\",\"span\":\"{}\",\"label\":\"{}\",\
                     \"category\":\"{}\",\"predicted_seconds\":{},\"measured_seconds\":{}}}",
                    w.event,
                    w.kind,
                    crate::json::escape(&w.span),
                    crate::json::escape(&w.label),
                    w.category.name(),
                    json_f64(w.predicted_seconds),
                    json_f64(w.measured_seconds)
                )
            })
            .collect();
        let iters: Vec<String> = self
            .iterations
            .iter()
            .map(|it| {
                format!(
                    "{{\"iteration\":{},\"predicted_seconds\":{},\"measured_seconds\":{}}}",
                    it.iteration,
                    json_f64(it.predicted_seconds),
                    json_f64(it.measured_seconds)
                )
            })
            .collect();
        format!(
            "{{\"schema_version\":1,\"topology\":\"{}\",\
             \"total_predicted_seconds\":{},\"total_measured_seconds\":{},\
             \"total_rel_error\":{},\"max_abs_rel_error\":{},\
             \"total_flops\":{},\"gflops_equivalent\":{},\
             \"unpredicted_events\":{},\"categories\":[{}],\"worst\":[{}],\
             \"iterations\":[{}]}}",
            self.topology.name(),
            json_f64(self.total_predicted_seconds),
            json_f64(self.total_measured_seconds),
            json_f64(self.total_rel_error()),
            json_f64(self.max_abs_rel_error()),
            self.total_flops,
            self.gflops_equivalent()
                .map_or("null".to_string(), json_f64),
            self.unpredicted_events,
            cats.join(","),
            worst.join(","),
            iters.join(",")
        )
    }

    /// Human-readable drift table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "cost-oracle drift report ({} topology)\n\
             {:<15} {:>7} {:>14} {:>14} {:>10} {:>12}\n",
            self.topology.name(),
            "category",
            "events",
            "predicted(s)",
            "measured(s)",
            "drift",
            "words"
        ));
        for c in &self.categories {
            out.push_str(&format!(
                "{:<15} {:>7} {:>14.6e} {:>14.6e} {:>10} {:>12}\n",
                c.category.name(),
                c.events,
                c.predicted_seconds,
                c.measured_seconds,
                c.rel_error()
                    .map_or("n/a".to_string(), |e| format!("{:+.2}%", e * 100.0)),
                c.words
            ));
        }
        out.push_str(&format!(
            "{:<15} {:>7} {:>14.6e} {:>14.6e} {:>10}\n",
            "total",
            self.categories.iter().map(|c| c.events).sum::<usize>(),
            self.total_predicted_seconds,
            self.total_measured_seconds,
            format!("{:+.2}%", self.total_rel_error() * 100.0)
        ));
        if let Some(g) = self.gflops_equivalent() {
            out.push_str(&format!(
                "figure of merit: {:.4} GFLOP/s-equivalent ({} flops in {:.6e} simulated s)\n",
                g, self.total_flops, self.total_measured_seconds
            ));
        }
        if self.unpredicted_events > 0 {
            out.push_str(&format!(
                "({} events had no closed-form prediction and count at measured time)\n",
                self.unpredicted_events
            ));
        }
        if let Some(w) = self.worst.first() {
            if (w.measured_seconds - w.predicted_seconds).abs() > 1e-15 {
                out.push_str(&format!(
                    "worst offender: event #{} {} [{}] predicted {:.6e}s measured {:.6e}s\n",
                    w.event, w.kind, w.span, w.predicted_seconds, w.measured_seconds
                ));
            }
        }
        out
    }
}

/// Extract the iteration number from a span path like
/// `solve/iter=3/matvec`.
fn iteration_of(span: &str) -> Option<usize> {
    span.split('/')
        .find_map(|seg| seg.strip_prefix("iter=").and_then(|k| k.parse().ok()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_machine::{FaultPlan, Machine};

    fn traced_machine() -> Machine {
        let mut m = Machine::new(4, Topology::Hypercube, CostModel::mpp_1995());
        m.set_tracing(true);
        m
    }

    #[test]
    fn clean_trace_has_zero_drift_in_every_category() {
        let mut m = traced_machine();
        {
            let _s = hpf_machine::span::enter("solve");
            for k in 1..=3 {
                let _it = hpf_machine::span::enter(format!("iter={k}"));
                m.compute_all(&[200, 200, 200, 200], "local-matvec");
                m.allgather(64, "bcast-p");
                m.compute_all(&[50, 50, 50, 50], "dot-local");
                m.allreduce(1, "dot-merge");
                m.compute_all(&[30, 30, 30, 30], "saxpy");
            }
        }
        let report = DriftReport::from_trace(m.trace(), Topology::Hypercube, m.cost_model());
        assert!(
            report.max_abs_rel_error() < 1e-9,
            "clean simulated trace must agree with the model: {}",
            report.render()
        );
        assert!((report.total_measured_seconds - m.elapsed()).abs() < 1e-12);
        assert_eq!(report.unpredicted_events, 0);
        assert_eq!(report.iterations.len(), 3);
        let names: Vec<&str> = report
            .categories
            .iter()
            .map(|c| c.category.name())
            .collect();
        assert!(names.contains(&"saxpy"));
        assert!(names.contains(&"dot-reduce"));
        assert!(names.contains(&"matvec-gather"));
        assert!(names.contains(&"compute-bulk"));
    }

    #[test]
    fn classification_separates_the_two_matvec_layouts() {
        let mut m = traced_machine();
        m.allgather(64, "s1-bcast-p"); // (BLOCK,*): gather p
        m.allreduce(256, "s2-sum-merge"); // (*,BLOCK): reduce q
        m.allreduce(1, "dot-merge"); // scalar dot
        let e = m.trace().events();
        assert_eq!(classify(&e[0]), DriftCategory::MatvecGather);
        assert_eq!(classify(&e[1]), DriftCategory::MatvecReduce);
        assert_eq!(classify(&e[2]), DriftCategory::DotReduce);
    }

    #[test]
    fn imbalance_and_faults_surface_as_drift_and_overhead() {
        let mut m = traced_machine();
        m.set_fault_plan(FaultPlan::new().with_straggler(1, 2, 5.0, 4));
        {
            let _s = hpf_machine::span::enter("solve");
            let _it = hpf_machine::span::enter("iter=1");
            m.compute_all(&[100, 100, 100, 700], "local-matvec"); // imbalanced
            m.allgather(32, "bcast-p"); // straggler hits this op
        }
        let report = DriftReport::from_trace(m.trace(), Topology::Hypercube, m.cost_model());
        // The imbalanced compute is predicted at the balanced time, so
        // compute-bulk shows positive drift.
        let bulk = report
            .categories
            .iter()
            .find(|c| c.category == DriftCategory::ComputeBulk)
            .unwrap();
        assert!(bulk.rel_error().unwrap() > 0.5, "{}", report.render());
        assert!(report.total_rel_error() > 0.0);
        // The worst offender list leads with a genuinely drifted event.
        let w = &report.worst[0];
        assert!(w.measured_seconds > w.predicted_seconds);
        // Fault penalty events (if any were recorded) land in overhead
        // with no prediction.
        for c in &report.categories {
            if c.category == DriftCategory::Overhead {
                assert_eq!(c.predicted_events, 0);
            }
        }
    }

    /// `mg-*` labels carve multigrid work out of the generic buckets:
    /// smoother-side events (compute *and* its halo Redistribute) land
    /// in `mg-smooth`, transfer-side events (restrict/prolong motion
    /// and apply, the coarse funnel) in `mg-transfer`, while non-mg
    /// events keep their old categories.
    #[test]
    fn mg_labels_split_into_smoother_and_transfer_categories() {
        let mut m = traced_machine();
        m.compute_all(&[40, 40, 40, 40], "mg-smooth");
        let traffic = vec![
            vec![0, 8, 0, 0],
            vec![8, 0, 8, 0],
            vec![0, 8, 0, 8],
            vec![0, 0, 8, 0],
        ];
        m.exchange(&traffic, "mg-halo");
        m.compute_all(&[60, 60, 60, 60], "mg-residual");
        m.exchange(&traffic, "mg-restrict");
        m.compute_all(&[20, 20, 20, 20], "mg-restrict-apply");
        m.exchange(&traffic, "mg-prolong");
        m.compute_all(&[20, 20, 20, 20], "mg-prolong-apply");
        m.gather_varying(0, &[3, 2, 2, 2], "mg-coarse-gather");
        m.compute_serial(50, "mg-coarse-solve");
        m.scatter_varying(0, &[3, 2, 2, 2], "mg-coarse-scatter");
        m.compute_all(&[30, 30, 30, 30], "saxpy");
        let e = m.trace().events();
        let cats: Vec<DriftCategory> = e.iter().map(classify).collect();
        use DriftCategory::{MgSmooth, MgTransfer, Saxpy};
        assert_eq!(
            cats,
            vec![
                MgSmooth, MgSmooth, MgSmooth, // smooth, halo, residual
                MgTransfer, MgTransfer, MgTransfer, MgTransfer, // restrict, prolong
                MgTransfer, MgSmooth, MgTransfer, // coarse gather/solve/scatter
                Saxpy,
            ]
        );
        // A clean simulated V-cycle-ish trace drifts ~0 in both new
        // categories (halo/transfer Redistributes count at measured).
        let report = DriftReport::from_trace(m.trace(), Topology::Hypercube, m.cost_model());
        for want in [MgSmooth, MgTransfer] {
            let c = report
                .categories
                .iter()
                .find(|c| c.category == want)
                .unwrap();
            assert!(c.events > 0);
            assert!(
                c.rel_error().unwrap().abs() < 1e-9,
                "{}: {}",
                want.name(),
                report.render()
            );
        }
        assert!(report.to_json().contains("\"mg-smooth\""));
        assert!(report.to_json().contains("\"mg-transfer\""));
    }

    /// The HPCG-style figure of merit divides recorded flops by
    /// simulated seconds and survives the empty-trace edge case.
    #[test]
    fn gflops_equivalent_comes_from_recorded_flops_and_simulated_time() {
        let mut m = traced_machine();
        m.compute_all(&[1000, 1000, 1000, 1000], "mg-smooth");
        m.allreduce(1, "dot-merge");
        let report = DriftReport::from_trace(m.trace(), Topology::Hypercube, m.cost_model());
        assert_eq!(report.total_flops, 4000);
        let g = report.gflops_equivalent().unwrap();
        assert!((g - 4000.0 / m.elapsed() / 1e9).abs() < 1e-12 * g);
        assert!(report.render().contains("GFLOP/s-equivalent"));
        assert!(report.to_json().contains("\"gflops_equivalent\":"));

        let empty = DriftReport::from_trace(
            traced_machine().trace(),
            Topology::Hypercube,
            &CostModel::mpp_1995(),
        );
        assert_eq!(empty.gflops_equivalent(), None);
        assert!(empty.to_json().contains("\"gflops_equivalent\":null"));
    }

    #[test]
    fn report_json_is_valid_and_names_every_section() {
        let mut m = traced_machine();
        {
            let _s = hpf_machine::span::enter("solve");
            let _it = hpf_machine::span::enter("iter=1");
            m.compute_all(&[10, 10, 10, 10], "saxpy");
            m.allreduce(1, "dot-merge");
        }
        let report = DriftReport::from_trace(m.trace(), Topology::Hypercube, m.cost_model());
        let json = report.to_json();
        crate::json::validate(&json).expect("drift JSON must be strict");
        for key in [
            "schema_version",
            "topology",
            "total_predicted_seconds",
            "total_measured_seconds",
            "total_rel_error",
            "max_abs_rel_error",
            "categories",
            "worst",
            "iterations",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"iteration\":1"));
    }

    #[test]
    fn empty_trace_yields_an_empty_but_valid_report() {
        let m = traced_machine();
        let report = DriftReport::from_trace(m.trace(), Topology::Hypercube, m.cost_model());
        assert!(report.categories.is_empty());
        assert!(report.worst.is_empty());
        assert!(report.iterations.is_empty());
        assert_eq!(report.total_rel_error(), 0.0);
        crate::json::validate(&report.to_json()).unwrap();
        assert!(report.render().contains("total"));
    }

    #[test]
    fn iteration_parsing_handles_nested_and_missing_segments() {
        assert_eq!(iteration_of("solve/iter=7/matvec/deep/nest"), Some(7));
        assert_eq!(iteration_of("solve/setup"), None);
        assert_eq!(iteration_of(""), None);
        assert_eq!(iteration_of("iter=2"), Some(2));
        assert_eq!(iteration_of("solve/iter=x/matvec"), None);
    }
}
