//! Per-processor timeline reconstruction.
//!
//! The machine stamps every [`Event`] with its synchronisation-point
//! `start` and its modelled duration; [`EventKind::Compute`] events
//! additionally carry per-processor durations (`proc_times`). From
//! those stamps this module rebuilds, per processor, the busy
//! intervals the cost model implies — the raw material for the
//! Perfetto exporter and the load-imbalance analysis.
//!
//! Attribution rules:
//! - `Compute` events produce one slice per processor, with that
//!   processor's own duration (this is where imbalance shows up).
//! - Collectives, barriers and redistributions are bulk-synchronous in
//!   the machine model: every participant is busy for the full
//!   modelled duration, so each gets an identical slice.
//! - `Send` is charged to every processor lane too — the trace does not
//!   record endpoints, and under the paper's loosely-synchronous model
//!   the partner processors are waiting anyway.
//! - Zero-duration events (e.g. instantaneous faults) produce
//!   zero-duration slices; exporters may render them as instants.

use hpf_machine::{Event, EventKind, Trace};

/// One busy interval on one processor lane.
#[derive(Debug, Clone, PartialEq)]
pub struct Slice {
    pub proc: usize,
    /// Event kind name (`"compute"`, `"allreduce"`, ...).
    pub kind: &'static str,
    /// Span path active when the event was recorded.
    pub span: String,
    /// Free-form label the recording site attached.
    pub label: String,
    /// Start time in simulated seconds.
    pub start: f64,
    /// Duration in simulated seconds (0 for instantaneous events).
    pub dur: f64,
    pub words: usize,
    pub flops: usize,
}

/// All slices of a trace, plus the processor count and total makespan.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    pub np: usize,
    pub slices: Vec<Slice>,
    /// Latest `start + dur` over all slices (simulated seconds).
    pub total_time: f64,
}

impl Timeline {
    /// Reconstruct per-processor busy intervals from a trace.
    pub fn from_trace(trace: &Trace) -> Timeline {
        let np = trace
            .events()
            .iter()
            .map(|e| e.participants)
            .max()
            .unwrap_or(0);
        let mut slices = Vec::new();
        for event in trace.events() {
            push_slices(&mut slices, event, np);
        }
        let total_time = slices
            .iter()
            .map(|s| s.start + s.dur)
            .fold(0.0f64, f64::max);
        Timeline {
            np,
            slices,
            total_time,
        }
    }

    /// Total busy time per processor lane (sum of slice durations).
    pub fn busy_per_proc(&self) -> Vec<f64> {
        let mut busy = vec![0.0; self.np];
        for s in &self.slices {
            if s.proc < busy.len() {
                busy[s.proc] += s.dur;
            }
        }
        busy
    }
}

fn push_slices(out: &mut Vec<Slice>, event: &Event, np: usize) {
    let kind = event.kind.name();
    let mk = |proc: usize, dur: f64| Slice {
        proc,
        kind,
        span: event.span.clone(),
        label: event.label.clone(),
        start: event.start,
        dur,
        words: event.words,
        flops: event.flops,
    };
    if event.kind == EventKind::Compute && event.proc_times.len() == np && np > 0 {
        for (p, &dur) in event.proc_times.iter().enumerate() {
            out.push(mk(p, dur));
        }
    } else {
        for p in 0..np.max(1) {
            out.push(mk(p, event.time));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_machine::{CostModel, Machine, Topology};

    fn machine(np: usize) -> Machine {
        let mut m = Machine::new(np, Topology::Hypercube, CostModel::mpp_1995());
        m.set_tracing(true);
        m
    }

    #[test]
    fn compute_slices_expose_per_proc_imbalance() {
        let mut m = machine(4);
        m.compute_all(&[100, 400, 100, 100], "work");
        m.allreduce(1, "dot");
        let tl = Timeline::from_trace(m.trace());
        assert_eq!(tl.np, 4);
        let compute: Vec<&Slice> = tl.slices.iter().filter(|s| s.kind == "compute").collect();
        assert_eq!(compute.len(), 4);
        // The heavy processor's slice is 4x the others.
        let d1 = compute.iter().find(|s| s.proc == 1).unwrap().dur;
        let d0 = compute.iter().find(|s| s.proc == 0).unwrap().dur;
        assert!((d1 / d0 - 4.0).abs() < 1e-12);
        // The allreduce charges every lane identically, starting after
        // the slowest compute.
        let reduce: Vec<&Slice> = tl.slices.iter().filter(|s| s.kind == "allreduce").collect();
        assert_eq!(reduce.len(), 4);
        assert!(reduce.iter().all(|s| s.dur == reduce[0].dur));
        assert!(reduce[0].start >= d1);
        assert!(tl.total_time > 0.0);
    }

    #[test]
    fn busy_per_proc_sums_slice_durations() {
        let mut m = machine(2);
        m.compute_all(&[10, 30], "work");
        let tl = Timeline::from_trace(m.trace());
        let busy = tl.busy_per_proc();
        assert_eq!(busy.len(), 2);
        assert!((busy[1] / busy[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_yields_empty_timeline() {
        let m = machine(3);
        let tl = Timeline::from_trace(m.trace());
        assert_eq!(tl.np, 0);
        assert!(tl.slices.is_empty());
        assert_eq!(tl.total_time, 0.0);
    }
}
