//! Declarative per-QoS-class SLOs with multi-window burn-rate alerting.
//!
//! An [`SloSpec`] states the objective — "99% of interactive requests
//! answer under 250 ms" — as a latency threshold plus an **error
//! budget** (the tolerated bad fraction, here 1%). The [`SloTracker`]
//! feeds on the live bus's terminal events (`completed`, plus sheds and
//! deadline expiries, which are answers too) and maintains sliding
//! windows of good/bad counts per class.
//!
//! **Burn rate** is the language of the alert: over a window,
//! `burn = bad_fraction / error_budget` — burn 1.0 consumes the budget
//! exactly as fast as the SLO tolerates, burn 10 consumes a month of
//! budget in three days. Alerting on a *single* window forces a bad
//! trade (short window = flappy, long window = slow to fire), so each
//! spec alerts on **two windows at once**: a long window proves the
//! breach is sustained, a short window proves it is *still happening*
//! (and lets the alert resolve promptly once the cause clears). Both
//! burns must exceed the threshold to fire — the standard multi-window
//! multi-burn-rate construction from the SRE workbook, scaled down to
//! the soak's second-scale windows.
//!
//! The alert itself is a typed state machine:
//! `Inactive → Pending → Firing → Resolved(→ Pending …)`, with
//! hysteresis (`pending_for` before firing, `clear_for` before
//! resolving) so one straggling batch neither pages nor un-pages
//! anyone. Every transition is appended to a log the E29 harness
//! asserts on and `/alerts` serves.

use crate::json::{escape, json_f64};
use hpf_service::QosClass;
use std::collections::VecDeque;

/// One class's service-level objective and its alerting windows.
#[derive(Debug, Clone)]
pub struct SloSpec {
    pub class: QosClass,
    /// A request is "good" iff it succeeds within this many µs.
    pub objective_latency_us: u64,
    /// Tolerated bad fraction (e.g. `0.01` = 99% objective).
    pub error_budget: f64,
    /// Long ("slow") alerting window, seconds: proves the breach is
    /// sustained.
    pub slow_window_s: f64,
    /// Short ("fast") window, seconds: proves it is still happening.
    pub fast_window_s: f64,
    /// Both windows' burn rates must exceed this to (stay) fire(d).
    pub burn_threshold: f64,
    /// Breach must persist this long before Pending → Firing.
    pub pending_for_s: f64,
    /// Recovery must persist this long before Firing → Resolved.
    pub clear_for_s: f64,
}

impl SloSpec {
    /// The interactive-class SLO the chaos soak is held to: 250 ms
    /// objective, 5% budget, 8 s/2 s windows, burn 2 to page.
    pub fn interactive_soak() -> Self {
        SloSpec {
            class: QosClass::Interactive,
            objective_latency_us: 250_000,
            error_budget: 0.05,
            slow_window_s: 8.0,
            fast_window_s: 2.0,
            burn_threshold: 2.0,
            pending_for_s: 0.5,
            clear_for_s: 2.0,
        }
    }

    /// A batch-class objective loose enough that overload alone should
    /// not page (2 s latency, 10% budget).
    pub fn batch_soak() -> Self {
        SloSpec {
            class: QosClass::Batch,
            objective_latency_us: 2_000_000,
            error_budget: 0.10,
            slow_window_s: 8.0,
            fast_window_s: 2.0,
            burn_threshold: 3.0,
            pending_for_s: 0.5,
            clear_for_s: 2.0,
        }
    }
}

/// Alert lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Burn below threshold; nothing brewing.
    Inactive,
    /// Burn above threshold, waiting out `pending_for` hysteresis.
    Pending,
    /// Sustained breach: the page.
    Firing,
    /// Breach cleared after a firing episode (terminal for that
    /// episode; a new breach starts a fresh `Pending`).
    Resolved,
}

impl AlertState {
    pub fn name(&self) -> &'static str {
        match self {
            AlertState::Inactive => "inactive",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }
}

/// One recorded state change, `at_s` seconds on the tracker's clock.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertTransition {
    pub class: QosClass,
    pub at_s: f64,
    pub from: AlertState,
    pub to: AlertState,
    /// Slow-window burn rate at the moment of transition.
    pub slow_burn: f64,
    /// Fast-window burn rate at the moment of transition.
    pub fast_burn: f64,
}

/// A timestamped request outcome inside a sliding window.
#[derive(Debug, Clone, Copy)]
struct Sample {
    at_s: f64,
    good: bool,
}

/// Good/bad counts over a fixed look-back horizon.
#[derive(Debug, Default)]
struct Window {
    samples: VecDeque<Sample>,
    good: u64,
    bad: u64,
}

impl Window {
    fn push(&mut self, s: Sample) {
        if s.good {
            self.good += 1;
        } else {
            self.bad += 1;
        }
        self.samples.push_back(s);
    }

    fn expire(&mut self, now_s: f64, horizon_s: f64) {
        while let Some(front) = self.samples.front() {
            if now_s - front.at_s <= horizon_s {
                break;
            }
            if front.good {
                self.good -= 1;
            } else {
                self.bad -= 1;
            }
            self.samples.pop_front();
        }
    }

    fn bad_fraction(&self) -> f64 {
        let total = self.good + self.bad;
        if total == 0 {
            0.0
        } else {
            self.bad as f64 / total as f64
        }
    }

    fn total(&self) -> u64 {
        self.good + self.bad
    }
}

/// Per-class alert machinery.
#[derive(Debug)]
struct ClassTracker {
    spec: SloSpec,
    slow: Window,
    fast: Window,
    state: AlertState,
    /// When the current breach (both burns over threshold) began.
    breach_since: Option<f64>,
    /// When the current recovery (either burn back under) began.
    clear_since: Option<f64>,
}

/// Point-in-time status for one class (what `/slo` serves).
#[derive(Debug, Clone)]
pub struct SloStatus {
    pub class: QosClass,
    pub objective_latency_us: u64,
    pub error_budget: f64,
    pub slow_burn: f64,
    pub fast_burn: f64,
    pub slow_window_total: u64,
    pub fast_window_total: u64,
    pub state: AlertState,
}

/// Sliding-window SLO evaluation and burn-rate alerting over all
/// configured classes. Timestamps are caller-supplied seconds on any
/// monotonic clock (the bus's `wall_s` is the natural choice), which
/// keeps evaluation deterministic and testable.
#[derive(Debug)]
pub struct SloTracker {
    classes: Vec<ClassTracker>,
    log: Vec<AlertTransition>,
}

impl SloTracker {
    pub fn new(specs: Vec<SloSpec>) -> Self {
        SloTracker {
            classes: specs
                .into_iter()
                .map(|spec| ClassTracker {
                    spec,
                    slow: Window::default(),
                    fast: Window::default(),
                    state: AlertState::Inactive,
                    breach_since: None,
                    clear_since: None,
                })
                .collect(),
            log: Vec::new(),
        }
    }

    /// The soak's default pair of objectives.
    pub fn soak_defaults() -> Self {
        SloTracker::new(vec![SloSpec::interactive_soak(), SloSpec::batch_soak()])
    }

    /// Record one terminal request outcome. `ok` is the service-level
    /// verdict; a request is *good* only if it succeeded **and** met
    /// the class's latency objective. Classes without a spec are
    /// ignored.
    pub fn observe(&mut self, now_s: f64, class: QosClass, latency_us: u64, ok: bool) {
        for c in &mut self.classes {
            if c.spec.class == class {
                let good = ok && latency_us <= c.spec.objective_latency_us;
                let s = Sample { at_s: now_s, good };
                c.slow.push(s);
                c.fast.push(s);
            }
        }
    }

    /// Record a request refused at the door (shed / deadline-expired):
    /// an answer the caller did not want, i.e. a bad event against the
    /// class's budget.
    pub fn observe_refusal(&mut self, now_s: f64, class: QosClass) {
        self.observe(now_s, class, 0, false);
    }

    /// Feed one bus event (terminal service events only; everything
    /// else is ignored). Convenience for `--follow`-style consumers.
    pub fn observe_bus_event(&mut self, e: &crate::bus::BusEvent) {
        if e.origin != crate::bus::BusOrigin::Service {
            return;
        }
        let class = match e.class.as_str() {
            "interactive" => QosClass::Interactive,
            "batch" => QosClass::Batch,
            "best-effort" => QosClass::BestEffort,
            _ => return,
        };
        match e.kind.as_str() {
            "completed" => self.observe(e.wall_s, class, e.latency_us, e.ok),
            "shed" => self.observe_refusal(e.wall_s, class),
            _ => {}
        }
    }

    /// Advance the alert state machines to `now_s`, returning the
    /// transitions that occurred (also appended to [`Self::log`]).
    pub fn evaluate(&mut self, now_s: f64) -> Vec<AlertTransition> {
        let mut fired = Vec::new();
        for c in &mut self.classes {
            c.slow.expire(now_s, c.spec.slow_window_s);
            c.fast.expire(now_s, c.spec.fast_window_s);
            let slow_burn = c.slow.bad_fraction() / c.spec.error_budget;
            let fast_burn = c.fast.bad_fraction() / c.spec.error_budget;
            let breaching = slow_burn >= c.spec.burn_threshold
                && fast_burn >= c.spec.burn_threshold
                && c.slow.total() > 0;

            if breaching {
                c.clear_since = None;
                if c.breach_since.is_none() {
                    c.breach_since = Some(now_s);
                }
            } else {
                c.breach_since = None;
                if c.clear_since.is_none() {
                    c.clear_since = Some(now_s);
                }
            }

            let next = match c.state {
                AlertState::Inactive | AlertState::Resolved if breaching => AlertState::Pending,
                AlertState::Pending if breaching => {
                    if now_s - c.breach_since.unwrap_or(now_s) >= c.spec.pending_for_s {
                        AlertState::Firing
                    } else {
                        AlertState::Pending
                    }
                }
                // An early clear un-pages nobody: Pending quietly
                // returns to Inactive.
                AlertState::Pending => AlertState::Inactive,
                AlertState::Firing if !breaching => {
                    if now_s - c.clear_since.unwrap_or(now_s) >= c.spec.clear_for_s {
                        AlertState::Resolved
                    } else {
                        AlertState::Firing
                    }
                }
                state => state,
            };
            if next != c.state {
                let t = AlertTransition {
                    class: c.spec.class,
                    at_s: now_s,
                    from: c.state,
                    to: next,
                    slow_burn,
                    fast_burn,
                };
                c.state = next;
                fired.push(t.clone());
                self.log.push(t);
            }
        }
        fired
    }

    /// The full transition log since construction.
    pub fn log(&self) -> &[AlertTransition] {
        &self.log
    }

    /// Point-in-time per-class status (burns over the *current* window
    /// contents; call [`Self::evaluate`] first to expire stale samples).
    pub fn status(&self) -> Vec<SloStatus> {
        self.classes
            .iter()
            .map(|c| SloStatus {
                class: c.spec.class,
                objective_latency_us: c.spec.objective_latency_us,
                error_budget: c.spec.error_budget,
                slow_burn: c.slow.bad_fraction() / c.spec.error_budget,
                fast_burn: c.fast.bad_fraction() / c.spec.error_budget,
                slow_window_total: c.slow.total(),
                fast_window_total: c.fast.total(),
                state: c.state,
            })
            .collect()
    }

    /// The `/slo` document: one JSON object per class.
    pub fn status_json(&self) -> String {
        let entries: Vec<String> = self
            .status()
            .iter()
            .map(|s| {
                format!(
                    "{{\"class\":\"{}\",\"objective_latency_us\":{},\"error_budget\":{},\
                     \"slow_burn\":{},\"fast_burn\":{},\"slow_window_total\":{},\
                     \"fast_window_total\":{},\"state\":\"{}\"}}",
                    escape(s.class.name()),
                    s.objective_latency_us,
                    json_f64(s.error_budget),
                    json_f64(s.slow_burn),
                    json_f64(s.fast_burn),
                    s.slow_window_total,
                    s.fast_window_total,
                    s.state.name()
                )
            })
            .collect();
        format!("[{}]", entries.join(","))
    }

    /// The `/alerts` document: the transition log, oldest first.
    pub fn alerts_json(&self) -> String {
        let entries: Vec<String> = self
            .log
            .iter()
            .map(|t| {
                format!(
                    "{{\"class\":\"{}\",\"at_s\":{},\"from\":\"{}\",\"to\":\"{}\",\
                     \"slow_burn\":{},\"fast_burn\":{}}}",
                    escape(t.class.name()),
                    json_f64(t.at_s),
                    t.from.name(),
                    t.to.name(),
                    json_f64(t.slow_burn),
                    json_f64(t.fast_burn)
                )
            })
            .collect();
        format!("[{}]", entries.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SloSpec {
        SloSpec {
            class: QosClass::Interactive,
            objective_latency_us: 1000,
            error_budget: 0.1,
            slow_window_s: 10.0,
            fast_window_s: 2.0,
            burn_threshold: 2.0,
            pending_for_s: 1.0,
            clear_for_s: 2.0,
        }
    }

    #[test]
    fn healthy_traffic_never_leaves_inactive() {
        let mut t = SloTracker::new(vec![spec()]);
        for i in 0..100 {
            t.observe(i as f64 * 0.1, QosClass::Interactive, 500, true);
            assert!(t.evaluate(i as f64 * 0.1).is_empty());
        }
        assert_eq!(t.status()[0].state, AlertState::Inactive);
        assert_eq!(t.log().len(), 0);
    }

    #[test]
    fn slow_but_successful_requests_burn_budget_too() {
        let mut t = SloTracker::new(vec![spec()]);
        // ok=true but over the 1000 µs objective: bad by definition.
        for i in 0..50 {
            t.observe(i as f64 * 0.05, QosClass::Interactive, 50_000, true);
        }
        t.evaluate(2.5);
        assert!(t.status()[0].slow_burn > 2.0);
    }

    #[test]
    fn alert_walks_pending_firing_resolved_under_breach_and_recovery() {
        let mut t = SloTracker::new(vec![spec()]);
        // Phase 1: total failure from t=0 to t=3.
        let mut now = 0.0;
        while now < 3.0 {
            t.observe(now, QosClass::Interactive, 0, false);
            t.evaluate(now);
            now += 0.1;
        }
        let states: Vec<AlertState> = t.log().iter().map(|tr| tr.to).collect();
        assert!(states.contains(&AlertState::Pending), "{states:?}");
        assert!(states.contains(&AlertState::Firing), "{states:?}");
        assert_eq!(t.status()[0].state, AlertState::Firing);
        // Phase 2: clean traffic; windows drain, clear_for elapses.
        while now < 20.0 {
            t.observe(now, QosClass::Interactive, 100, true);
            t.evaluate(now);
            now += 0.1;
        }
        assert_eq!(t.status()[0].state, AlertState::Resolved);
        let seq: Vec<(AlertState, AlertState)> =
            t.log().iter().map(|tr| (tr.from, tr.to)).collect();
        assert_eq!(
            seq,
            vec![
                (AlertState::Inactive, AlertState::Pending),
                (AlertState::Pending, AlertState::Firing),
                (AlertState::Firing, AlertState::Resolved),
            ]
        );
    }

    #[test]
    fn short_blip_returns_pending_to_inactive_without_firing() {
        let mut t = SloTracker::new(vec![spec()]);
        // A breach shorter than pending_for (1 s).
        t.observe(0.0, QosClass::Interactive, 0, false);
        t.observe(0.2, QosClass::Interactive, 0, false);
        t.evaluate(0.2);
        assert_eq!(t.status()[0].state, AlertState::Pending);
        // Flood of good samples dilutes both windows below threshold.
        for i in 0..100 {
            t.observe(0.3 + i as f64 * 0.001, QosClass::Interactive, 10, true);
        }
        t.evaluate(0.5);
        assert_eq!(t.status()[0].state, AlertState::Inactive);
        assert!(
            t.log().iter().all(|tr| tr.to != AlertState::Firing),
            "a blip must not page"
        );
    }

    #[test]
    fn oscillating_breach_fires_at_most_once_per_hysteresis_window() {
        let mut t = SloTracker::new(vec![spec()]);
        // 30 s square wave at 10 Hz: 2.5 s all-bad, 2.5 s all-good. The
        // raw breach condition toggles every period (the fast window
        // drains below threshold near the end of each good phase, for
        // less than clear_for), so without pending_for/clear_for
        // hysteresis the alert would flap once per cycle.
        let mut now = 0.0;
        while now < 30.0 {
            let bad = ((now / 2.5) as u64).is_multiple_of(2);
            t.observe(
                now,
                QosClass::Interactive,
                if bad { 5000 } else { 100 },
                !bad,
            );
            t.evaluate(now);
            now += 0.1;
        }
        let firings = t
            .log()
            .iter()
            .filter(|tr| tr.from == AlertState::Pending && tr.to == AlertState::Firing)
            .count();
        let windows = (30.0 / (spec().pending_for_s + spec().clear_for_s)).ceil() as usize;
        assert!(
            firings <= windows,
            "{firings} Pending->Firing transitions over {windows} hysteresis windows"
        );
        assert_eq!(
            firings, 1,
            "the page must be sticky across the whole oscillation"
        );
        // Pin the transition log: one walk to Firing, no mid-oscillation
        // resolve/re-fire churn.
        let seq: Vec<(AlertState, AlertState)> =
            t.log().iter().map(|tr| (tr.from, tr.to)).collect();
        assert_eq!(
            seq,
            vec![
                (AlertState::Inactive, AlertState::Pending),
                (AlertState::Pending, AlertState::Firing),
            ]
        );
    }

    #[test]
    fn resolved_rebreach_starts_a_fresh_pending() {
        let mut t = SloTracker::new(vec![spec()]);
        let mut now = 0.0;
        while now < 3.0 {
            t.observe(now, QosClass::Interactive, 0, false);
            t.evaluate(now);
            now += 0.1;
        }
        while now < 20.0 {
            t.observe(now, QosClass::Interactive, 100, true);
            t.evaluate(now);
            now += 0.1;
        }
        assert_eq!(t.status()[0].state, AlertState::Resolved);
        // Long enough for the 10 s slow window to refill with failures.
        while now < 28.0 {
            t.observe(now, QosClass::Interactive, 0, false);
            t.evaluate(now);
            now += 0.05;
        }
        assert!(
            t.log()
                .iter()
                .any(|tr| tr.from == AlertState::Resolved && tr.to == AlertState::Pending),
            "rebreach after Resolved must open a fresh Pending: {:?}",
            t.log()
        );
    }

    #[test]
    fn burn_requires_both_windows_over_threshold() {
        let mut t = SloTracker::new(vec![spec()]);
        // Old failures fill the slow window; recent traffic is clean,
        // so the fast window stays under threshold → no alert.
        for i in 0..20 {
            t.observe(i as f64 * 0.1, QosClass::Interactive, 0, false);
        }
        for i in 0..40 {
            t.observe(3.0 + i as f64 * 0.05, QosClass::Interactive, 10, true);
        }
        t.evaluate(5.0);
        let s = &t.status()[0];
        assert!(s.slow_burn >= 2.0, "slow burn {} still high", s.slow_burn);
        assert!(s.fast_burn < 2.0, "fast burn {} recovered", s.fast_burn);
        assert_eq!(s.state, AlertState::Inactive);
    }

    #[test]
    fn json_documents_are_valid_and_carry_states() {
        let mut t = SloTracker::soak_defaults();
        let mut now = 0.0;
        while now < 3.0 {
            t.observe(now, QosClass::Interactive, 0, false);
            t.evaluate(now);
            now += 0.1;
        }
        let slo = t.status_json();
        let alerts = t.alerts_json();
        crate::json::validate(&slo).expect("slo json");
        crate::json::validate(&alerts).expect("alerts json");
        assert!(slo.contains("\"class\":\"interactive\""));
        assert!(slo.contains("\"state\":\"firing\""));
        assert!(alerts.contains("\"to\":\"firing\""));
    }

    #[test]
    fn bus_events_feed_the_tracker() {
        use crate::bus::{BusEvent, BusOrigin};
        let mut t = SloTracker::new(vec![spec()]);
        let mk = |kind: &str, wall_s: f64, ok: bool| BusEvent {
            seq: 0,
            wall_s,
            origin: BusOrigin::Service,
            kind: kind.to_string(),
            trace_id: 1,
            class: "interactive".to_string(),
            span: String::new(),
            label: String::new(),
            time_s: 0.0,
            latency_us: 10,
            ok,
            outcome: String::new(),
        };
        t.observe_bus_event(&mk("completed", 0.1, true));
        t.observe_bus_event(&mk("shed", 0.2, true)); // refusal = bad
        t.observe_bus_event(&mk("admitted", 0.3, true)); // non-terminal: ignored
        t.evaluate(0.3);
        let s = &t.status()[0];
        assert_eq!(s.slow_window_total, 2);
        assert!(s.slow_burn > 0.0);
    }
}
