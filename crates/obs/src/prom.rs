//! Prometheus text-exposition exporter for the `hpf-service` metrics.
//!
//! Renders a [`MetricsSnapshot`] in the classic text format
//! (version 0.0.4): `# HELP` / `# TYPE` headers, `_total`-suffixed
//! counters, plain gauges, and the latency histogram as a proper
//! cumulative `_bucket` series with `le` labels in **seconds**
//! (converted from the service's microsecond bucket bounds), a `+Inf`
//! bucket, and a `_count` aggregate. The service does not track a
//! latency sum, so no `_sum` series is emitted.

use hpf_service::MetricsSnapshot;

const PREFIX: &str = "hpf_service";

/// Render `snap` as Prometheus text exposition.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let counters: [(&str, u64, &str); 17] = [
        ("accepted", snap.accepted, "Jobs accepted by submit()"),
        (
            "rejected_busy",
            snap.rejected_busy,
            "Jobs refused: queue full",
        ),
        (
            "rejected_invalid",
            snap.rejected_invalid,
            "Jobs refused: malformed request",
        ),
        ("completed", snap.completed, "Jobs finished successfully"),
        ("failed", snap.failed, "Jobs finished with an error"),
        (
            "deadline_exceeded",
            snap.deadline_exceeded,
            "Jobs shed because their deadline expired in queue",
        ),
        ("cache_hits", snap.cache_hits, "Plan cache hits"),
        ("cache_misses", snap.cache_misses, "Plan cache misses"),
        (
            "partitioner_invocations",
            snap.partitioner_invocations,
            "Fresh partitioner runs",
        ),
        (
            "batches_executed",
            snap.batches_executed,
            "Batches handed to workers",
        ),
        (
            "batched_jobs",
            snap.batched_jobs,
            "Jobs that shared a batch with at least one other job",
        ),
        ("rhs_solved", snap.rhs_solved, "Right-hand sides solved"),
        (
            "faults_injected",
            snap.faults_injected,
            "Faults the simulated machine injected",
        ),
        (
            "faults_detected",
            snap.faults_detected,
            "Corruption events protected solvers detected",
        ),
        (
            "rollbacks",
            snap.rollbacks,
            "Checkpoint rollbacks performed",
        ),
        ("retries", snap.retries, "Job re-attempts"),
        (
            "escalations",
            snap.escalations,
            "Retries that escalated the solver",
        ),
    ];
    for (name, value, help) in counters {
        out.push_str(&format!(
            "# HELP {PREFIX}_{name}_total {help}\n\
             # TYPE {PREFIX}_{name}_total counter\n\
             {PREFIX}_{name}_total {value}\n"
        ));
    }
    // breaker_open is a counter of refusals, not the breaker state.
    out.push_str(&format!(
        "# HELP {PREFIX}_breaker_open_total Jobs refused by an open circuit breaker\n\
         # TYPE {PREFIX}_breaker_open_total counter\n\
         {PREFIX}_breaker_open_total {}\n",
        snap.breaker_open
    ));
    let gauges: [(&str, String, &str); 3] = [
        (
            "in_flight",
            snap.in_flight.to_string(),
            "Jobs accepted but not yet finished",
        ),
        (
            "queue_depth",
            snap.queue_depth.to_string(),
            "Jobs waiting in the intake queue",
        ),
        (
            "uptime_seconds",
            format!("{}", snap.uptime_seconds),
            "Seconds since the service started",
        ),
    ];
    for (name, value, help) in gauges {
        out.push_str(&format!(
            "# HELP {PREFIX}_{name} {help}\n\
             # TYPE {PREFIX}_{name} gauge\n\
             {PREFIX}_{name} {value}\n"
        ));
    }
    out.push_str(&format!(
        "# HELP {PREFIX}_latency_seconds Submit-to-response latency of completed jobs\n\
         # TYPE {PREFIX}_latency_seconds histogram\n"
    ));
    let mut cumulative = 0u64;
    for (bound_us, count) in snap
        .latency_bucket_bounds_us
        .iter()
        .zip(&snap.latency_buckets)
    {
        cumulative += count;
        let le = if *bound_us == u64::MAX {
            "+Inf".to_string()
        } else {
            format!("{}", *bound_us as f64 / 1e6)
        };
        out.push_str(&format!(
            "{PREFIX}_latency_seconds_bucket{{le=\"{le}\"}} {cumulative}\n"
        ));
    }
    out.push_str(&format!("{PREFIX}_latency_seconds_count {cumulative}\n"));
    out
}

/// Parse a [`MetricsSnapshot`] back from the JSON produced by
/// [`MetricsSnapshot::to_json`]. This is what lets `trace-report` turn
/// a metrics file saved by one process into Prometheus text in another
/// (the offline serde stub cannot deserialize).
pub fn snapshot_from_json(text: &str) -> Result<MetricsSnapshot, String> {
    crate::json::validate(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let u = |key: &str| -> Result<u64, String> {
        scalar(text, key)?
            .parse()
            .map_err(|_| format!("bad integer for {key:?}"))
    };
    let mut bounds = Vec::new();
    let mut counts = Vec::new();
    let latency = section(text, "\"latency\":[", ']')?;
    for obj in latency.split('{').skip(1) {
        let le = scalar(obj, "le_us")?;
        bounds.push(if le == "\"+inf\"" {
            u64::MAX
        } else {
            le.parse().map_err(|_| format!("bad le_us {le:?}"))?
        });
        counts.push(
            scalar(obj, "count")?
                .parse()
                .map_err(|_| "bad bucket count".to_string())?,
        );
    }
    let uptime = match scalar(text, "uptime_seconds")?.as_str() {
        "null" => f64::NAN,
        s => s.parse().map_err(|_| "bad uptime_seconds".to_string())?,
    };
    Ok(MetricsSnapshot {
        accepted: u("accepted")?,
        rejected_busy: u("rejected_busy")?,
        rejected_invalid: u("rejected_invalid")?,
        completed: u("completed")?,
        failed: u("failed")?,
        deadline_exceeded: u("deadline_exceeded")?,
        cache_hits: u("cache_hits")?,
        cache_misses: u("cache_misses")?,
        partitioner_invocations: u("partitioner_invocations")?,
        batches_executed: u("batches_executed")?,
        batched_jobs: u("batched_jobs")?,
        rhs_solved: u("rhs_solved")?,
        in_flight: u("in_flight")?,
        faults_injected: u("faults_injected")?,
        faults_detected: u("faults_detected")?,
        rollbacks: u("rollbacks")?,
        retries: u("retries")?,
        escalations: u("escalations")?,
        breaker_open: u("breaker_open")?,
        queue_depth: u("queue_depth")? as usize,
        uptime_seconds: uptime,
        latency_bucket_bounds_us: bounds,
        latency_buckets: counts,
    })
}

/// Extract the raw token following `"key":` (number, `null`, or a
/// quoted string), stopping at `,`, `}` or `]`.
fn scalar(text: &str, key: &str) -> Result<String, String> {
    let needle = format!("\"{key}\":");
    let at = text
        .find(&needle)
        .ok_or_else(|| format!("missing field {key:?}"))?;
    let rest = &text[at + needle.len()..];
    let end = rest
        .find([',', '}', ']'])
        .ok_or_else(|| format!("unterminated field {key:?}"))?;
    Ok(rest[..end].trim().to_string())
}

/// The substring between the first occurrence of `open` and the next
/// `close` after it.
fn section<'a>(text: &'a str, open: &str, close: char) -> Result<&'a str, String> {
    let at = text.find(open).ok_or_else(|| format!("missing {open:?}"))?;
    let rest = &text[at + open.len()..];
    let end = rest
        .find(close)
        .ok_or_else(|| format!("missing {close:?} after {open:?}"))?;
    Ok(&rest[..end])
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_service::Metrics;
    use std::sync::atomic::Ordering;
    use std::time::Duration;

    #[test]
    fn snapshot_json_round_trips_through_the_parser() {
        let m = Metrics::new();
        m.accepted.fetch_add(9, Ordering::Relaxed);
        m.rollbacks.fetch_add(2, Ordering::Relaxed);
        m.queue_depth.store(3, Ordering::Relaxed);
        m.observe_latency(Duration::from_micros(120));
        let snap = m.snapshot();
        let back = snapshot_from_json(&snap.to_json()).unwrap();
        assert_eq!(back.accepted, 9);
        assert_eq!(back.rollbacks, 2);
        assert_eq!(back.queue_depth, 3);
        assert_eq!(back.latency_buckets, snap.latency_buckets);
        assert_eq!(back.latency_bucket_bounds_us, snap.latency_bucket_bounds_us);
        assert!((back.uptime_seconds - snap.uptime_seconds).abs() < 1e-9);
        // And the parsed snapshot renders identical Prometheus text.
        assert_eq!(render_prometheus(&back), render_prometheus(&snap));
    }

    #[test]
    fn parser_rejects_garbage_and_missing_fields() {
        assert!(snapshot_from_json("not json").is_err());
        assert!(snapshot_from_json("{}").is_err());
        assert!(snapshot_from_json("{\"accepted\":1}").is_err());
    }

    #[test]
    fn exposition_has_counters_gauges_and_cumulative_buckets() {
        let m = Metrics::new();
        m.accepted.fetch_add(4, Ordering::Relaxed);
        m.completed.fetch_add(3, Ordering::Relaxed);
        m.queue_depth.store(2, Ordering::Relaxed);
        m.observe_latency(Duration::from_micros(50));
        m.observe_latency(Duration::from_micros(50));
        m.observe_latency(Duration::from_millis(5));
        let text = render_prometheus(&m.snapshot());

        assert!(text.contains("hpf_service_accepted_total 4"));
        assert!(text.contains("hpf_service_completed_total 3"));
        assert!(text.contains("hpf_service_queue_depth 2"));
        assert!(text.contains("# TYPE hpf_service_queue_depth gauge"));
        assert!(text.contains("# TYPE hpf_service_latency_seconds histogram"));
        // Buckets are cumulative: 2 in <=0.0001, still 2 at <=0.001,
        // 3 from <=0.01 onwards, and +Inf == _count == 3.
        assert!(text.contains("latency_seconds_bucket{le=\"0.0001\"} 2"));
        assert!(text.contains("latency_seconds_bucket{le=\"0.001\"} 2"));
        assert!(text.contains("latency_seconds_bucket{le=\"0.01\"} 3"));
        assert!(text.contains("latency_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("hpf_service_latency_seconds_count 3"));
        assert!(text.contains("hpf_service_uptime_seconds"));
    }

    #[test]
    fn every_metric_line_is_name_space_value() {
        let text = render_prometheus(&Metrics::new().snapshot());
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split(' ');
            let name = parts.next().unwrap();
            let value = parts.next().unwrap();
            assert!(parts.next().is_none(), "extra tokens in {line:?}");
            assert!(name.starts_with("hpf_service_"), "bad name in {line:?}");
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
        }
    }

    #[test]
    fn type_headers_precede_their_series() {
        let text = render_prometheus(&Metrics::new().snapshot());
        let type_pos = text.find("# TYPE hpf_service_accepted_total").unwrap();
        let series_pos = text.find("\nhpf_service_accepted_total ").unwrap();
        assert!(type_pos < series_pos);
    }
}
