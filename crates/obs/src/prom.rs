//! Prometheus text-exposition exporter for the `hpf-service` metrics.
//!
//! The actual renderer lives in the service crate
//! ([`MetricsSnapshot::to_prometheus`]) so the live `/metrics` HTTP
//! endpoint needs no dependency on this crate; this module keeps the
//! historical `render_prometheus` entry point and owns the *offline*
//! direction — parsing a snapshot back out of its JSON file so
//! `trace-report` can re-render metrics captured by another process.
//!
//! Exposition format (version 0.0.4): `# HELP` / `# TYPE` headers,
//! `_total`-suffixed counters, labeled per-`(solver, scenario)` outcome
//! counters, plain gauges, and the latency histogram as a cumulative
//! `_bucket` series with `le` labels in **seconds**, a `+Inf` bucket,
//! `_sum` (seconds), and `_count`.

use hpf_service::{MetricsSnapshot, PostmortemCount, SolveOutcome};

/// Render `snap` as Prometheus text exposition.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    snap.to_prometheus()
}

/// Parse a [`MetricsSnapshot`] back from the JSON produced by
/// [`MetricsSnapshot::to_json`]. This is what lets `trace-report` turn
/// a metrics file saved by one process into Prometheus text in another
/// (the offline serde stub cannot deserialize).
pub fn snapshot_from_json(text: &str) -> Result<MetricsSnapshot, String> {
    crate::json::validate(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let u = |key: &str| -> Result<u64, String> {
        scalar(text, key)?
            .parse()
            .map_err(|_| format!("bad integer for {key:?}"))
    };
    let mut bounds = Vec::new();
    let mut counts = Vec::new();
    let latency = section(text, "\"latency\":[", ']')?;
    for obj in latency.split('{').skip(1) {
        let le = scalar(obj, "le_us")?;
        bounds.push(if le == "\"+inf\"" {
            u64::MAX
        } else {
            le.parse().map_err(|_| format!("bad le_us {le:?}"))?
        });
        counts.push(
            scalar(obj, "count")?
                .parse()
                .map_err(|_| "bad bucket count".to_string())?,
        );
    }
    let uptime = match scalar(text, "uptime_seconds")?.as_str() {
        "null" => f64::NAN,
        s => s.parse().map_err(|_| "bad uptime_seconds".to_string())?,
    };
    let saturation = match scalar(text, "queue_saturation")?.as_str() {
        "null" => f64::NAN,
        s => s.parse().map_err(|_| "bad queue_saturation".to_string())?,
    };
    let class_depths: Vec<u64> = section(text, "\"class_queue_depth\":[", ']')?
        .split(',')
        .map(|t| t.trim().parse().map_err(|_| "bad class depth".to_string()))
        .collect::<Result<_, String>>()?;
    let class_queue_depth: [u64; 3] = class_depths
        .try_into()
        .map_err(|_| "class_queue_depth must have 3 entries".to_string())?;
    let mut outcomes = Vec::new();
    let outcome_section = section(text, "\"solve_outcomes\":[", ']')?;
    for obj in outcome_section.split('{').skip(1) {
        outcomes.push(SolveOutcome {
            solver: quoted(&scalar(obj, "solver")?)?,
            scenario: quoted(&scalar(obj, "scenario")?)?,
            completed: scalar(obj, "completed")?
                .parse()
                .map_err(|_| "bad outcome completed count".to_string())?,
            failed: scalar(obj, "failed")?
                .parse()
                .map_err(|_| "bad outcome failed count".to_string())?,
        });
    }
    // Older snapshot files predate the flight recorder; treat a missing
    // postmortems section as empty rather than a parse failure.
    let mut postmortems = Vec::new();
    if let Ok(pm_section) = section(text, "\"postmortems\":[", ']') {
        for obj in pm_section.split('{').skip(1) {
            postmortems.push(PostmortemCount {
                verdict: quoted(&scalar(obj, "verdict")?)?,
                count: scalar(obj, "count")?
                    .parse()
                    .map_err(|_| "bad postmortem count".to_string())?,
            });
        }
    }
    Ok(MetricsSnapshot {
        accepted: u("accepted")?,
        rejected_busy: u("rejected_busy")?,
        rejected_invalid: u("rejected_invalid")?,
        completed: u("completed")?,
        failed: u("failed")?,
        deadline_exceeded: u("deadline_exceeded")?,
        cache_hits: u("cache_hits")?,
        cache_misses: u("cache_misses")?,
        partitioner_invocations: u("partitioner_invocations")?,
        batches_executed: u("batches_executed")?,
        batched_jobs: u("batched_jobs")?,
        rhs_solved: u("rhs_solved")?,
        in_flight: u("in_flight")?,
        faults_injected: u("faults_injected")?,
        faults_detected: u("faults_detected")?,
        rollbacks: u("rollbacks")?,
        retries: u("retries")?,
        escalations: u("escalations")?,
        breaker_open: u("breaker_open")?,
        shed_total: u("shed_total")?,
        supervisor_kills: u("supervisor_kills")?,
        worker_restarts: u("worker_restarts")?,
        queue_depth: u("queue_depth")? as usize,
        class_queue_depth,
        queue_saturation: saturation,
        uptime_seconds: uptime,
        latency_bucket_bounds_us: bounds,
        latency_buckets: counts,
        latency_sum_us: u("latency_sum_us")?,
        solve_outcomes: outcomes,
        postmortems,
    })
}

/// Strip the surrounding double quotes from a raw scalar token.
fn quoted(token: &str) -> Result<String, String> {
    token
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected quoted string, got {token:?}"))
}

/// Extract the raw token following `"key":` (number, `null`, or a
/// quoted string), stopping at `,`, `}` or `]`.
fn scalar(text: &str, key: &str) -> Result<String, String> {
    let needle = format!("\"{key}\":");
    let at = text
        .find(&needle)
        .ok_or_else(|| format!("missing field {key:?}"))?;
    let rest = &text[at + needle.len()..];
    let end = rest
        .find([',', '}', ']'])
        .ok_or_else(|| format!("unterminated field {key:?}"))?;
    Ok(rest[..end].trim().to_string())
}

/// The substring between the first occurrence of `open` and the next
/// `close` after it.
fn section<'a>(text: &'a str, open: &str, close: char) -> Result<&'a str, String> {
    let at = text.find(open).ok_or_else(|| format!("missing {open:?}"))?;
    let rest = &text[at + open.len()..];
    let end = rest
        .find(close)
        .ok_or_else(|| format!("missing {close:?} after {open:?}"))?;
    Ok(&rest[..end])
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_service::Metrics;
    use std::sync::atomic::Ordering;
    use std::time::Duration;

    #[test]
    fn snapshot_json_round_trips_through_the_parser() {
        let m = Metrics::new();
        m.accepted.fetch_add(9, Ordering::Relaxed);
        m.rollbacks.fetch_add(2, Ordering::Relaxed);
        m.queue_depth.store(3, Ordering::Relaxed);
        m.observe_latency(Duration::from_micros(120));
        m.record_solve_outcome("cg", "rowwise", true);
        m.record_solve_outcome("gmres", "colwise", false);
        let snap = m.snapshot();
        let back = snapshot_from_json(&snap.to_json()).unwrap();
        assert_eq!(back.accepted, 9);
        assert_eq!(back.rollbacks, 2);
        assert_eq!(back.queue_depth, 3);
        assert_eq!(back.latency_buckets, snap.latency_buckets);
        assert_eq!(back.latency_bucket_bounds_us, snap.latency_bucket_bounds_us);
        assert_eq!(back.latency_sum_us, 120);
        assert_eq!(back.solve_outcomes, snap.solve_outcomes);
        assert!((back.uptime_seconds - snap.uptime_seconds).abs() < 1e-9);
        // And the parsed snapshot renders identical Prometheus text.
        assert_eq!(render_prometheus(&back), render_prometheus(&snap));
    }

    #[test]
    fn parser_rejects_garbage_and_missing_fields() {
        assert!(snapshot_from_json("not json").is_err());
        assert!(snapshot_from_json("{}").is_err());
        assert!(snapshot_from_json("{\"accepted\":1}").is_err());
    }

    #[test]
    fn exposition_has_counters_gauges_and_cumulative_buckets() {
        let m = Metrics::new();
        m.accepted.fetch_add(4, Ordering::Relaxed);
        m.completed.fetch_add(3, Ordering::Relaxed);
        m.queue_depth.store(2, Ordering::Relaxed);
        m.observe_latency(Duration::from_micros(50));
        m.observe_latency(Duration::from_micros(50));
        m.observe_latency(Duration::from_millis(5));
        let text = render_prometheus(&m.snapshot());

        assert!(text.contains("hpf_service_accepted_total 4"));
        assert!(text.contains("hpf_service_completed_total 3"));
        assert!(text.contains("hpf_service_queue_depth 2"));
        assert!(text.contains("# TYPE hpf_service_queue_depth gauge"));
        assert!(text.contains("# TYPE hpf_service_latency_seconds histogram"));
        // Buckets are cumulative: 2 in <=0.0001, still 2 at <=0.001,
        // 3 from <=0.01 onwards, and +Inf == _count == 3.
        assert!(text.contains("latency_seconds_bucket{le=\"0.0001\"} 2"));
        assert!(text.contains("latency_seconds_bucket{le=\"0.001\"} 2"));
        assert!(text.contains("latency_seconds_bucket{le=\"0.01\"} 3"));
        assert!(text.contains("latency_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("hpf_service_latency_seconds_count 3"));
        assert!(text.contains("hpf_service_uptime_seconds"));
    }

    #[test]
    fn every_metric_line_is_name_space_value() {
        let text = render_prometheus(&Metrics::new().snapshot());
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split(' ');
            let name = parts.next().unwrap();
            let value = parts.next().unwrap();
            assert!(parts.next().is_none(), "extra tokens in {line:?}");
            assert!(name.starts_with("hpf_service_"), "bad name in {line:?}");
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
        }
    }

    #[test]
    fn type_headers_precede_their_series() {
        let text = render_prometheus(&Metrics::new().snapshot());
        let type_pos = text.find("# TYPE hpf_service_accepted_total").unwrap();
        let series_pos = text.find("\nhpf_service_accepted_total ").unwrap();
        assert!(type_pos < series_pos);
    }

    /// Pull the cumulative histogram out of an exposition: `(le, count)`
    /// per bucket line, plus the `_sum` and `_count` series.
    fn scrape_histogram(text: &str) -> (Vec<(f64, u64)>, f64, u64) {
        let mut buckets = Vec::new();
        let mut sum = f64::NAN;
        let mut count = 0;
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.split_once(' ').unwrap();
            if let Some(label) = name
                .strip_prefix("hpf_service_latency_seconds_bucket{le=\"")
                .and_then(|r| r.strip_suffix("\"}"))
            {
                let le = if label == "+Inf" {
                    f64::INFINITY
                } else {
                    label.parse().unwrap()
                };
                buckets.push((le, value.parse().unwrap()));
            } else if name == "hpf_service_latency_seconds_sum" {
                sum = value.parse().unwrap();
            } else if name == "hpf_service_latency_seconds_count" {
                count = value.parse().unwrap();
            }
        }
        (buckets, sum, count)
    }

    #[test]
    fn histogram_ends_in_inf_and_is_cumulative_and_monotone() {
        let m = Metrics::new();
        m.observe_latency(Duration::from_micros(40));
        m.observe_latency(Duration::from_micros(700));
        m.observe_latency(Duration::from_secs(30)); // lands in +Inf only
        let (buckets, sum, count) = scrape_histogram(&render_prometheus(&m.snapshot()));
        assert!(!buckets.is_empty());
        let (last_le, last_count) = *buckets.last().unwrap();
        assert!(
            last_le.is_infinite(),
            "exposition must end in a +Inf bucket"
        );
        // Bounds strictly increase and counts never decrease.
        for pair in buckets.windows(2) {
            assert!(
                pair[0].0 < pair[1].0,
                "le bounds not increasing: {buckets:?}"
            );
            assert!(pair[0].1 <= pair[1].1, "counts not cumulative: {buckets:?}");
        }
        // +Inf bucket equals _count equals total observations.
        assert_eq!(last_count, 3);
        assert_eq!(count, 3);
        // _sum is consistent with what was observed (seconds).
        let expected = 40e-6 + 700e-6 + 30.0;
        assert!((sum - expected).abs() < 1e-9, "sum {sum} vs {expected}");
    }

    #[test]
    fn scraped_exposition_parses_and_labels_are_wellformed() {
        let m = Metrics::new();
        m.record_solve_outcome("bicgstab", "e25 col", true);
        m.observe_latency(Duration::from_micros(5));
        let text = render_prometheus(&m.snapshot());
        // The labeled series is present, with the space sanitized out of
        // the scenario value so line-oriented parsers stay happy.
        assert!(text.contains(
            "hpf_service_solve_completed_total{solver=\"bicgstab\",scenario=\"e25_col\"} 1"
        ));
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.split_once(' ').expect("name SP value");
            assert!(name.starts_with("hpf_service_"), "{line:?}");
            if let Some(open) = name.find('{') {
                assert!(name.ends_with('}'), "unclosed label set in {line:?}");
                for pair in name[open + 1..name.len() - 1].split(',') {
                    let (k, v) = pair.split_once('=').expect("k=\"v\" label");
                    assert!(!k.is_empty());
                    assert!(v.starts_with('"') && v.ends_with('"'), "{line:?}");
                }
            }
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
        }
    }
}
