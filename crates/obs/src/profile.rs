//! Continuous span profiling: per-span-path self-time aggregation and
//! collapsed-stack (flamegraph) export.
//!
//! Every machine event is a *leaf* cost recorded at the thread's
//! current span path (`trace=…/job=…/solve/iter=12/matvec`), so summing
//! event times per path is exactly a self-time profile — no parent/child
//! subtraction needed. To make profiles aggregate across requests and
//! iterations, numeric span parameters are **normalized**: `iter=12` →
//! `iter=*`, `job=7` → `job=*`, `trace=00c0ffee` → `trace=*`. What
//! remains is the program *shape* — and its hottest paths, which the
//! top-k table ranks and the collapsed-stack export hands to any
//! flamegraph renderer (`frame;frame;frame <microseconds>` per line).
//!
//! The profiler feeds from either end of the pipeline: a post-hoc
//! [`hpf_machine::Trace`] (`trace-report --format flame`) or the live
//! bus (`trace-report --follow`), one event at a time.

use std::collections::HashMap;

/// Replace the value of numeric/hex `key=value` span segments with `*`
/// so paths aggregate across iterations, jobs, and requests.
pub fn normalize_path(span: &str) -> String {
    if span.is_empty() {
        return String::new();
    }
    span.split('/')
        .map(normalize_segment)
        .collect::<Vec<_>>()
        .join("/")
}

fn normalize_segment(seg: &str) -> String {
    if let Some((key, value)) = seg.split_once('=') {
        let numeric = !value.is_empty() && value.bytes().all(|b| b.is_ascii_hexdigit());
        if numeric {
            return format!("{key}=*");
        }
    }
    seg.to_string()
}

/// One aggregated hot-span entry.
#[derive(Debug, Clone, PartialEq)]
pub struct HotSpan {
    /// Normalized frames joined with `;` (collapsed-stack order:
    /// root first, leaf label last).
    pub stack: String,
    /// Total self time attributed to this stack, simulated seconds.
    pub self_s: f64,
    /// Number of events aggregated into it.
    pub events: u64,
}

/// Self-time aggregation by normalized span path + event label.
#[derive(Debug, Default)]
pub struct SpanProfile {
    stacks: HashMap<String, (f64, u64)>,
    total_s: f64,
}

impl SpanProfile {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one leaf cost: `span` is the raw (un-normalized) span
    /// path, `label` the event label (becomes the leaf frame), `time_s`
    /// the event's cost in simulated seconds.
    pub fn record(&mut self, span: &str, label: &str, time_s: f64) {
        let mut stack = normalize_path(span);
        if !label.is_empty() {
            if !stack.is_empty() {
                stack.push(';');
            }
            stack.push_str(label);
        }
        if stack.is_empty() {
            stack.push_str("(unattributed)");
        }
        let entry = self
            .stacks
            .entry(stack.replace('/', ";"))
            .or_insert((0.0, 0));
        entry.0 += time_s;
        entry.1 += 1;
        self.total_s += time_s;
    }

    /// Aggregate a whole post-hoc trace.
    pub fn from_trace(trace: &hpf_machine::Trace) -> Self {
        let mut p = SpanProfile::new();
        for e in trace.events() {
            p.record(&e.span, &e.label, e.time);
        }
        p
    }

    /// Feed one live bus event (machine-origin events only; service
    /// lifecycle events carry no span cost).
    pub fn record_bus_event(&mut self, e: &crate::bus::BusEvent) {
        if e.origin == crate::bus::BusOrigin::Machine {
            self.record(&e.span, &e.label, e.time_s);
        }
    }

    /// Total self time across all stacks, simulated seconds.
    pub fn total_s(&self) -> f64 {
        self.total_s
    }

    /// Distinct aggregated stacks.
    pub fn len(&self) -> usize {
        self.stacks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.stacks.is_empty()
    }

    /// The `k` hottest stacks by self time (ties broken by stack name
    /// for determinism).
    pub fn top_k(&self, k: usize) -> Vec<HotSpan> {
        let mut all: Vec<HotSpan> = self
            .stacks
            .iter()
            .map(|(stack, &(self_s, events))| HotSpan {
                stack: stack.clone(),
                self_s,
                events,
            })
            .collect();
        all.sort_by(|a, b| {
            b.self_s
                .partial_cmp(&a.self_s)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.stack.cmp(&b.stack))
        });
        all.truncate(k);
        all
    }

    /// Collapsed-stack export: one `frames <value>` line per stack,
    /// value in integer microseconds (the unit flamegraph renderers
    /// expect), sorted by stack name for byte-stable output. Stacks
    /// rounding to 0 µs are kept at 1 so no recorded path vanishes.
    pub fn collapsed(&self) -> String {
        let mut lines: Vec<String> = self
            .stacks
            .iter()
            .map(|(stack, &(self_s, _))| {
                let us = (self_s * 1e6).round() as u64;
                format!("{} {}", stack, us.max(1))
            })
            .collect();
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// Human-readable top-k table (the `--follow` refresh and the
    /// `flame` format's summary footer).
    pub fn render_top(&self, k: usize) -> String {
        let mut out = String::from("hot spans (self time):\n");
        let top = self.top_k(k);
        if top.is_empty() {
            out.push_str("  (no events)\n");
            return out;
        }
        for h in &top {
            let pct = if self.total_s > 0.0 {
                100.0 * h.self_s / self.total_s
            } else {
                0.0
            };
            out.push_str(&format!(
                "  {:>10.1} us {:>5.1}% {:>8} ev  {}\n",
                h.self_s * 1e6,
                pct,
                h.events,
                h.stack
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_stars_numeric_parameters_only() {
        assert_eq!(
            normalize_path("trace=00c0ffee/job=7/solve/iter=12/matvec"),
            "trace=*/job=*/solve/iter=*/matvec"
        );
        assert_eq!(normalize_path("level=2/smooth"), "level=*/smooth");
        assert_eq!(normalize_path("mode=fast"), "mode=fast", "non-numeric kept");
        assert_eq!(normalize_path(""), "");
    }

    #[test]
    fn self_time_aggregates_across_iterations() {
        let mut p = SpanProfile::new();
        for i in 0..10 {
            p.record(&format!("solve/iter={i}/matvec"), "halo", 2e-3);
            p.record(&format!("solve/iter={i}/dot"), "dot-merge", 1e-3);
        }
        assert_eq!(p.len(), 2);
        let top = p.top_k(10);
        assert_eq!(top[0].stack, "solve;iter=*;matvec;halo");
        assert!((top[0].self_s - 2e-2).abs() < 1e-12);
        assert_eq!(top[0].events, 10);
        assert_eq!(top[1].stack, "solve;iter=*;dot;dot-merge");
        assert!((p.total_s() - 3e-2).abs() < 1e-12);
    }

    #[test]
    fn collapsed_output_is_flamegraph_shaped_and_stable() {
        let mut p = SpanProfile::new();
        p.record("solve/iter=3/matvec", "halo", 1.5e-3);
        p.record("solve/iter=4/matvec", "halo", 0.5e-3);
        p.record("solve/setup", "partition", 1e-4);
        let collapsed = p.collapsed();
        let lines: Vec<&str> = collapsed.lines().collect();
        assert_eq!(lines.len(), 2);
        // Sorted by stack, "<frames> <integer-us>" per line.
        assert_eq!(lines[0], "solve;iter=*;matvec;halo 2000");
        assert_eq!(lines[1], "solve;setup;partition 100");
        for line in lines {
            let (_, value) = line.rsplit_once(' ').unwrap();
            value.parse::<u64>().expect("integer sample value");
        }
        assert!(collapsed.ends_with('\n'));
    }

    #[test]
    fn zero_cost_paths_are_kept_at_one_microsecond() {
        let mut p = SpanProfile::new();
        p.record("solve/fault", "fault:stall", 0.0);
        assert_eq!(p.collapsed(), "solve;fault;fault:stall 1\n");
    }

    #[test]
    fn events_without_spans_fall_into_unattributed() {
        let mut p = SpanProfile::new();
        p.record("", "", 1e-3);
        assert_eq!(p.top_k(1)[0].stack, "(unattributed)");
        p.record("", "barrier", 1e-3);
        assert!(p.stacks.contains_key("barrier"));
    }

    #[test]
    fn from_trace_matches_manual_feed_and_finds_matvec_hot() {
        use hpf_machine::{span, Machine};
        let mut m = Machine::hypercube(4);
        {
            let _s = span::enter("solve");
            for i in 0..5 {
                let _it = span::enter(format!("iter={i}"));
                {
                    let _mv = span::enter("matvec");
                    m.compute_uniform(100_000, "local");
                }
                let _d = span::enter("dot");
                m.allreduce(1, "dot-merge");
            }
        }
        let p = SpanProfile::from_trace(m.trace());
        let top = p.top_k(1);
        assert!(
            top[0].stack.contains("matvec"),
            "matvec must dominate, got {}",
            top[0].stack
        );
        assert!(p.total_s() > 0.0);
    }

    #[test]
    fn render_top_shows_percentages() {
        let mut p = SpanProfile::new();
        p.record("a", "x", 3e-3);
        p.record("b", "y", 1e-3);
        let out = p.render_top(2);
        assert!(out.contains("75.0%"), "{out}");
        assert!(out.contains("a;x"), "{out}");
        assert!(SpanProfile::new().render_top(3).contains("(no events)"));
    }
}
