//! # hpf-core — the HPF data-parallel model for CG solvers
//!
//! The primary contribution of the reproduced paper (*"High Performance
//! Fortran and Possible Extensions to support Conjugate Gradient
//! Algorithms"*, Dincer/Hawick/Choudhary/Fox, NPAC SCCS-703 / HPDC'96)
//! is an analysis of how HPF's data-parallel model expresses CG's three
//! operation classes, where the language falls short for sparse storage,
//! and what extensions would fix it. This crate implements all of it:
//!
//! * [`vector::DistVector`] — distributed vectors with the HPF
//!   intrinsics: SAXPY-class parallel array assignments (`O(n/N_P)`,
//!   zero communication) and `DOT_PRODUCT` (local products +
//!   `t_startup·log N_P` hypercube merge);
//! * [`forall`] — real `FORALL` semantics (all RHS before any LHS,
//!   many-to-one rejected) and Bernstein-condition checking for
//!   `INDEPENDENT` loops;
//! * [`matvec`] — the Section 4 partitioning scenarios: row-wise
//!   `(BLOCK,*)` CSR with its all-to-all broadcast (and the remote
//!   `a`/`col` fetches of naive element-block layouts), and column-wise
//!   `(*,BLOCK)` CSC in both the serial form and the temp-2D + `SUM`
//!   workaround;
//! * [`ext`] — the proposed extensions: `PRIVATE ... WITH MERGE`,
//!   `ON PROCESSOR(f(i))`, inspector–executor schedules, and the
//!   `SPARSE_MATRIX` trio directive with load-balancing partitioners;
//! * [`spmd_baseline`] — the hand-coded message-passing comparison.

pub mod ext;
pub mod forall;
pub mod grid;
pub mod matvec;
pub mod spmd_baseline;
pub mod vector;

pub use forall::{
    bernstein_check, forall_assign, DependenceViolation, ForallError, IterationAccess,
};
pub use grid::{Checkerboard, CheckerboardStats, ProcGrid2D};
pub use matvec::{ColwiseCsc, DataArrayLayout, MatvecStats, RowwiseCsr};
pub use vector::DistVector;
