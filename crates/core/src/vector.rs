//! Distributed vectors and the HPF vector intrinsics.
//!
//! The paper's CG iteration needs exactly three vector-operation classes
//! (Section 2): SAXPY-class updates (`x = x + alpha*p`, `p = beta*p + r`),
//! inner products (`DOT_PRODUCT(r, r)`), and the matrix–vector multiply.
//! This module provides the first two over [`DistVector`]s:
//!
//! * SAXPY/SAYPX are HPF "parallel array assignments": with all operands
//!   aligned they run in `O(n/N_P)` with **zero** communication;
//! * `DOT_PRODUCT` does its element-wise multiplies locally and pays one
//!   scalar all-reduce merge — `t_startup * log N_P` on the hypercube.

use hpf_dist::ArrayDescriptor;
use hpf_machine::Machine;

/// A distributed 1-D array of `f64` with real per-processor local data.
///
/// ```
/// use hpf_core::DistVector;
/// use hpf_dist::ArrayDescriptor;
/// use hpf_machine::Machine;
///
/// let mut m = Machine::hypercube(4);
/// let d = ArrayDescriptor::block(8, 4);
/// let mut y = DistVector::constant(d.clone(), 1.0);
/// let x = DistVector::from_global(d, &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
/// y.axpy(&mut m, 2.0, &x);                 // y = y + 2x: zero communication
/// assert_eq!(y.get(3), 7.0);
/// let s = y.dot(&mut m, &y);               // one t_s*log(NP) merge
/// assert!(s > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DistVector {
    desc: ArrayDescriptor,
    local: Vec<Vec<f64>>,
}

impl DistVector {
    /// Distribute a global vector according to `desc`.
    pub fn from_global(desc: ArrayDescriptor, global: &[f64]) -> Self {
        assert_eq!(desc.len(), global.len(), "descriptor/data length mismatch");
        let local = (0..desc.np())
            .map(|p| desc.global_indices(p).iter().map(|&g| global[g]).collect())
            .collect();
        DistVector { desc, local }
    }

    /// All-zero distributed vector.
    pub fn zeros(desc: ArrayDescriptor) -> Self {
        let local = (0..desc.np())
            .map(|p| vec![0.0; desc.local_len(p)])
            .collect();
        DistVector { desc, local }
    }

    /// Constant-filled distributed vector.
    pub fn constant(desc: ArrayDescriptor, value: f64) -> Self {
        let local = (0..desc.np())
            .map(|p| vec![value; desc.local_len(p)])
            .collect();
        DistVector { desc, local }
    }

    pub fn descriptor(&self) -> &ArrayDescriptor {
        &self.desc
    }

    pub fn len(&self) -> usize {
        self.desc.len()
    }

    pub fn is_empty(&self) -> bool {
        self.desc.is_empty()
    }

    /// Local part of processor `p`.
    pub fn local(&self, p: usize) -> &[f64] {
        &self.local[p]
    }

    /// Mutable local part of processor `p`.
    pub fn local_mut(&mut self, p: usize) -> &mut Vec<f64> {
        &mut self.local[p]
    }

    /// Gather the vector back to a global array (test/inspection path;
    /// does not charge the machine).
    pub fn to_global(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.desc.len()];
        for p in 0..self.desc.np() {
            for (off, &g) in self.desc.global_indices(p).iter().enumerate() {
                out[g] = self.local[p][off];
            }
        }
        out
    }

    /// Read one global element (owner lookup; free, for tests).
    pub fn get(&self, i: usize) -> f64 {
        let p = self.desc.owner(i);
        self.local[p][self.desc.local_offset(i)]
    }

    fn assert_aligned(&self, other: &DistVector, op: &str) {
        assert!(
            self.desc.same_layout(other.descriptor()),
            "{op}: operands must be aligned (identical layouts); \
             realign with ALIGN/REDISTRIBUTE first"
        );
    }

    /// Per-processor local lengths (the flop distribution of element-wise
    /// ops).
    fn local_flops(&self, per_element: usize) -> Vec<usize> {
        (0..self.desc.np())
            .map(|p| per_element * self.local[p].len())
            .collect()
    }

    // ------------------------------------------------------------------
    // HPF parallel array assignments (communication-free when aligned)
    // ------------------------------------------------------------------

    /// `self = self + alpha * x` — the SAXPY of the paper's
    /// `x = x + alpha*p` / `r = r - alpha*q` lines.
    pub fn axpy(&mut self, machine: &mut Machine, alpha: f64, x: &DistVector) {
        self.assert_aligned(x, "axpy");
        for p in 0..self.desc.np() {
            for (s, &v) in self.local[p].iter_mut().zip(x.local[p].iter()) {
                *s += alpha * v;
            }
        }
        let flops = self.local_flops(2);
        machine.compute_all(&flops, "saxpy");
    }

    /// `self = beta * self + x` — the SAYPX of the paper's
    /// `p = beta*p + r` line.
    pub fn aypx(&mut self, machine: &mut Machine, beta: f64, x: &DistVector) {
        self.assert_aligned(x, "aypx");
        for p in 0..self.desc.np() {
            for (s, &v) in self.local[p].iter_mut().zip(x.local[p].iter()) {
                *s = beta * *s + v;
            }
        }
        let flops = self.local_flops(2);
        machine.compute_all(&flops, "saypx");
    }

    /// `self = alpha * self`.
    pub fn scale(&mut self, machine: &mut Machine, alpha: f64) {
        for p in 0..self.desc.np() {
            for s in self.local[p].iter_mut() {
                *s *= alpha;
            }
        }
        let flops = self.local_flops(1);
        machine.compute_all(&flops, "scale");
    }

    /// Element-wise copy (aligned, communication-free).
    pub fn copy_from(&mut self, other: &DistVector) {
        self.assert_aligned(other, "copy");
        for p in 0..self.desc.np() {
            self.local[p].clone_from(&other.local[p]);
        }
    }

    /// Set every element to `v` (HPF `q = 0.0` style array assignment).
    pub fn fill(&mut self, v: f64) {
        for part in &mut self.local {
            part.iter_mut().for_each(|x| *x = v);
        }
    }

    /// Element-wise combine with an arbitrary function (aligned).
    pub fn zip_apply(
        &mut self,
        machine: &mut Machine,
        other: &DistVector,
        flops_per_element: usize,
        label: &str,
        f: impl Fn(f64, f64) -> f64,
    ) {
        self.assert_aligned(other, "zip_apply");
        for p in 0..self.desc.np() {
            for (s, &v) in self.local[p].iter_mut().zip(other.local[p].iter()) {
                *s = f(*s, v);
            }
        }
        let flops = self.local_flops(flops_per_element);
        machine.compute_all(&flops, label);
    }

    // ------------------------------------------------------------------
    // Intrinsics with a merge phase
    // ------------------------------------------------------------------

    /// HPF `DOT_PRODUCT(self, other)`.
    ///
    /// "The element-wise multiplications in the inner-product operations
    /// can be performed locally without any communication overhead while
    /// the merge phase for adding up the partial results from processors
    /// involves communication overhead." — local phase `O(n/N_P)`, merge
    /// `t_startup * log N_P` on the hypercube.
    pub fn dot(&self, machine: &mut Machine, other: &DistVector) -> f64 {
        self.assert_aligned(other, "dot");
        let mut partials = Vec::with_capacity(self.desc.np());
        for p in 0..self.desc.np() {
            let s: f64 = self.local[p]
                .iter()
                .zip(other.local[p].iter())
                .map(|(a, b)| a * b)
                .sum();
            partials.push(s);
        }
        let flops = self.local_flops(2);
        machine.compute_all(&flops, "dot-local");
        machine.allreduce(1, "dot-merge");
        // Deterministic merge order: processor rank order. The merged
        // scalar passes through the fault layer: an armed corruption
        // (bit flip, crash) lands here, exactly where a real machine
        // would deliver a damaged reduction result.
        machine.corrupt_scalar(partials.iter().sum())
    }

    /// HPF `SUM(self)` intrinsic: local sums + scalar merge.
    pub fn sum(&self, machine: &mut Machine) -> f64 {
        let mut total = 0.0;
        for p in 0..self.desc.np() {
            total += self.local[p].iter().sum::<f64>();
        }
        let flops = self.local_flops(1);
        machine.compute_all(&flops, "sum-local");
        machine.allreduce(1, "sum-merge");
        machine.corrupt_scalar(total)
    }

    /// Euclidean norm via `DOT_PRODUCT` (plus one scalar sqrt).
    pub fn norm2(&self, machine: &mut Machine) -> f64 {
        self.dot(machine, &self.clone()).sqrt()
    }

    /// Replicate the whole vector on every processor via an all-to-all
    /// broadcast (allgather) — the operation Scenario 1's matvec needs.
    /// Returns the replicated global array and charges
    /// `t_startup*log NP + t_word*(NP-1)*n/NP`.
    pub fn allgather(&self, machine: &mut Machine, label: &str) -> Vec<f64> {
        let words_each = self.desc.len().div_ceil(self.desc.np().max(1));
        machine.allgather(words_each, label);
        self.to_global()
    }

    /// `!HPF$ REDISTRIBUTE` at the data level: move this vector to a new
    /// layout, performing the real element movement and charging the
    /// machine with the exact processor-to-processor traffic the change
    /// induces. "Whenever its distribution is changed, the others
    /// [aligned with it] are also automatically redistributed" — callers
    /// redistribute every member of an alignment group together.
    pub fn redistribute(&mut self, machine: &mut Machine, to: ArrayDescriptor, label: &str) {
        assert_eq!(self.desc.len(), to.len(), "redistribute length mismatch");
        assert_eq!(
            self.desc.np(),
            to.np(),
            "redistribute processor-count mismatch"
        );
        if self.desc.same_layout(&to) {
            self.desc = to;
            return;
        }
        hpf_dist::redistribute::redistribute(machine, &self.desc, &to, label);
        self.local = hpf_dist::redistribute::permute_local_data(&self.desc, &to, &self.local);
        self.desc = to;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_machine::{CostModel, EventKind, Topology};

    fn machine(np: usize) -> Machine {
        Machine::new(np, Topology::Hypercube, CostModel::mpp_1995())
    }

    fn vec_of(n: usize, f: impl Fn(usize) -> f64) -> Vec<f64> {
        (0..n).map(f).collect()
    }

    #[test]
    fn roundtrip_block_and_cyclic() {
        let g = vec_of(10, |i| i as f64);
        for desc in [
            ArrayDescriptor::block(10, 4),
            ArrayDescriptor::cyclic(10, 4),
        ] {
            let v = DistVector::from_global(desc, &g);
            assert_eq!(v.to_global(), g);
            assert_eq!(v.get(7), 7.0);
        }
    }

    #[test]
    fn axpy_matches_serial_and_is_comm_free() {
        let mut m = machine(4);
        let d = ArrayDescriptor::block(100, 4);
        let mut y = DistVector::from_global(d.clone(), &vec_of(100, |i| i as f64));
        let x = DistVector::from_global(d, &vec_of(100, |i| 2.0 * i as f64));
        y.axpy(&mut m, 0.5, &x);
        assert_eq!(y.to_global(), vec_of(100, |i| 2.0 * i as f64));
        // Zero communication, only compute events.
        assert_eq!(m.trace().total_comm_words(), 0);
        assert_eq!(m.trace().count(EventKind::Compute), 1);
        assert_eq!(m.total_flops(), 200);
    }

    #[test]
    fn aypx_is_the_papers_saypx() {
        let mut m = machine(2);
        let d = ArrayDescriptor::block(6, 2);
        let mut p = DistVector::from_global(d.clone(), &vec_of(6, |i| i as f64));
        let r = DistVector::constant(d, 1.0);
        p.aypx(&mut m, 3.0, &r); // p = 3p + r
        assert_eq!(p.to_global(), vec_of(6, |i| 3.0 * i as f64 + 1.0));
    }

    #[test]
    fn dot_matches_serial_and_charges_merge() {
        let mut m = machine(8);
        let d = ArrayDescriptor::block(64, 8);
        let a = DistVector::from_global(d.clone(), &vec_of(64, |i| (i % 5) as f64));
        let b = DistVector::from_global(d, &vec_of(64, |i| (i % 3) as f64));
        let got = a.dot(&mut m, &b);
        let want: f64 = (0..64).map(|i| ((i % 5) * (i % 3)) as f64).sum();
        assert!((got - want).abs() < 1e-12);
        // Exactly one scalar all-reduce merge.
        assert_eq!(m.trace().count(EventKind::AllReduce), 1);
        let merge = m.trace().with_label("dot-merge").next().unwrap();
        // On a hypercube of 8 the merge pays 3 startups.
        let c = *m.cost_model();
        let expect = 3.0 * (c.t_startup + c.t_word + c.t_flop);
        assert!((merge.time - expect).abs() < 1e-12);
    }

    #[test]
    fn saxpy_time_scales_inversely_with_np() {
        // O(n/NP): doubling NP halves the simulated SAXPY phase time.
        let n = 1 << 12;
        let mut t = Vec::new();
        for np in [2usize, 4, 8] {
            let mut m = machine(np);
            let d = ArrayDescriptor::block(n, np);
            let mut y = DistVector::zeros(d.clone());
            let x = DistVector::constant(d, 1.0);
            y.axpy(&mut m, 1.0, &x);
            t.push(m.elapsed());
        }
        assert!((t[0] / t[1] - 2.0).abs() < 1e-9);
        assert!((t[1] / t[2] - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_operands_rejected() {
        let mut m = machine(4);
        let mut y = DistVector::zeros(ArrayDescriptor::block(16, 4));
        let x = DistVector::zeros(ArrayDescriptor::cyclic(16, 4));
        y.axpy(&mut m, 1.0, &x);
    }

    #[test]
    fn sum_and_norm() {
        let mut m = machine(4);
        let d = ArrayDescriptor::cyclic(9, 4);
        let v = DistVector::from_global(d, &vec_of(9, |i| i as f64));
        assert_eq!(v.sum(&mut m), 36.0);
        let n = v.norm2(&mut m);
        let want: f64 = (0..9).map(|i| (i * i) as f64).sum::<f64>();
        assert!((n - want.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn allgather_replicates_and_charges() {
        let mut m = machine(4);
        let d = ArrayDescriptor::block(32, 4);
        let v = DistVector::from_global(d, &vec_of(32, |i| i as f64));
        let g = v.allgather(&mut m, "bcast-p");
        assert_eq!(g, vec_of(32, |i| i as f64));
        assert_eq!(m.trace().count(EventKind::AllGather), 1);
        assert!(m.trace().with_label("bcast-p").next().unwrap().words == 32);
    }

    #[test]
    fn fill_and_copy() {
        let d = ArrayDescriptor::block(8, 2);
        let mut a = DistVector::constant(d.clone(), 7.0);
        a.fill(0.0);
        assert_eq!(a.to_global(), vec![0.0; 8]);
        let b = DistVector::constant(d, 3.0);
        a.copy_from(&b);
        assert_eq!(a.to_global(), vec![3.0; 8]);
    }

    #[test]
    fn redistribute_moves_data_and_charges_machine() {
        let mut m = machine(4);
        let g = vec_of(16, |i| i as f64 * 3.0);
        let mut v = DistVector::from_global(ArrayDescriptor::block(16, 4), &g);
        v.redistribute(&mut m, ArrayDescriptor::cyclic(16, 4), "block->cyclic");
        // Data preserved under the new layout.
        assert_eq!(v.to_global(), g);
        assert_eq!(v.descriptor().spec(), &hpf_dist::DistSpec::Cyclic);
        assert_eq!(v.local(0), &[0.0, 12.0, 24.0, 36.0]);
        // The machine saw the exchange.
        assert_eq!(m.trace().count(EventKind::Redistribute), 1);
        assert!(m.total_words_sent() > 0);
        // Aligned ops work under the new layout.
        let w = DistVector::from_global(ArrayDescriptor::cyclic(16, 4), &g);
        assert!((v.dot(&mut m, &w) - g.iter().map(|x| x * x).sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn redistribute_to_same_layout_is_free() {
        let mut m = machine(4);
        let mut v = DistVector::constant(ArrayDescriptor::block(12, 4), 2.0);
        v.redistribute(&mut m, ArrayDescriptor::block(12, 4), "noop");
        assert_eq!(m.trace().len(), 0);
        assert_eq!(m.total_words_sent(), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn redistribute_length_checked() {
        let mut m = machine(2);
        let mut v = DistVector::zeros(ArrayDescriptor::block(8, 2));
        v.redistribute(&mut m, ArrayDescriptor::block(10, 2), "bad");
    }

    #[test]
    fn zip_apply_custom_op() {
        let mut m = machine(2);
        let d = ArrayDescriptor::block(4, 2);
        let mut a = DistVector::from_global(d.clone(), &[1.0, 2.0, 3.0, 4.0]);
        let b = DistVector::from_global(d, &[10.0, 20.0, 30.0, 40.0]);
        a.zip_apply(&mut m, &b, 1, "mul", |x, y| x * y);
        assert_eq!(a.to_global(), vec![10.0, 40.0, 90.0, 160.0]);
    }
}
