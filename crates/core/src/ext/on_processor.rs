//! The `ON PROCESSOR(f(i))` iteration-mapping extension (Section 5.1).
//!
//! "We propose using a ON PROCESSOR(f(i)) construct which will map
//! iteration i onto processor f(i). In this way we can specify the
//! iteration mapping at compile-time without any runtime overhead."
//!
//! The alternative — inspector–executor loops — "are costly in nature";
//! see [`crate::ext::inspector`] for that comparison. An
//! [`OnProcessor`] is a pure function from iteration index to processor,
//! evaluated with zero simulated communication.

/// A compile-time iteration→processor mapping.
#[derive(Clone)]
pub struct OnProcessor {
    np: usize,
    f: std::sync::Arc<dyn Fn(usize) -> usize + Send + Sync>,
    descr: String,
}

impl std::fmt::Debug for OnProcessor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OnProcessor({}, np={})", self.descr, self.np)
    }
}

impl OnProcessor {
    /// Arbitrary mapping `ON PROCESSOR(f(i))`. `f`'s results are clamped
    /// into `0..np`.
    pub fn new(
        np: usize,
        descr: impl Into<String>,
        f: impl Fn(usize) -> usize + Send + Sync + 'static,
    ) -> Self {
        assert!(np > 0);
        OnProcessor {
            np,
            f: std::sync::Arc::new(f),
            descr: descr.into(),
        }
    }

    /// The paper's example `ITERATION j ON PROCESSOR(j/np)` — block
    /// mapping of `n` iterations.
    pub fn block(n: usize, np: usize) -> Self {
        assert!(np > 0);
        let bs = n.div_ceil(np).max(1);
        Self::new(np, format!("j/{bs}"), move |j| j / bs)
    }

    /// Cyclic mapping `ON PROCESSOR(MOD(j, np))`.
    pub fn cyclic(np: usize) -> Self {
        Self::new(np, format!("j mod {np}"), move |j| j % np)
    }

    /// Mapping from an explicit owner table (e.g. a partitioner result).
    pub fn from_table(table: Vec<usize>, np: usize) -> Self {
        assert!(np > 0);
        assert!(table.iter().all(|&p| p < np), "owner out of range");
        Self::new(np, "table", move |j| table[j])
    }

    pub fn np(&self) -> usize {
        self.np
    }

    /// Processor executing iteration `j`.
    pub fn processor_of(&self, j: usize) -> usize {
        (self.f)(j).min(self.np - 1)
    }

    /// Partition `0..n_iters` into per-processor iteration lists —
    /// what the compiler would emit. Pure computation, no communication.
    pub fn iteration_lists(&self, n_iters: usize) -> Vec<Vec<usize>> {
        let mut lists = vec![Vec::new(); self.np];
        for j in 0..n_iters {
            lists[self.processor_of(j)].push(j);
        }
        lists
    }

    /// Per-processor iteration counts (load view).
    pub fn loads(&self, n_iters: usize) -> Vec<usize> {
        let mut l = vec![0usize; self.np];
        for j in 0..n_iters {
            l[self.processor_of(j)] += 1;
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_mapping_matches_paper_example() {
        // ITERATION j ON PROCESSOR(j/np-block-size)
        let m = OnProcessor::block(12, 4);
        assert_eq!(m.processor_of(0), 0);
        assert_eq!(m.processor_of(2), 0);
        assert_eq!(m.processor_of(3), 1);
        assert_eq!(m.processor_of(11), 3);
        assert_eq!(m.loads(12), vec![3, 3, 3, 3]);
    }

    #[test]
    fn block_mapping_clamps_tail() {
        let m = OnProcessor::block(10, 4); // bs = 3
        assert_eq!(m.processor_of(9), 3);
        assert_eq!(m.loads(10), vec![3, 3, 3, 1]);
    }

    #[test]
    fn cyclic_mapping() {
        let m = OnProcessor::cyclic(3);
        assert_eq!(m.processor_of(0), 0);
        assert_eq!(m.processor_of(4), 1);
        assert_eq!(m.loads(7), vec![3, 2, 2]);
    }

    #[test]
    fn custom_function_clamped() {
        let m = OnProcessor::new(4, "j*10", |j| j * 10);
        assert_eq!(m.processor_of(1), 3); // clamped to np-1
    }

    #[test]
    fn table_mapping() {
        let m = OnProcessor::from_table(vec![2, 0, 1, 2], 3);
        assert_eq!(m.processor_of(0), 2);
        assert_eq!(m.iteration_lists(4), vec![vec![1], vec![2], vec![0, 3]]);
    }

    #[test]
    #[should_panic(expected = "owner out of range")]
    fn table_validates_owners() {
        OnProcessor::from_table(vec![5], 3);
    }

    #[test]
    fn iteration_lists_cover_everything_once() {
        let m = OnProcessor::block(17, 5);
        let lists = m.iteration_lists(17);
        let mut all: Vec<usize> = lists.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..17).collect::<Vec<_>>());
    }

    #[test]
    fn debug_shows_description() {
        let m = OnProcessor::cyclic(2);
        assert!(format!("{m:?}").contains("mod 2"));
    }
}
