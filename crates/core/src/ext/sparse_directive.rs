//! The `SPARSE_MATRIX` directive (Section 5.2.2).
//!
//! ```fortran
//! !HPF$ SPARSE_MATRIX (CSR) :: smA(row, col, a)
//! ```
//!
//! "A sparse matrix definition puts a tight binding between the members
//! of this trio, whenever any one's distribution is changed, the other
//! two should be aligned accordingly. Furthermore, if an element of row
//! is to be accessed, most probably the elements it points to in col and
//! a will be also accessed, therefore compiler should generate code for
//! bringing them into memory if they are not local."
//!
//! [`SparseMatrixDirective`] binds the pointer/index/value trio of a
//! CSR or CSC matrix, derives consistent descriptors for all three
//! arrays from a single atom assignment, and co-redistributes them (the
//! `REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1` extension).

use hpf_dist::atoms::{AtomAssignment, AtomSpec};
use hpf_dist::graph::ConnectivityGraph;
use hpf_dist::partition;
use hpf_dist::{ArrayDescriptor, DistSpec, Partitioner};
use hpf_machine::Machine;

/// Which compressed scheme the trio uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SparseFormat {
    Csr,
    Csc,
}

/// The bound `smA(ptr, idx, a)` trio with consistent distributions.
#[derive(Debug, Clone)]
pub struct SparseMatrixDirective {
    pub format: SparseFormat,
    /// Atoms = rows (CSR) or columns (CSC), from the pointer array.
    atoms: AtomSpec,
    /// Current assignment of atoms to processors.
    assignment: AtomAssignment,
    np: usize,
}

/// Descriptors for the three arrays of the trio under the current
/// distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct TrioDescriptors {
    /// Pointer array (`row` for CSR, `col` for CSC): n+1 elements,
    /// distributed so each processor holds the pointers of its atoms.
    pub ptr: ArrayDescriptor,
    /// Index array (`col` for CSR, `row` for CSC): nz elements.
    pub idx: ArrayDescriptor,
    /// Value array `a`: nz elements, always aligned with `idx`.
    pub values: ArrayDescriptor,
}

impl SparseMatrixDirective {
    /// Declare the directive over a pointer array (length n+1). The
    /// initial distribution is `ATOM:BLOCK` — "these data structures are
    /// initially distributed using HPF's regular distribution
    /// primitives" then adjusted to atom boundaries.
    pub fn new(format: SparseFormat, ptr: &[usize], np: usize) -> Self {
        let atoms = AtomSpec::from_pointer_array(ptr);
        let assignment = AtomAssignment::atom_block(&atoms, np);
        SparseMatrixDirective {
            format,
            atoms,
            assignment,
            np,
        }
    }

    pub fn atoms(&self) -> &AtomSpec {
        &self.atoms
    }

    pub fn assignment(&self) -> &AtomAssignment {
        &self.assignment
    }

    /// Element loads (nnz per processor) under the current assignment.
    pub fn loads(&self) -> Vec<usize> {
        self.assignment.loads(&self.atoms)
    }

    /// Current imbalance.
    pub fn imbalance(&self) -> f64 {
        self.assignment.imbalance(&self.atoms)
    }

    /// Descriptors of the trio under the current (contiguous) assignment.
    /// Panics if the assignment is non-contiguous (cyclic atoms have no
    /// cut-point encoding).
    pub fn descriptors(&self) -> TrioDescriptors {
        let cuts = self
            .assignment
            .element_cuts(&self.atoms)
            .expect("contiguous assignment required for cut-point descriptors");
        let n_atoms = self.atoms.n_atoms();
        // Pointer array: atom i's pointer lives with atom i; the final
        // (n+1)th pointer goes to the last processor — the paper
        // explicitly sizes BLOCK "to ensure that the (n+1)'th element of
        // row is placed in the last processor".
        let mut atom_cuts = vec![0usize; self.np + 1];
        {
            let mut a = 0usize;
            for p in 0..self.np {
                atom_cuts[p] = a;
                while a < n_atoms && self.assignment.atom_owner[a] == p {
                    a += 1;
                }
            }
            atom_cuts[self.np] = n_atoms + 1; // +1: the trailing pointer
        }
        let ptr = ArrayDescriptor::new(n_atoms + 1, self.np, DistSpec::IrregularCuts(atom_cuts));
        let idx = ArrayDescriptor::new(
            self.atoms.total_elements(),
            self.np,
            DistSpec::IrregularCuts(cuts.clone()),
        );
        let values = ArrayDescriptor::new(
            self.atoms.total_elements(),
            self.np,
            DistSpec::IrregularCuts(cuts),
        );
        TrioDescriptors { ptr, idx, values }
    }

    /// `!EXT$ REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1`: apply
    /// the load-balancing partitioner, move all three arrays together,
    /// and return the words moved. "The compiler generates code for
    /// calling necessary partitioners to determine the new data
    /// distribution and arranging all dependent vectors accordingly."
    pub fn redistribute_balanced(&mut self, machine: &mut Machine) -> usize {
        let old = self.descriptors();
        self.assignment = partition::cg_balanced_partitioner_1(&self.atoms, self.np);
        let new = self.descriptors();
        let mut total = 0usize;
        // The trio moves as one: ptr + idx + a.
        for (from, to, label) in [
            (&old.ptr, &new.ptr, "smA-redist-ptr"),
            (&old.idx, &new.idx, "smA-redist-idx"),
            (&old.values, &new.values, "smA-redist-a"),
        ] {
            total += hpf_dist::redistribute::total_words(from, to);
            hpf_dist::redistribute::redistribute(machine, from, to, label);
        }
        total
    }

    /// `!EXT$ REDISTRIBUTE smA USING <partitioner>` — the pluggable
    /// generalisation of [`Self::redistribute_balanced`]: run any
    /// registered partitioner over the atom graph, move the trio to the
    /// layout it produces, and return the words moved. Scattered target
    /// layouts are lowered to contiguous cut points first (the trio's
    /// cut-point descriptors require contiguity), preserving the
    /// partitioner's per-processor load profile. Traffic is charged at
    /// atom granularity — `idx` + `a` per element plus the `ptr` entry
    /// per atom — under one `REDISTRIBUTE USING <name>` trace event.
    pub fn redistribute_using(
        &mut self,
        machine: &mut Machine,
        partitioner: &dyn Partitioner,
        graph: &ConnectivityGraph,
    ) -> usize {
        let target = partitioner.partition(&self.atoms, graph, self.np);
        let cuts = partition::contiguous_projection(&self.atoms, &target);
        let lowered = partition::assignment_from_cuts(&cuts, self.atoms.n_atoms());
        let traffic = hpf_dist::redistribute::atom_traffic_matrix(
            &self.atoms,
            &self.assignment,
            &lowered,
            2,
            1,
        );
        let words = traffic.iter().map(|row| row.iter().sum::<usize>()).sum();
        let label = format!("REDISTRIBUTE USING {}", partitioner.name());
        machine.exchange(&traffic, &label);
        self.assignment = lowered;
        words
    }

    /// Locality rule: accessing pointer element `i` implies the
    /// idx/value elements it points to are needed too. Returns those
    /// element ranges — "the compiler can exploit the locality rule by
    /// knowing the relation among the members of the trio."
    pub fn implied_elements(&self, atom: usize) -> std::ops::Range<usize> {
        self.atoms.atom_range(atom)
    }

    /// Check the invariant that idx/value elements of every atom are
    /// co-located with the atom's pointer entry.
    pub fn trio_is_consistent(&self) -> bool {
        let d = self.descriptors();
        (0..self.atoms.n_atoms()).all(|atom| {
            let p = d.ptr.owner(atom);
            self.implied_elements(atom)
                .all(|e| d.idx.owner(e) == p && d.values.owner(e) == p)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_machine::{CostModel, Topology};
    use hpf_sparse::{gen, CscMatrix};

    fn machine(np: usize) -> Machine {
        Machine::new(np, Topology::Hypercube, CostModel::mpp_1995())
    }

    #[test]
    fn trio_descriptors_are_consistent() {
        let a = gen::random_spd(32, 3, 5);
        let sm = SparseMatrixDirective::new(SparseFormat::Csr, a.row_ptr(), 4);
        assert!(sm.trio_is_consistent());
        let d = sm.descriptors();
        assert_eq!(d.ptr.len(), 33);
        assert_eq!(d.idx.len(), a.nnz());
        assert!(d.idx.same_layout(&d.values));
    }

    #[test]
    fn final_pointer_on_last_processor() {
        let a = gen::random_spd(16, 2, 1);
        let sm = SparseMatrixDirective::new(SparseFormat::Csr, a.row_ptr(), 4);
        let d = sm.descriptors();
        assert_eq!(d.ptr.owner(16), 3);
    }

    #[test]
    fn balanced_redistribution_improves_imbalance() {
        let a = gen::power_law_spd(200, 60, 1.0, 8);
        let csc = CscMatrix::from_csr(&a);
        let mut sm = SparseMatrixDirective::new(SparseFormat::Csc, csc.col_ptr(), 8);
        let before = sm.imbalance();
        let mut m = machine(8);
        let moved = sm.redistribute_balanced(&mut m);
        let after = sm.imbalance();
        assert!(after <= before, "imbalance {before} -> {after}");
        assert!(sm.trio_is_consistent());
        assert!(moved > 0, "irregular matrix should move data");
        // All three arrays moved together: 3 redistribute events.
        assert_eq!(m.trace().count(hpf_machine::EventKind::Redistribute), 3);
    }

    #[test]
    fn loads_sum_to_nnz() {
        let a = gen::random_spd(50, 4, 2);
        let sm = SparseMatrixDirective::new(SparseFormat::Csr, a.row_ptr(), 4);
        assert_eq!(sm.loads().iter().sum::<usize>(), a.nnz());
    }

    #[test]
    fn redistribute_using_lowers_scattered_layouts_and_labels_the_event() {
        // A partitioner that deliberately produces a scattered layout:
        // the directive must lower it to contiguous cuts with the same
        // per-processor load profile and keep the trio consistent.
        struct Cyclic;
        impl Partitioner for Cyclic {
            fn name(&self) -> &'static str {
                "test-cyclic"
            }
            fn partition(
                &self,
                spec: &AtomSpec,
                _graph: &ConnectivityGraph,
                np: usize,
            ) -> AtomAssignment {
                AtomAssignment::atom_cyclic(spec, np)
            }
        }

        let a = gen::power_law_spd(120, 30, 1.0, 4);
        let mut sm = SparseMatrixDirective::new(SparseFormat::Csr, a.row_ptr(), 4);
        let graph = ConnectivityGraph::from_pattern(a.n_rows(), a.row_ptr(), a.col_idx());
        let mut m = machine(4);
        let moved = sm.redistribute_using(&mut m, &Cyclic, &graph);
        assert!(moved > 0);
        assert!(sm.assignment().is_contiguous(), "lowered to cuts");
        assert!(sm.trio_is_consistent());
        let trace = m.trace();
        assert_eq!(trace.count(hpf_machine::EventKind::Redistribute), 1);
        assert_eq!(trace.events()[0].label, "REDISTRIBUTE USING test-cyclic");
    }

    #[test]
    fn implied_elements_match_pointer() {
        let ptr = vec![0usize, 3, 3, 8];
        let sm = SparseMatrixDirective::new(SparseFormat::Csr, &ptr, 2);
        assert_eq!(sm.implied_elements(0), 0..3);
        assert_eq!(sm.implied_elements(1), 3..3);
        assert_eq!(sm.implied_elements(2), 3..8);
    }
}
