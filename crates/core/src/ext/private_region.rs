//! The `PRIVATE ... WITH MERGE` extension (paper Section 5.1, Figure 5).
//!
//! ```fortran
//! q = 0.0
//! !EXT$ ITERATION j ON PROCESSOR(j/np), &
//! !EXT$ PRIVATE(q(n)) WITH MERGE(+), &
//! !EXT$ NEW(pj, k)
//! DO j = 1, n
//!   pj = p(j)
//!   DO k = col(j), col(j+1)-1
//!     q(row(k)) = q(row(k)) + A(k)*pj
//!   END DO
//! END DO
//! C -- private copies of q() are merged to a global q
//! ```
//!
//! "We propose a new mechanism which we call PRIVATE abstraction to allow
//! the program to fork copies of a data structure that are private to
//! each processor. ... The private variables are merged into a global
//! single copy again (WITH MERGE option) or discarded completely (WITH
//! DISCARD option) at the end of the loop (private region)."
//!
//! [`PrivateRegion`] forks one private array per processor, runs the
//! iteration space under an [`super::on_processor::OnProcessor`] mapping
//! with genuinely independent per-processor accumulation, then merges
//! (tree reduction, `log N_P` rounds of vector exchanges) or discards.

use crate::ext::on_processor::OnProcessor;
use hpf_machine::Machine;

/// What happens to the private copies at the end of the region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeOp {
    /// `WITH MERGE(+)` — element-wise sum into the global array.
    Sum,
    /// `WITH MERGE(MAX)`.
    Max,
    /// `WITH MERGE(MIN)`.
    Min,
    /// `WITH DISCARD` — private results are thrown away.
    Discard,
}

impl MergeOp {
    fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            MergeOp::Sum => a + b,
            MergeOp::Max => a.max(b),
            MergeOp::Min => a.min(b),
            MergeOp::Discard => a,
        }
    }

    /// Identity element of the merge.
    pub fn identity(self) -> f64 {
        match self {
            MergeOp::Sum => 0.0,
            MergeOp::Max => f64::NEG_INFINITY,
            MergeOp::Min => f64::INFINITY,
            MergeOp::Discard => 0.0,
        }
    }
}

/// Execution statistics of a private region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivateStats {
    /// Extra storage for the private copies: `N_P * n` words — the
    /// overhead the paper calls "somewhat unsatisfactory ... particularly
    /// if n >> N_P" for the manual workaround, which the language
    /// extension would manage automatically.
    pub private_storage_words: usize,
    /// Simulated time of the (parallel) loop body phase.
    pub loop_time: f64,
    /// Simulated time of the merge phase (0 for DISCARD).
    pub merge_time: f64,
}

/// A `PRIVATE(q(n)) WITH MERGE(op)` region over `n_iters` iterations.
///
/// ```
/// use hpf_core::ext::{MergeOp, OnProcessor, PrivateRegion};
/// use hpf_machine::Machine;
///
/// let mut m = Machine::hypercube(4);
/// // 8 iterations accumulate into 3 shared slots — illegal in FORALL,
/// // legal with a privatised q merged by (+).
/// let region = PrivateRegion::new(3, OnProcessor::cyclic(4), MergeOp::Sum);
/// let (q, stats) = region.run(&mut m, 8, |_| 1, |j, q| q[j % 3] += 1.0);
/// assert_eq!(q, vec![3.0, 3.0, 2.0]);
/// assert_eq!(stats.private_storage_words, 4 * 3);
/// ```
#[derive(Debug, Clone)]
pub struct PrivateRegion {
    /// Length of the privatised array.
    pub array_len: usize,
    /// Iteration-to-processor mapping (`ITERATION j ON PROCESSOR(f(j))`).
    pub mapping: OnProcessor,
    pub merge: MergeOp,
}

impl PrivateRegion {
    pub fn new(array_len: usize, mapping: OnProcessor, merge: MergeOp) -> Self {
        PrivateRegion {
            array_len,
            mapping,
            merge,
        }
    }

    /// Run the region: `body(j, &mut private)` is executed for every
    /// iteration `j`, accumulating into that processor's private copy;
    /// `flops_of(j)` charges the simulated cost of iteration `j` to its
    /// processor. Returns the merged global array (all-identity for
    /// `Discard`) and the stats.
    pub fn run(
        &self,
        machine: &mut Machine,
        n_iters: usize,
        flops_of: impl Fn(usize) -> usize,
        body: impl Fn(usize, &mut [f64]),
    ) -> (Vec<f64>, PrivateStats) {
        let np = machine.np();
        assert_eq!(self.mapping.np(), np, "mapping/machine size mismatch");
        let t0 = machine.elapsed();

        // Fork: one private copy per processor.
        let mut privates: Vec<Vec<f64>> = vec![vec![self.merge.identity(); self.array_len]; np];

        // Parallel loop: "the loop is then executed in parallel where
        // each iteration of the outer loop is assigned to a specific
        // processor and the operation of each processor is truly
        // independent of each other."
        let mut flops = vec![0usize; np];
        for j in 0..n_iters {
            let p = self.mapping.processor_of(j);
            body(j, &mut privates[p]);
            flops[p] += flops_of(j);
        }
        machine.compute_all(&flops, "private-loop");
        let loop_time = machine.elapsed() - t0;

        // Merge (or discard).
        let tm = machine.elapsed();
        let mut merged = vec![self.merge.identity(); self.array_len];
        if self.merge != MergeOp::Discard {
            // "A runtime library function similar to Fortran 90 SUM
            // intrinsic reduction function can provide the necessary
            // merging of these temporary values into a single vector
            // outside the loop."
            machine.allreduce(self.array_len, "private-merge");
            machine.compute_all(&vec![self.array_len; np], "private-merge-combine");
            for private in &privates {
                for (m, &v) in merged.iter_mut().zip(private.iter()) {
                    *m = self.merge.combine(*m, v);
                }
            }
        }
        let merge_time = machine.elapsed() - tm;

        let stats = PrivateStats {
            private_storage_words: np * self.array_len,
            loop_time,
            merge_time,
        };
        (merged, stats)
    }

    /// The paper's flagship use: parallel CSC matvec
    /// `q(row(k)) += a(k) * p(col-of-k)` with `q` privatised. Returns the
    /// merged `q`.
    pub fn csc_matvec(
        machine: &mut Machine,
        col_ptr: &[usize],
        row_idx: &[usize],
        values: &[f64],
        p: &[f64],
    ) -> (Vec<f64>, PrivateStats) {
        let n_cols = col_ptr.len() - 1;
        assert_eq!(p.len(), n_cols, "p length must match column count");
        let n_rows = row_idx.iter().copied().max().map_or(0, |m| m + 1);
        let np = machine.np();
        let region = PrivateRegion::new(n_rows, OnProcessor::block(n_cols, np), MergeOp::Sum);
        region.run(
            machine,
            n_cols,
            |j| 2 * (col_ptr[j + 1] - col_ptr[j]),
            |j, q_private| {
                let pj = p[j];
                for k in col_ptr[j]..col_ptr[j + 1] {
                    q_private[row_idx[k]] += values[k] * pj;
                }
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_machine::{CostModel, EventKind, Topology};
    use hpf_sparse::{gen, CscMatrix};

    fn machine(np: usize) -> Machine {
        Machine::new(np, Topology::Hypercube, CostModel::mpp_1995())
    }

    #[test]
    fn merge_sum_accumulates_across_processors() {
        let mut m = machine(4);
        let region = PrivateRegion::new(3, OnProcessor::cyclic(4), MergeOp::Sum);
        // 8 iterations, each adds 1 to element j % 3 — classic
        // many-to-one that FORALL would reject.
        let (merged, stats) = region.run(&mut m, 8, |_| 1, |j, q| q[j % 3] += 1.0);
        assert_eq!(merged, vec![3.0, 3.0, 2.0]);
        assert_eq!(stats.private_storage_words, 12);
        assert!(stats.merge_time > 0.0);
        assert_eq!(m.trace().count(EventKind::AllReduce), 1);
    }

    #[test]
    fn merge_max_and_min() {
        let mut m = machine(2);
        let region = PrivateRegion::new(1, OnProcessor::cyclic(2), MergeOp::Max);
        let (merged, _) = region.run(&mut m, 4, |_| 0, |j, q| q[0] = q[0].max(j as f64));
        assert_eq!(merged, vec![3.0]);

        let region = PrivateRegion::new(1, OnProcessor::cyclic(2), MergeOp::Min);
        let (merged, _) = region.run(&mut m, 4, |_| 0, |j, q| q[0] = q[0].min(-(j as f64)));
        assert_eq!(merged, vec![-3.0]);
    }

    #[test]
    fn discard_throws_away_results() {
        let mut m = machine(2);
        let region = PrivateRegion::new(2, OnProcessor::block(4, 2), MergeOp::Discard);
        let (merged, stats) = region.run(&mut m, 4, |_| 1, |_, q| q[0] += 1.0);
        assert_eq!(merged, vec![0.0, 0.0]);
        assert_eq!(stats.merge_time, 0.0);
        assert_eq!(m.trace().count(EventKind::AllReduce), 0);
    }

    #[test]
    fn csc_matvec_via_private_matches_serial() {
        let a = gen::random_spd(48, 4, 13);
        let csc = CscMatrix::from_csr(&a);
        let x: Vec<f64> = (0..48).map(|i| (i % 7) as f64 - 3.0).collect();
        let want = a.matvec(&x).unwrap();
        let mut m = machine(4);
        let (got, stats) =
            PrivateRegion::csc_matvec(&mut m, csc.col_ptr(), csc.row_idx(), csc.values(), &x);
        for (u, v) in got.iter().zip(want.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
        assert_eq!(stats.private_storage_words, 4 * 48);
    }

    #[test]
    fn private_loop_is_parallel_unlike_serial_csc() {
        // The whole point of the extension: the privatised loop's compute
        // phase is ~NP-fold faster than the serial Scenario 2 loop.
        let a = gen::random_spd(256, 6, 21);
        let csc = CscMatrix::from_csr(&a);
        let x = vec![1.0; 256];
        let np = 8;

        let mut m_priv = machine(np);
        let (_, stats) =
            PrivateRegion::csc_matvec(&mut m_priv, csc.col_ptr(), csc.row_idx(), csc.values(), &x);

        let mut m_serial = machine(np);
        let total_flops = 2 * csc.nnz();
        m_serial.compute_serial(total_flops, "serial-csc");
        let serial_time = m_serial.elapsed();

        assert!(
            stats.loop_time < serial_time / (np as f64 / 2.0),
            "private loop {} not ~{np}x faster than serial {}",
            stats.loop_time,
            serial_time
        );
    }

    #[test]
    fn storage_overhead_is_np_times_n() {
        let mut m = machine(8);
        let region = PrivateRegion::new(100, OnProcessor::block(100, 8), MergeOp::Sum);
        let (_, stats) = region.run(&mut m, 100, |_| 0, |_, _| {});
        assert_eq!(stats.private_storage_words, 800);
    }

    #[test]
    fn empty_region() {
        let mut m = machine(2);
        let region = PrivateRegion::new(0, OnProcessor::block(0, 2), MergeOp::Sum);
        let (merged, _) = region.run(&mut m, 0, |_| 0, |_, _| {});
        assert!(merged.is_empty());
    }
}
