//! The paper's proposed HPF-2 extensions (Section 5), implemented as
//! runtime mechanisms:
//!
//! * [`private_region`] — `PRIVATE(q(n)) WITH MERGE(+)/DISCARD`;
//! * [`on_processor`] — `ITERATION j ON PROCESSOR(f(j))` compile-time
//!   iteration mapping;
//! * [`inspector`] — the inspector–executor alternative (PARTI-style
//!   gather schedules with reuse), for cost comparison;
//! * [`sparse_directive`] — `SPARSE_MATRIX (CSR|CSC) :: smA(row,col,a)`
//!   trio binding and `REDISTRIBUTE ... USING` partitioners.

pub mod inspector;
pub mod on_processor;
pub mod private_region;
pub mod sparse_directive;

pub use inspector::GatherSchedule;
pub use on_processor::OnProcessor;
pub use private_region::{MergeOp, PrivateRegion, PrivateStats};
pub use sparse_directive::{SparseFormat, SparseMatrixDirective, TrioDescriptors};
