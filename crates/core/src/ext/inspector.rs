//! Inspector–executor gather schedules (PARTI-style).
//!
//! Section 5.1: "As the array q is accessed through a level of
//! indirection, the value of its index (i.e. row(k)) can be known only at
//! run-time. Inspector-executor mechanisms [Koelbel, Mehrotra, Saltz,
//! Berryman] which are costly in nature should be employed for the
//! determination of the owner of the lhs."
//!
//! The paper's position is that `ON PROCESSOR(f(i))` avoids this runtime
//! cost entirely, while noting that schedule *reuse* (Ponnusamy, Saltz,
//! Choudhary) amortises the inspector over repeated executor runs. Both
//! sides are implemented here so the trade-off can be measured:
//!
//! * [`GatherSchedule::build`] — the inspector: processors exchange the
//!   indirection indices they will read, translating them to owners
//!   (paying an all-to-all of index lists);
//! * [`GatherSchedule::execute`] — the executor: the pre-computed
//!   communication pattern moves exactly the needed elements.

use hpf_dist::ArrayDescriptor;
use hpf_machine::Machine;

/// A reusable communication schedule: for each (requester, owner) pair,
/// the global indices the owner must send.
#[derive(Debug, Clone)]
pub struct GatherSchedule {
    np: usize,
    /// `wants[p]` = global indices processor `p` reads (in request order).
    wants: Vec<Vec<usize>>,
    /// `send_lists[owner][requester]` = indices owner ships to requester.
    send_lists: Vec<Vec<Vec<usize>>>,
    /// Simulated time spent building the schedule (the inspector cost).
    pub inspector_time: f64,
    executions: usize,
}

impl GatherSchedule {
    /// Run the inspector: every processor analyses its indirection array
    /// (`wants[p]`, e.g. the `col(k)` values of its loop iterations),
    /// determines owners through the data descriptor, and exchanges
    /// request lists.
    pub fn build(
        machine: &mut Machine,
        data_desc: &ArrayDescriptor,
        wants: Vec<Vec<usize>>,
    ) -> Self {
        let np = machine.np();
        assert_eq!(wants.len(), np, "one request list per processor");
        let t0 = machine.elapsed();

        // Owner translation is local (descriptor arithmetic)…
        let mut send_lists = vec![vec![Vec::new(); np]; np];
        let mut request_words = vec![vec![0usize; np]; np];
        for (p, list) in wants.iter().enumerate() {
            for &g in list {
                let owner = data_desc.owner(g);
                if owner != p {
                    send_lists[owner][p].push(g);
                    // The request itself travels p -> owner (one word).
                    request_words[p][owner] += 1;
                }
            }
        }
        // …but the request lists must reach the owners: the inspector's
        // communication phase.
        machine.exchange(&request_words, "inspector-requests");
        // Plus descriptor/translation bookkeeping flops.
        let flops: Vec<usize> = wants.iter().map(|l| l.len()).collect();
        machine.compute_all(&flops, "inspector-translate");

        let inspector_time = machine.elapsed() - t0;
        GatherSchedule {
            np,
            wants,
            send_lists,
            inspector_time,
            executions: 0,
        }
    }

    /// Words each owner ships per execution.
    pub fn traffic_matrix(&self) -> Vec<Vec<usize>> {
        self.send_lists
            .iter()
            .map(|row| row.iter().map(|l| l.len()).collect())
            .collect()
    }

    /// Total remote words gathered per execution.
    pub fn remote_words(&self) -> usize {
        self.send_lists
            .iter()
            .flat_map(|row| row.iter())
            .map(|l| l.len())
            .sum()
    }

    /// Run the executor once: gather the requested values of the global
    /// `data` array to each processor. Returns, per processor, the values
    /// in the same order as its `wants` list.
    pub fn execute(&mut self, machine: &mut Machine, data: &[f64]) -> Vec<Vec<f64>> {
        assert_eq!(machine.np(), self.np);
        machine.exchange(&self.traffic_matrix(), "executor-gather");
        self.executions += 1;
        self.wants
            .iter()
            .map(|list| list.iter().map(|&g| data[g]).collect())
            .collect()
    }

    /// Number of executor runs so far (schedule reuse count).
    pub fn executions(&self) -> usize {
        self.executions
    }

    /// Amortised inspector cost per execution so far.
    pub fn amortised_inspector_time(&self) -> f64 {
        if self.executions == 0 {
            self.inspector_time
        } else {
            self.inspector_time / self.executions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_machine::{CostModel, Topology};

    fn machine(np: usize) -> Machine {
        Machine::new(np, Topology::Hypercube, CostModel::mpp_1995())
    }

    #[test]
    fn schedule_gathers_correct_values() {
        let mut m = machine(2);
        let desc = ArrayDescriptor::block(8, 2); // p0: 0..4, p1: 4..8
                                                 // p0 wants 5 and 1; p1 wants 0 and 7.
        let wants = vec![vec![5, 1], vec![0, 7]];
        let mut sched = GatherSchedule::build(&mut m, &desc, wants);
        let data: Vec<f64> = (0..8).map(|i| i as f64 * 10.0).collect();
        let got = sched.execute(&mut m, &data);
        assert_eq!(got[0], vec![50.0, 10.0]);
        assert_eq!(got[1], vec![0.0, 70.0]);
    }

    #[test]
    fn only_remote_indices_travel() {
        let mut m = machine(2);
        let desc = ArrayDescriptor::block(8, 2);
        // All requests local -> zero traffic.
        let sched = GatherSchedule::build(&mut m, &desc, vec![vec![0, 1, 2], vec![5, 6]]);
        assert_eq!(sched.remote_words(), 0);
        // One remote each.
        let mut m2 = machine(2);
        let sched2 = GatherSchedule::build(&mut m2, &desc, vec![vec![0, 4], vec![3]]);
        assert_eq!(sched2.remote_words(), 2);
        assert_eq!(sched2.traffic_matrix()[1][0], 1);
        assert_eq!(sched2.traffic_matrix()[0][1], 1);
    }

    #[test]
    fn inspector_cost_is_paid_once_and_amortised() {
        let mut m = machine(4);
        let desc = ArrayDescriptor::block(64, 4);
        // Every processor reads a stride of remote elements.
        let wants: Vec<Vec<usize>> = (0..4)
            .map(|p| (0..64).filter(|&g| desc.owner(g) != p).step_by(3).collect())
            .collect();
        let mut sched = GatherSchedule::build(&mut m, &desc, wants);
        assert!(sched.inspector_time > 0.0);
        let once = sched.amortised_inspector_time();
        let data = vec![1.0; 64];
        for _ in 0..10 {
            sched.execute(&mut m, &data);
        }
        assert_eq!(sched.executions(), 10);
        assert!(sched.amortised_inspector_time() < once / 9.0);
    }

    #[test]
    fn request_order_preserved() {
        let mut m = machine(2);
        let desc = ArrayDescriptor::cyclic(6, 2); // p0: 0,2,4; p1: 1,3,5
        let mut sched = GatherSchedule::build(&mut m, &desc, vec![vec![3, 1, 5], vec![]]);
        let data = vec![0.0, 10.0, 20.0, 30.0, 40.0, 50.0];
        let got = sched.execute(&mut m, &data);
        assert_eq!(got[0], vec![30.0, 10.0, 50.0]);
        assert!(got[1].is_empty());
    }

    #[test]
    #[should_panic(expected = "one request list per processor")]
    fn wrong_arity_rejected() {
        let mut m = machine(4);
        let desc = ArrayDescriptor::block(8, 4);
        GatherSchedule::build(&mut m, &desc, vec![vec![0]]);
    }
}
