//! Two-dimensional `(BLOCK, BLOCK)` matrix distribution — the ablation
//! Section 4's conclusion invites.
//!
//! The paper proves both 1-D stripings cost the same: "it is not
//! possible to reduce the communication time if the matrix is
//! partitioned into regular stripes either in a row-wise or column-wise
//! fashion." The classical escape (Kumar et al., *Introduction to
//! Parallel Computing* — the paper's reference [17]) is the 2-D
//! checkerboard: on a `√P x √P` processor grid,
//!
//! * the input vector is allgathered only within each *column group*
//!   (`√P` processors, `n/√P` elements), and
//! * the partial products are reduce-scattered within each *row group*,
//!
//! for a per-matvec communication of `2·t_s·log √P + O(t_c·n/√P)` versus
//! the 1-D `t_s·log P + t_c·n` — asymptotically less of both terms.
//! This module implements the dense checkerboard matvec on the simulated
//! machine so the crossover can be measured (experiment E16).

use crate::vector::DistVector;
use hpf_dist::ArrayDescriptor;
use hpf_machine::{EventKind, Machine};
use hpf_sparse::DenseMatrix;

/// A `√P x √P` processor grid over `P` processors (P must be a perfect
/// square).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcGrid2D {
    pub rows: usize,
    pub cols: usize,
}

impl ProcGrid2D {
    /// Square grid from a perfect-square processor count.
    pub fn square(np: usize) -> Option<Self> {
        let side = (np as f64).sqrt().round() as usize;
        if side * side == np {
            Some(ProcGrid2D {
                rows: side,
                cols: side,
            })
        } else {
            None
        }
    }

    pub fn np(&self) -> usize {
        self.rows * self.cols
    }

    /// Rank of grid position (r, c) — row-major.
    pub fn rank(&self, r: usize, c: usize) -> usize {
        assert!(r < self.rows && c < self.cols);
        r * self.cols + c
    }

    /// Grid position of a rank.
    pub fn position(&self, rank: usize) -> (usize, usize) {
        assert!(rank < self.np());
        (rank / self.cols, rank % self.cols)
    }

    /// Members of grid row `r`.
    pub fn row_group(&self, r: usize) -> Vec<usize> {
        (0..self.cols).map(|c| self.rank(r, c)).collect()
    }

    /// Members of grid column `c`.
    pub fn col_group(&self, c: usize) -> Vec<usize> {
        (0..self.rows).map(|r| self.rank(r, c)).collect()
    }
}

/// Dense matrix distributed `(BLOCK, BLOCK)` on a 2-D grid.
#[derive(Debug, Clone)]
pub struct Checkerboard {
    matrix: DenseMatrix,
    grid: ProcGrid2D,
}

/// Stats of one checkerboard matvec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckerboardStats {
    /// Words each column-group allgather moves (per group).
    pub col_allgather_words: usize,
    /// Words each row-group reduce-scatter moves (per group).
    pub row_reduce_words: usize,
    /// Simulated time of the whole matvec.
    pub time: f64,
}

impl Checkerboard {
    pub fn new(matrix: DenseMatrix, grid: ProcGrid2D) -> Self {
        assert!(matrix.is_square(), "checkerboard matvec needs square A");
        Checkerboard { matrix, grid }
    }

    pub fn grid(&self) -> ProcGrid2D {
        self.grid
    }

    /// `q = A p` with A on the 2-D grid and the vectors block-distributed
    /// over all P processors. Three phases:
    /// 1. column-group allgather of the `n/√P` vector slice each grid
    ///    column needs;
    /// 2. fully parallel local `(n/√P) x (n/√P)` block products;
    /// 3. row-group reduce-scatter of the partial results.
    pub fn matvec(&self, machine: &mut Machine, p: &DistVector) -> (DistVector, CheckerboardStats) {
        let n = self.matrix.n_rows();
        assert_eq!(p.len(), n, "operand length mismatch");
        assert_eq!(machine.np(), self.grid.np(), "machine/grid mismatch");
        let t0 = machine.elapsed();
        let side = self.grid.rows;
        let slice = n.div_ceil(side);

        // Phase 1: allgather p within every grid column.
        for c in 0..self.grid.cols {
            let members = self.grid.col_group(c);
            machine.group_collective(
                &members,
                EventKind::AllGather,
                slice.div_ceil(side),
                "cb-col-allgather",
            );
        }

        // Phase 2: local block products, all P processors in parallel.
        let block_flops = 2 * slice * slice;
        machine.compute_uniform(block_flops, "cb-local-block");

        // Phase 3: reduce-scatter partials within every grid row.
        for r in 0..self.grid.rows {
            let members = self.grid.row_group(r);
            machine.group_collective(
                &members,
                EventKind::Reduce,
                slice.div_ceil(side),
                "cb-row-reduce",
            );
        }

        // Real arithmetic.
        let q_global = self.matrix.matvec(&p.to_global()).expect("square system");
        let q = DistVector::from_global(ArrayDescriptor::block(n, self.grid.np()), &q_global);

        let stats = CheckerboardStats {
            col_allgather_words: slice,
            row_reduce_words: slice,
            time: machine.elapsed() - t0,
        };
        (q, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matvec::dense_rowwise_matvec;
    use hpf_machine::{CostModel, Topology};
    use hpf_sparse::gen;

    #[test]
    fn grid_geometry() {
        let g = ProcGrid2D::square(16).unwrap();
        assert_eq!(g.rows, 4);
        assert_eq!(g.rank(2, 3), 11);
        assert_eq!(g.position(11), (2, 3));
        assert_eq!(g.row_group(1), vec![4, 5, 6, 7]);
        assert_eq!(g.col_group(2), vec![2, 6, 10, 14]);
        assert!(ProcGrid2D::square(12).is_none());
        assert!(ProcGrid2D::square(1).is_some());
    }

    #[test]
    fn checkerboard_matvec_matches_reference() {
        let d = gen::poisson_2d(6, 6).to_dense();
        let np = 9;
        let grid = ProcGrid2D::square(np).unwrap();
        let cb = Checkerboard::new(d.clone(), grid);
        let x: Vec<f64> = (0..36).map(|i| (i % 7) as f64 - 3.0).collect();
        let want = d.matvec(&x).unwrap();
        let mut m = Machine::new(np, Topology::Hypercube, CostModel::mpp_1995());
        let p = DistVector::from_global(ArrayDescriptor::block(36, np), &x);
        let (q, stats) = cb.matvec(&mut m, &p);
        for (u, v) in q.to_global().iter().zip(want.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
        assert!(stats.time > 0.0);
        assert_eq!(m.trace().with_label("cb-col-allgather").count(), 3);
        assert_eq!(m.trace().with_label("cb-row-reduce").count(), 3);
    }

    #[test]
    fn checkerboard_beats_1d_striping_at_scale() {
        // The E16 claim: for large P the 2-D layout's communication is
        // asymptotically cheaper than the 1-D rowwise broadcast.
        let n = 1024;
        let d = DenseMatrix::zeros(n, n); // structure-independent cost
        let np = 64;
        let x = vec![0.0; n];
        let p1 = DistVector::from_global(ArrayDescriptor::block(n, np), &x);
        // Zero-flop model isolates the communication critical path; the
        // machine clocks correctly overlap the disjoint grid groups
        // (while the trace sums per-group event durations).
        let comm_only = CostModel {
            t_flop: 0.0,
            ..CostModel::mpp_1995()
        };

        let mut m1 = Machine::new(np, Topology::Hypercube, comm_only);
        dense_rowwise_matvec(&mut m1, &d, &p1);
        let comm_1d = m1.elapsed();

        let grid = ProcGrid2D::square(np).unwrap();
        let cb = Checkerboard::new(d, grid);
        let mut m2 = Machine::new(np, Topology::Hypercube, comm_only);
        cb.matvec(&mut m2, &p1);
        let comm_2d = m2.elapsed();

        assert!(
            comm_2d < comm_1d,
            "2-D comm {comm_2d} must beat 1-D {comm_1d} at P = {np}"
        );
    }

    #[test]
    fn single_processor_grid_degenerates() {
        let d = gen::poisson_2d(3, 3).to_dense();
        let cb = Checkerboard::new(d.clone(), ProcGrid2D::square(1).unwrap());
        let mut m = Machine::hypercube(1);
        let x = vec![1.0; 9];
        let p = DistVector::from_global(ArrayDescriptor::block(9, 1), &x);
        let (q, _) = cb.matvec(&mut m, &p);
        assert_eq!(q.to_global(), d.matvec(&x).unwrap());
        assert_eq!(m.trace().total_comm_words(), 0);
    }
}
