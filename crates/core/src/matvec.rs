//! Distributed sparse/dense matrix–vector multiplication — the paper's
//! Section 4 scenarios.
//!
//! * **Scenario 1** (Figure 3): row-wise `(BLOCK, *)` partitioning.
//!   Every processor owns a block of rows; the distributed vector `p`
//!   must be replicated with an all-to-all broadcast
//!   (`t_startup·log N_P + t_comm·n/N_P`), after which each row's dot
//!   product is local and the `FORALL` over rows is parallel. With CSR
//!   storage and the data arrays (`a`, `col`) block-distributed over
//!   `nz` *elements*, "a processor that is responsible from a specific
//!   row may not have all the actual data elements on that row.
//!   Therefore, additional communication is needed to bring in those
//!   missing elements" — [`DataArrayLayout::ElementBlock`] pays that
//!   cost; [`DataArrayLayout::RowAligned`] (the paper's proposed
//!   ATOM-aligned layout) does not.
//!
//! * **Scenario 2** (Figure 4): column-wise `(*, BLOCK)` partitioning
//!   with CSC storage. Element-wise products are local, but the
//!   many-to-one accumulation `q(row(k)) += a(k)*p(j)` serialises the
//!   loop. Two variants: the paper's serial code, and the
//!   "two-dimensional temporary local vectors + SUM intrinsic"
//!   workaround (parallel compute, `O(N_P · n)` extra storage, vector
//!   merge).

use crate::vector::DistVector;
use hpf_dist::{ArrayDescriptor, DistSpec};
use hpf_machine::Machine;
use hpf_sparse::{CscMatrix, CsrMatrix, DenseMatrix};

/// How the CSR/CSC data arrays (`a` and its index array) are distributed
/// relative to the row/column ownership.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataArrayLayout {
    /// Plain HPF `DISTRIBUTE a(BLOCK)` over the `nz` elements — cuts can
    /// land mid-row, forcing remote fetches of `a`/`col` pairs.
    ElementBlock,
    /// Data arrays aligned with the row (column) ownership — what the
    /// paper's `INDIVISABLE`/`ATOM:BLOCK` extension guarantees. No
    /// remote element fetches.
    RowAligned,
}

/// Statistics of one distributed matvec execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatvecStats {
    /// Words moved to replicate the `p` vector.
    pub broadcast_words: usize,
    /// Words of `a`/`col` fetched remotely (Scenario 1, ElementBlock).
    pub remote_data_words: usize,
    /// Temporary storage (words) beyond the operands.
    pub temp_storage_words: usize,
    /// Simulated time of the whole operation.
    pub time: f64,
}

// ---------------------------------------------------------------------
// Scenario 1: row-wise CSR
// ---------------------------------------------------------------------

/// Row-wise distributed CSR matrix (Scenario 1).
#[derive(Debug, Clone)]
pub struct RowwiseCsr {
    matrix: CsrMatrix,
    /// Ownership of rows (and, by alignment, of `q`): BLOCK by default,
    /// or irregular cuts from a partitioner.
    row_desc: ArrayDescriptor,
    layout: DataArrayLayout,
}

impl RowwiseCsr {
    /// `ALIGN A(:,*) WITH p(:)` + `DISTRIBUTE p(BLOCK)`: block rows.
    pub fn block(matrix: CsrMatrix, np: usize, layout: DataArrayLayout) -> Self {
        assert!(matrix.is_square(), "CG matrices are square");
        let n = matrix.n_rows();
        RowwiseCsr {
            matrix,
            row_desc: ArrayDescriptor::block(n, np),
            layout,
        }
    }

    /// Rows distributed by explicit cut points (e.g. from
    /// `CG_BALANCED_PARTITIONER_1`). Data arrays follow the rows
    /// (RowAligned), as the SPARSE_MATRIX trio binding requires.
    pub fn with_row_cuts(matrix: CsrMatrix, np: usize, row_cuts: Vec<usize>) -> Self {
        assert!(matrix.is_square());
        let n = matrix.n_rows();
        RowwiseCsr {
            matrix,
            row_desc: ArrayDescriptor::new(n, np, DistSpec::IrregularCuts(row_cuts)),
            layout: DataArrayLayout::RowAligned,
        }
    }

    pub fn matrix(&self) -> &CsrMatrix {
        &self.matrix
    }

    pub fn row_descriptor(&self) -> &ArrayDescriptor {
        &self.row_desc
    }

    pub fn np(&self) -> usize {
        self.row_desc.np()
    }

    /// Flops each processor performs (2 per stored element of its rows).
    pub fn flops_per_proc(&self) -> Vec<usize> {
        (0..self.np())
            .map(|p| {
                2 * self
                    .row_desc
                    .global_indices(p)
                    .iter()
                    .map(|&r| self.matrix.row_nnz(r))
                    .sum::<usize>()
            })
            .collect()
    }

    /// The remote `a`/`col` traffic matrix under ElementBlock layout:
    /// `m[s][d]` = words processor `s` (owner of an nz block) must ship
    /// to `d` (owner of the enclosing row). Each missing element costs
    /// two words (`a(k)` and `col(k)`).
    pub fn remote_data_traffic(&self) -> Vec<Vec<usize>> {
        let np = self.np();
        let mut m = vec![vec![0usize; np]; np];
        if self.layout == DataArrayLayout::RowAligned {
            return m;
        }
        let nz = self.matrix.nnz();
        if nz == 0 {
            return m;
        }
        let data_desc = ArrayDescriptor::block(nz, np);
        let row_ptr = self.matrix.row_ptr();
        for r in 0..self.matrix.n_rows() {
            let row_owner = self.row_desc.owner(r);
            for k in row_ptr[r]..row_ptr[r + 1] {
                let holder = data_desc.owner(k);
                if holder != row_owner {
                    m[holder][row_owner] += 2; // a(k) + col(k)
                }
            }
        }
        m
    }

    /// `q = Aᵀ p` under the *row-wise* layout — the operation BiCG needs.
    ///
    /// Section 2.1: "BiCG does however require two matrix-vector multiply
    /// operations one of which uses the matrix transpose Aᵀ, and
    /// therefore any storage distribution optimisations made on the basis
    /// of row access vs. column access will be negated." Concretely: the
    /// rows this processor owns are *columns* of Aᵀ, so instead of the
    /// cheap allgather-then-local-dot of the forward product, every
    /// processor scatters partial results across the whole of `q` and a
    /// vector-length merge (plus `N_P·n` temporaries) is required —
    /// exactly the Scenario 2 structure.
    pub fn matvec_transpose(
        &self,
        machine: &mut Machine,
        p: &DistVector,
    ) -> (DistVector, MatvecStats) {
        let n = self.matrix.n_rows();
        assert_eq!(p.len(), n, "operand length mismatch");
        assert_eq!(machine.np(), self.np(), "machine size mismatch");
        let t0 = machine.elapsed();

        // Local phase: partial q over owned rows (parallel — each
        // processor reads only its own block of p).
        machine.compute_all(&self.flops_per_proc(), "s1t-local-partial");

        // Merge phase: vector-length sum of the NP partials.
        machine.allreduce(n, "s1t-merge-q");
        machine.compute_all(&vec![n; self.np()], "s1t-merge-combine");

        let mut q_global = self
            .matrix
            .matvec_transpose(&p.to_global())
            .expect("validated dims");
        machine.corrupt_slice(&mut q_global);
        let q = DistVector::from_global(self.row_desc.clone(), &q_global);

        let stats = MatvecStats {
            broadcast_words: 0,
            remote_data_words: 0,
            temp_storage_words: self.np() * n,
            time: machine.elapsed() - t0,
        };
        (q, stats)
    }

    /// Execute `q = A p` (Scenario 1). `p` must be aligned with the row
    /// distribution; the result `q` is too ("no communication is needed
    /// to rearrange the distribution of the results").
    pub fn matvec(&self, machine: &mut Machine, p: &DistVector) -> (DistVector, MatvecStats) {
        assert_eq!(p.len(), self.matrix.n_cols(), "operand length mismatch");
        assert_eq!(machine.np(), self.np(), "machine size mismatch");
        let t0 = machine.elapsed();

        // Phase 1: all-to-all broadcast of p.
        let p_global = p.allgather(machine, "s1-bcast-p");
        let broadcast_words = p.len();

        // Phase 2: remote a/col fetches (ElementBlock only).
        let traffic = self.remote_data_traffic();
        let remote_data_words: usize = traffic.iter().map(|r| r.iter().sum::<usize>()).sum();
        if remote_data_words > 0 {
            machine.exchange(&traffic, "s1-fetch-acol");
        }

        // Phase 3: local row dot-products (parallel FORALL over rows).
        machine.compute_all(&self.flops_per_proc(), "s1-local-matvec");

        // Real arithmetic, laid out as q aligned with rows. The bulk
        // result passes through the fault layer so an armed corruption
        // damages one element of q, as a flipped bit in a local
        // row-block product would.
        let mut q_global = self.matrix.matvec(&p_global).expect("validated dims");
        machine.corrupt_slice(&mut q_global);
        let q = DistVector::from_global(self.row_desc.clone(), &q_global);

        let stats = MatvecStats {
            broadcast_words,
            remote_data_words,
            temp_storage_words: p.len(), // the replicated copy of p
            time: machine.elapsed() - t0,
        };
        (q, stats)
    }
}

// ---------------------------------------------------------------------
// Scenario 2: column-wise CSC
// ---------------------------------------------------------------------

/// Column-wise distributed CSC matrix (Scenario 2).
#[derive(Debug, Clone)]
pub struct ColwiseCsc {
    matrix: CscMatrix,
    col_desc: ArrayDescriptor,
}

impl ColwiseCsc {
    /// `ALIGN A(*,:) WITH p(:)` + `DISTRIBUTE p(BLOCK)`: block columns.
    pub fn block(matrix: CscMatrix, np: usize) -> Self {
        assert!(matrix.is_square());
        let n = matrix.n_cols();
        ColwiseCsc {
            matrix,
            col_desc: ArrayDescriptor::block(n, np),
        }
    }

    /// Columns distributed by explicit cut points.
    pub fn with_col_cuts(matrix: CscMatrix, np: usize, col_cuts: Vec<usize>) -> Self {
        assert!(matrix.is_square());
        let n = matrix.n_cols();
        ColwiseCsc {
            matrix,
            col_desc: ArrayDescriptor::new(n, np, DistSpec::IrregularCuts(col_cuts)),
        }
    }

    pub fn matrix(&self) -> &CscMatrix {
        &self.matrix
    }

    pub fn col_descriptor(&self) -> &ArrayDescriptor {
        &self.col_desc
    }

    pub fn np(&self) -> usize {
        self.col_desc.np()
    }

    /// Flops per processor over its columns.
    pub fn flops_per_proc(&self) -> Vec<usize> {
        (0..self.np())
            .map(|p| {
                2 * self
                    .col_desc
                    .global_indices(p)
                    .iter()
                    .map(|&c| self.matrix.col_nnz(c))
                    .sum::<usize>()
            })
            .collect()
    }

    /// The paper's serial Scenario 2 code: element-wise multiplications
    /// need no communication for `p`, but the many-to-one accumulation
    /// into `q` creates inter-processor dependencies, so the loop runs
    /// serially; "the communication time for Scenario 2 is the same as
    /// the communication time for the global broadcast used in Scenario
    /// 1" (the partial results must reach the owners of `q`).
    pub fn matvec_serial(
        &self,
        machine: &mut Machine,
        p: &DistVector,
    ) -> (DistVector, MatvecStats) {
        assert_eq!(p.len(), self.matrix.n_cols());
        assert_eq!(machine.np(), self.np());
        let t0 = machine.elapsed();

        // Result contributions cross processors: same volume as the
        // Scenario 1 broadcast.
        let words_each = p.len().div_ceil(self.np());
        machine.allgather(words_each, "s2-merge-q");

        // Serial compute: dependencies forbid parallel execution.
        let total_flops: usize = self.flops_per_proc().iter().sum();
        machine.compute_serial(total_flops, "s2-serial-matvec");

        let q_global = self.matrix.matvec(&p.to_global()).expect("validated dims");
        let q = DistVector::from_global(p.descriptor().clone(), &q_global);

        let stats = MatvecStats {
            broadcast_words: p.len(),
            remote_data_words: 0,
            temp_storage_words: 0,
            time: machine.elapsed() - t0,
        };
        (q, stats)
    }

    /// The "two-dimensional temporary array + SUM intrinsic" workaround:
    /// "we could simulate the same thing using two dimensional temporary
    /// local vectors in place of vector q in each processor. At the end
    /// of the outer loop we use the HPF SUM intrinsic to generate the
    /// final vector." Parallel compute; `N_P · n` temporary words; a
    /// vector-length reduction merge.
    pub fn matvec_temp2d(
        &self,
        machine: &mut Machine,
        p: &DistVector,
    ) -> (DistVector, MatvecStats) {
        assert_eq!(p.len(), self.matrix.n_cols());
        assert_eq!(machine.np(), self.np());
        let t0 = machine.elapsed();
        let n = self.matrix.n_rows();
        let np = self.np();

        // Parallel local phase over columns (p is aligned: local reads).
        machine.compute_all(&self.flops_per_proc(), "s2-local-partial");

        // Really compute the per-processor partials.
        let p_global = p.to_global();
        let mut partials: Vec<Vec<f64>> = vec![vec![0.0; n]; np];
        for proc in 0..np {
            let part = &mut partials[proc];
            for &j in &self.col_desc.global_indices(proc) {
                let pj = p_global[j];
                if pj == 0.0 {
                    continue;
                }
                for (r, v) in self.matrix.col(j) {
                    part[r] += v * pj;
                }
            }
        }

        // SUM merge of NP vectors of length n.
        machine.allreduce(n, "s2-sum-merge");
        machine.compute_all(&vec![n * np / np.max(1); np], "s2-sum-combine");

        let mut q_global = vec![0.0; n];
        for part in &partials {
            for (qi, &v) in q_global.iter_mut().zip(part.iter()) {
                *qi += v;
            }
        }
        let q = DistVector::from_global(p.descriptor().clone(), &q_global);

        let stats = MatvecStats {
            broadcast_words: 0,
            remote_data_words: 0,
            temp_storage_words: np * n,
            time: machine.elapsed() - t0,
        };
        (q, stats)
    }

    /// `q = Aᵀ p` under the *column-wise* layout — the clean direction
    /// for CSC: each owned column of A is a row of Aᵀ, so after an
    /// allgather of `p` every q(j) is a local dot product and the loop is
    /// fully parallel (the exact mirror of
    /// [`RowwiseCsr::matvec_transpose`]'s penalty — which layout wins
    /// flips with the operator direction, the paper's §2.1 point).
    pub fn matvec_transpose_gather(
        &self,
        machine: &mut Machine,
        p: &DistVector,
    ) -> (DistVector, MatvecStats) {
        let n = self.matrix.n_rows();
        assert_eq!(p.len(), n, "operand length mismatch");
        assert_eq!(machine.np(), self.np(), "machine size mismatch");
        let t0 = machine.elapsed();
        let p_global = p.allgather(machine, "s2t-bcast-p");
        machine.compute_all(&self.flops_per_proc(), "s2t-local-dots");
        let q_global = self
            .matrix
            .matvec_transpose(&p_global)
            .expect("validated dims");
        let q = DistVector::from_global(self.col_desc.clone(), &q_global);
        let stats = MatvecStats {
            broadcast_words: n,
            remote_data_words: 0,
            temp_storage_words: n,
            time: machine.elapsed() - t0,
        };
        (q, stats)
    }
}

// ---------------------------------------------------------------------
// Dense scenarios (Figures 3 and 4)
// ---------------------------------------------------------------------

/// Figure 3: dense `A` distributed `(BLOCK, *)`, vectors `(BLOCK)`.
/// All-to-all broadcast of `p`, then fully parallel local rows.
pub fn dense_rowwise_matvec(
    machine: &mut Machine,
    a: &DenseMatrix,
    p: &DistVector,
) -> (DistVector, MatvecStats) {
    assert_eq!(a.n_cols(), p.len());
    let np = machine.np();
    let n = a.n_rows();
    let t0 = machine.elapsed();
    let p_global = p.allgather(machine, "dense-s1-bcast-p");
    let rows = ArrayDescriptor::block(n, np);
    let flops: Vec<usize> = (0..np)
        .map(|pr| 2 * a.n_cols() * rows.local_len(pr))
        .collect();
    machine.compute_all(&flops, "dense-s1-local");
    let q_global = a.matvec(&p_global).expect("validated dims");
    let q = DistVector::from_global(rows, &q_global);
    let stats = MatvecStats {
        broadcast_words: p.len(),
        remote_data_words: 0,
        temp_storage_words: p.len(),
        time: machine.elapsed() - t0,
    };
    (q, stats)
}

/// Figure 4: dense `A` distributed `(*, BLOCK)`, vectors `(BLOCK)`.
/// Local element-wise products, but the accumulation dependency
/// serialises the loop (paper's serial code).
pub fn dense_colwise_matvec_serial(
    machine: &mut Machine,
    a: &DenseMatrix,
    p: &DistVector,
) -> (DistVector, MatvecStats) {
    assert_eq!(a.n_cols(), p.len());
    let n = a.n_rows();
    let np = machine.np();
    let t0 = machine.elapsed();
    let words_each = n.div_ceil(np);
    machine.allgather(words_each, "dense-s2-merge-q");
    machine.compute_serial(2 * n * a.n_cols(), "dense-s2-serial");
    let q_global = a.matvec(&p.to_global()).expect("validated dims");
    let q = DistVector::from_global(p.descriptor().clone(), &q_global);
    let stats = MatvecStats {
        broadcast_words: n,
        remote_data_words: 0,
        temp_storage_words: 0,
        time: machine.elapsed() - t0,
    };
    (q, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_machine::{CostModel, EventKind, Topology};
    use hpf_sparse::gen;

    fn machine(np: usize) -> Machine {
        Machine::new(np, Topology::Hypercube, CostModel::mpp_1995())
    }

    fn test_vec(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 37 + 11) % 17) as f64 / 4.0).collect()
    }

    #[test]
    fn scenario1_matches_serial() {
        let a = gen::random_spd(40, 4, 3);
        let np = 4;
        let mut m = machine(np);
        let x = test_vec(40);
        let want = a.matvec(&x).unwrap();
        let dm = RowwiseCsr::block(a, np, DataArrayLayout::RowAligned);
        let p = DistVector::from_global(ArrayDescriptor::block(40, np), &x);
        let (q, stats) = dm.matvec(&mut m, &p);
        for (u, v) in q.to_global().iter().zip(want.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
        assert_eq!(stats.broadcast_words, 40);
        assert_eq!(stats.remote_data_words, 0);
        assert!(stats.time > 0.0);
    }

    #[test]
    fn scenario1_element_block_pays_fetches() {
        let a = gen::random_spd(60, 5, 7);
        let np = 4;
        let aligned = RowwiseCsr::block(a.clone(), np, DataArrayLayout::RowAligned);
        let blocked = RowwiseCsr::block(a, np, DataArrayLayout::ElementBlock);
        assert_eq!(
            aligned
                .remote_data_traffic()
                .iter()
                .flatten()
                .sum::<usize>(),
            0
        );
        let fetched: usize = blocked.remote_data_traffic().iter().flatten().sum();
        assert!(fetched > 0, "element-block layout must fetch remote a/col");

        // And the fetch shows up as a Redistribute event + extra time.
        let x = test_vec(60);
        let p = DistVector::from_global(ArrayDescriptor::block(60, np), &x);
        let mut m1 = machine(np);
        let (_, s1) = aligned.matvec(&mut m1, &p);
        let mut m2 = machine(np);
        let (q2, s2) = blocked.matvec(&mut m2, &p);
        assert!(s2.remote_data_words > 0);
        assert!(s2.time > s1.time);
        assert_eq!(m2.trace().count(EventKind::Redistribute), 1);
        // Results identical regardless of layout.
        for (u, v) in q2
            .to_global()
            .iter()
            .zip(aligned.matrix().matvec(&x).unwrap().iter())
        {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn scenario2_serial_matches_and_synchronises() {
        let a = gen::random_spd(30, 3, 1);
        let csc = hpf_sparse::CscMatrix::from_csr(&a);
        let np = 4;
        let mut m = machine(np);
        let x = test_vec(30);
        let want = a.matvec(&x).unwrap();
        let dm = ColwiseCsc::block(csc, np);
        let p = DistVector::from_global(ArrayDescriptor::block(30, np), &x);
        let (q, stats) = dm.matvec_serial(&mut m, &p);
        for (u, v) in q.to_global().iter().zip(want.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
        assert_eq!(stats.temp_storage_words, 0);
    }

    #[test]
    fn scenario2_temp2d_matches_and_is_parallel() {
        let a = gen::random_spd(32, 3, 9);
        let csc = hpf_sparse::CscMatrix::from_csr(&a);
        let np = 4;
        let x = test_vec(32);
        let want = a.matvec(&x).unwrap();
        let dm = ColwiseCsc::block(csc, np);
        let p = DistVector::from_global(ArrayDescriptor::block(32, np), &x);

        // Isolate the compute term: the workaround's win is *parallel
        // compute*; at small n an expensive network would mask it.
        let mut ms = Machine::new(np, Topology::Hypercube, CostModel::zero_comm());
        let (_, s_serial) = dm.matvec_serial(&mut ms, &p);
        let mut mt = Machine::new(np, Topology::Hypercube, CostModel::zero_comm());
        let (q, s_temp) = dm.matvec_temp2d(&mut mt, &p);
        for (u, v) in q.to_global().iter().zip(want.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
        // The workaround buys parallel compute at NP*n extra storage.
        assert_eq!(s_temp.temp_storage_words, np * 32);
        assert!(
            s_temp.time < s_serial.time,
            "parallel {} vs serial {}",
            s_temp.time,
            s_serial.time
        );
    }

    #[test]
    fn dense_scenarios_match_reference() {
        let d = gen::poisson_2d(4, 4).to_dense();
        let np = 4;
        let x = test_vec(16);
        let want = d.matvec(&x).unwrap();
        let p = DistVector::from_global(ArrayDescriptor::block(16, np), &x);

        let mut m1 = machine(np);
        let (q1, _) = dense_rowwise_matvec(&mut m1, &d, &p);
        let mut m2 = machine(np);
        let (q2, _) = dense_colwise_matvec_serial(&mut m2, &d, &p);
        for i in 0..16 {
            assert!((q1.to_global()[i] - want[i]).abs() < 1e-12);
            assert!((q2.to_global()[i] - want[i]).abs() < 1e-12);
        }
        // Row-wise compute is parallel: faster than column-wise serial.
        assert!(m1.elapsed() < m2.elapsed());
    }

    #[test]
    fn scenario2_comm_equals_scenario1_comm() {
        // "it is not possible to reduce the communication time if the
        // matrix is partitioned into regular stripes either in a row-wise
        // or column-wise fashion."
        let a = gen::random_spd(64, 4, 5);
        let csc = hpf_sparse::CscMatrix::from_csr(&a);
        let np = 8;
        let x = test_vec(64);
        let p = DistVector::from_global(ArrayDescriptor::block(64, np), &x);

        let mut m1 = machine(np);
        let s1 = RowwiseCsr::block(a, np, DataArrayLayout::RowAligned);
        s1.matvec(&mut m1, &p);
        let mut m2 = machine(np);
        let s2 = ColwiseCsc::block(csc, np);
        s2.matvec_serial(&mut m2, &p);
        let comm1 = m1.trace().comm_time();
        let comm2 = m2.trace().comm_time();
        assert!((comm1 - comm2).abs() < 1e-12, "{comm1} vs {comm2}");
    }

    #[test]
    fn transpose_matvecs_match_reference_both_layouts() {
        let a = gen::random_spd(40, 4, 6);
        let csc = hpf_sparse::CscMatrix::from_csr(&a);
        let np = 4;
        let x = test_vec(40);
        let want = a.matvec_transpose(&x).unwrap();
        let p = DistVector::from_global(ArrayDescriptor::block(40, np), &x);

        let mut m1 = machine(np);
        let row_op = RowwiseCsr::block(a, np, DataArrayLayout::RowAligned);
        let (q1, s1) = row_op.matvec_transpose(&mut m1, &p);
        let mut m2 = machine(np);
        let col_op = ColwiseCsc::block(csc, np);
        let (q2, s2) = col_op.matvec_transpose_gather(&mut m2, &p);
        for i in 0..40 {
            assert!((q1.to_global()[i] - want[i]).abs() < 1e-12);
            assert!((q2.to_global()[i] - want[i]).abs() < 1e-12);
        }
        // The asymmetry (§2.1): row layout pays NP*n temporaries and a
        // vector merge for A^T; column layout does it with one allgather.
        assert_eq!(s1.temp_storage_words, np * 40);
        assert_eq!(s2.temp_storage_words, 40);
        assert_eq!(m2.trace().count(EventKind::AllGather), 1);
        assert_eq!(m1.trace().count(EventKind::AllReduce), 1);
    }

    #[test]
    fn transpose_direction_flips_which_layout_wins() {
        // Forward: rowwise (allgather) cheaper than colwise serial.
        // Transpose: colwise gather cheaper than rowwise merge.
        let a = gen::random_spd(256, 5, 8);
        let csc = hpf_sparse::CscMatrix::from_csr(&a);
        let np = 8;
        let x = test_vec(256);
        let p = DistVector::from_global(ArrayDescriptor::block(256, np), &x);
        let row_op = RowwiseCsr::block(a, np, DataArrayLayout::RowAligned);
        let col_op = ColwiseCsc::block(csc, np);

        let mut mf_row = machine(np);
        row_op.matvec(&mut mf_row, &p);
        let mut mt_row = machine(np);
        row_op.matvec_transpose(&mut mt_row, &p);
        // The transpose through the row layout costs strictly more
        // communication than the forward product.
        assert!(mt_row.trace().comm_time() > mf_row.trace().comm_time());

        let mut mt_col = machine(np);
        col_op.matvec_transpose_gather(&mut mt_col, &p);
        // ...while through the column layout A^T costs exactly the
        // forward rowwise price (one allgather).
        assert!((mt_col.trace().comm_time() - mf_row.trace().comm_time()).abs() < 1e-12);
    }

    #[test]
    fn balanced_row_cuts_reduce_imbalance() {
        let a = gen::power_law_spd(128, 40, 0.9, 4);
        let np = 4;
        let weights: Vec<usize> = (0..128).map(|r| a.row_nnz(r)).collect();
        let cuts = hpf_dist::partition::balanced_contiguous(&weights, np).unwrap();
        let balanced = RowwiseCsr::with_row_cuts(a.clone(), np, cuts);
        let blocked = RowwiseCsr::block(a, np, DataArrayLayout::RowAligned);
        let fb = balanced.flops_per_proc();
        let fn_ = blocked.flops_per_proc();
        let imb = |v: &[usize]| {
            let max = *v.iter().max().unwrap() as f64;
            let mean = v.iter().sum::<usize>() as f64 / v.len() as f64;
            max / mean
        };
        assert!(imb(&fb) <= imb(&fn_), "{} vs {}", imb(&fb), imb(&fn_));
    }
}
