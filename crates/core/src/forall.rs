//! `FORALL` / `INDEPENDENT DO` semantics and Bernstein's conditions.
//!
//! Section 5.1 of the paper explains why neither construct can express
//! the CSC matvec:
//!
//! > "The option of using a FORALL is eliminated because its semantics
//! > require that all the right-hand sides should be computed before an
//! > assignment to the left-hand sides be done. An accumulation operation
//! > like we would like to express is not allowed within the FORALL body.
//! > At the same time, the write-after-write dependency violates
//! > Bernstein's conditions, and eliminates the possibility of using an
//! > INDEPENDENT DO."
//!
//! This module makes those rules *checkable*: [`forall_assign`] executes
//! with true FORALL semantics (all RHS before any LHS) and rejects
//! many-to-one assignments; [`bernstein_check`] decides whether a loop's
//! per-iteration read/write sets satisfy Bernstein's conditions.

use std::collections::HashMap;

/// Why a loop cannot be run in parallel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DependenceViolation {
    /// Two iterations write the same location (write-after-write): the
    /// CSC `q(row(k)) = q(row(k)) + ...` accumulation.
    WriteWrite {
        location: usize,
        iter_a: usize,
        iter_b: usize,
    },
    /// One iteration writes what another reads (flow/anti dependence).
    ReadWrite {
        location: usize,
        writer: usize,
        reader: usize,
    },
}

impl std::fmt::Display for DependenceViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DependenceViolation::WriteWrite {
                location,
                iter_a,
                iter_b,
            } => write!(
                f,
                "write-after-write on location {location} between iterations {iter_a} and {iter_b}"
            ),
            DependenceViolation::ReadWrite {
                location,
                writer,
                reader,
            } => write!(
                f,
                "iteration {writer} writes location {location} read by iteration {reader}"
            ),
        }
    }
}

/// The read/write footprint of one loop iteration over a flat location
/// space (array elements numbered globally).
#[derive(Debug, Clone, Default)]
pub struct IterationAccess {
    pub reads: Vec<usize>,
    pub writes: Vec<usize>,
}

/// Bernstein's conditions [Bernstein 1966]: iterations `i != j` may run
/// in parallel iff `W_i ∩ W_j = ∅`, `W_i ∩ R_j = ∅` and `R_i ∩ W_j = ∅`.
/// Returns the first violation found, or `Ok(())` if the loop is
/// `INDEPENDENT`.
pub fn bernstein_check(iterations: &[IterationAccess]) -> Result<(), DependenceViolation> {
    // location -> first iteration that writes it
    let mut writer_of: HashMap<usize, usize> = HashMap::new();
    for (i, acc) in iterations.iter().enumerate() {
        for &w in &acc.writes {
            if let Some(&j) = writer_of.get(&w) {
                if j != i {
                    return Err(DependenceViolation::WriteWrite {
                        location: w,
                        iter_a: j,
                        iter_b: i,
                    });
                }
            } else {
                writer_of.insert(w, i);
            }
        }
    }
    for (i, acc) in iterations.iter().enumerate() {
        for &r in &acc.reads {
            if let Some(&j) = writer_of.get(&r) {
                if j != i {
                    return Err(DependenceViolation::ReadWrite {
                        location: r,
                        writer: j,
                        reader: i,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Error from a FORALL construct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForallError {
    /// Two index values map to the same LHS element (many-to-one
    /// assignment — "an accumulation operation ... is not allowed within
    /// the FORALL body").
    ManyToOne { lhs: usize },
    /// LHS index out of array bounds.
    OutOfBounds { lhs: usize, len: usize },
}

impl std::fmt::Display for ForallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ForallError::ManyToOne { lhs } => {
                write!(f, "FORALL: many-to-one assignment to element {lhs}")
            }
            ForallError::OutOfBounds { lhs, len } => {
                write!(
                    f,
                    "FORALL: index {lhs} out of bounds for array of length {len}"
                )
            }
        }
    }
}

impl std::error::Error for ForallError {}

/// Execute `FORALL (k = 0..count) target(lhs(k)) = rhs(k)` with true HPF
/// semantics: **all** right-hand sides are evaluated before **any**
/// assignment, and many-to-one LHS index maps are rejected.
pub fn forall_assign(
    target: &mut [f64],
    count: usize,
    lhs: impl Fn(usize) -> usize,
    rhs: impl Fn(usize) -> f64,
) -> Result<(), ForallError> {
    // Phase 1: evaluate every RHS (against the *old* target state).
    let mut staged: Vec<(usize, f64)> = Vec::with_capacity(count);
    let mut seen = vec![false; target.len()];
    for k in 0..count {
        let l = lhs(k);
        if l >= target.len() {
            return Err(ForallError::OutOfBounds {
                lhs: l,
                len: target.len(),
            });
        }
        if seen[l] {
            return Err(ForallError::ManyToOne { lhs: l });
        }
        seen[l] = true;
        staged.push((l, rhs(k)));
    }
    // Phase 2: assign.
    for (l, v) in staged {
        target[l] = v;
    }
    Ok(())
}

/// The access footprint of the paper's Figure 2 CSR matvec FORALL:
/// iteration `j` writes `q(j)` and reads `a`, `col` and `p(col(..))` —
/// locations are encoded as: `q` elements `0..n`, everything read-only is
/// omitted (reads of never-written locations cannot violate Bernstein).
pub fn csr_matvec_footprint(n_rows: usize) -> Vec<IterationAccess> {
    (0..n_rows)
        .map(|j| IterationAccess {
            reads: vec![],
            writes: vec![j],
        })
        .collect()
}

/// The access footprint of the paper's Scenario 2 CSC matvec loop:
/// iteration `j` writes `q(row(k))` for every `k` in column `j`. With
/// shared column targets, write sets collide — the loop is not
/// `INDEPENDENT`.
pub fn csc_matvec_footprint(col_ptr: &[usize], row_idx: &[usize]) -> Vec<IterationAccess> {
    (0..col_ptr.len() - 1)
        .map(|j| IterationAccess {
            reads: vec![],
            writes: row_idx[col_ptr[j]..col_ptr[j + 1]].to_vec(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forall_evaluates_rhs_before_assignment() {
        // q(i) = q(i+1) for i in 0..n-1: with FORALL semantics every RHS
        // is the OLD neighbour, so the array shifts by one — not a fill.
        let mut q = vec![1.0, 2.0, 3.0, 4.0];
        forall_assign(&mut q, 3, |k| k, |k| [1.0, 2.0, 3.0, 4.0][k + 1]).unwrap();
        assert_eq!(q, vec![2.0, 3.0, 4.0, 4.0]);
    }

    #[test]
    fn forall_rejects_accumulation() {
        // Two iterations target element 0 — the CSC many-to-one pattern.
        let mut q = vec![0.0; 4];
        let err = forall_assign(&mut q, 3, |k| if k == 2 { 0 } else { k }, |_| 1.0).unwrap_err();
        assert_eq!(err, ForallError::ManyToOne { lhs: 0 });
        // Target untouched on failure.
        assert_eq!(q, vec![0.0; 4]);
    }

    #[test]
    fn forall_bounds_checked() {
        let mut q = vec![0.0; 2];
        let err = forall_assign(&mut q, 3, |k| k, |_| 1.0).unwrap_err();
        assert_eq!(err, ForallError::OutOfBounds { lhs: 2, len: 2 });
    }

    #[test]
    fn bernstein_accepts_disjoint_writes() {
        let iters = csr_matvec_footprint(10);
        assert!(bernstein_check(&iters).is_ok());
    }

    #[test]
    fn bernstein_detects_write_write() {
        // CSC of a matrix where rows repeat across columns.
        // col_ptr = [0,2,4], row_idx = [0,1, 1,2]: columns 0 and 1 both
        // write q(1).
        let iters = csc_matvec_footprint(&[0, 2, 4], &[0, 1, 1, 2]);
        match bernstein_check(&iters).unwrap_err() {
            DependenceViolation::WriteWrite { location, .. } => assert_eq!(location, 1),
            other => panic!("expected write-write, got {other:?}"),
        }
    }

    #[test]
    fn bernstein_detects_read_write() {
        let iters = vec![
            IterationAccess {
                reads: vec![],
                writes: vec![5],
            },
            IterationAccess {
                reads: vec![5],
                writes: vec![6],
            },
        ];
        match bernstein_check(&iters).unwrap_err() {
            DependenceViolation::ReadWrite {
                location,
                writer,
                reader,
            } => {
                assert_eq!(location, 5);
                assert_eq!(writer, 0);
                assert_eq!(reader, 1);
            }
            other => panic!("expected read-write, got {other:?}"),
        }
    }

    #[test]
    fn bernstein_allows_self_dependence() {
        // An iteration may read and write its own locations.
        let iters = vec![
            IterationAccess {
                reads: vec![0],
                writes: vec![0],
            },
            IterationAccess {
                reads: vec![1],
                writes: vec![1],
            },
        ];
        assert!(bernstein_check(&iters).is_ok());
    }

    #[test]
    fn diagonal_csc_is_independent() {
        // A diagonal matrix in CSC: each column writes a distinct row, so
        // even Scenario 2's loop would be INDEPENDENT — showing the
        // dependence is a property of the sparsity pattern.
        let iters = csc_matvec_footprint(&[0, 1, 2, 3], &[0, 1, 2]);
        assert!(bernstein_check(&iters).is_ok());
    }

    #[test]
    fn violation_messages_name_iterations() {
        let v = DependenceViolation::WriteWrite {
            location: 3,
            iter_a: 1,
            iter_b: 2,
        };
        assert!(v.to_string().contains("iterations 1 and 2"));
    }
}
