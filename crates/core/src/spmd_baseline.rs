//! Hand-coded message-passing SPMD baseline.
//!
//! The paper positions HPF against "existing message passing
//! technologies" and sketches the SPMD version of the column-wise
//! matvec: "each processor would have a private copy of the vector q
//! which would be used to gather the partial results locally, and a
//! merge operation would be employed at the end."
//!
//! This module hand-codes both the matvec and a full CG solver in the
//! explicit message-passing style over [`hpf_machine::spmd`]'s real
//! threaded ranks, so traffic (messages, words) can be compared against
//! what the HPF layouts induce on the simulated machine (experiment
//! E13).

use hpf_machine::spmd::{Comm, SpmdWorld};
use hpf_machine::SpmdRun;
use hpf_sparse::CsrMatrix;

/// Row range of `rank` under a block partition of `n` rows.
fn row_block(n: usize, np: usize, rank: usize) -> std::ops::Range<usize> {
    let bs = n.div_ceil(np).max(1);
    (rank * bs).min(n)..((rank + 1) * bs).min(n)
}

/// SPMD matvec: every rank owns a block of rows and the matching block
/// of `p`; ranks allgather `p`, multiply their rows, and keep their block
/// of `q`. Returns the full `q` (assembled from the rank results).
pub fn spmd_matvec(a: &CsrMatrix, p: &[f64], np: usize) -> (Vec<f64>, SpmdRun<Vec<f64>>) {
    assert!(a.is_square());
    assert_eq!(a.n_cols(), p.len());
    let n = a.n_rows();
    let run = SpmdWorld::run(np, |mut comm: Comm| {
        let rank = comm.rank();
        let rows = row_block(n, np, rank);
        let my_p: Vec<f64> = p[row_block(n, np, rank)].to_vec();
        // All-to-all broadcast of the local vector blocks.
        let blocks = comm.allgather(&my_p);
        let p_full: Vec<f64> = blocks.into_iter().flatten().collect();
        // Local rows.
        let mut q_local = Vec::with_capacity(rows.len());
        for r in rows {
            let mut acc = 0.0;
            for (c, v) in a.row(r) {
                acc += v * p_full[c];
            }
            q_local.push(acc);
        }
        q_local
    });
    let q: Vec<f64> = run.results.iter().flatten().copied().collect();
    (q, run)
}

/// Result of the SPMD CG solve.
#[derive(Debug, Clone)]
pub struct SpmdCgResult {
    pub x: Vec<f64>,
    pub iterations: usize,
    pub residual_norm: f64,
    pub converged: bool,
}

/// Full hand-coded message-passing CG (the structure of the paper's
/// Figure 2, in explicit SPMD style). Block row/vector partition;
/// per-iteration communication: one allgather (matvec) + two scalar
/// allreduces (the dots).
pub fn spmd_cg(
    a: &CsrMatrix,
    b: &[f64],
    tol: f64,
    max_iters: usize,
    np: usize,
) -> (SpmdCgResult, SpmdRun<Vec<f64>>) {
    assert!(a.is_square());
    assert_eq!(a.n_rows(), b.len());
    let n = a.n_rows();

    let run = SpmdWorld::run(np, |mut comm: Comm| {
        let rank = comm.rank();
        let rows = row_block(n, np, rank);
        let local = rows.clone();

        // Local blocks of the CG vectors.
        let mut x = vec![0.0; local.len()];
        let mut r: Vec<f64> = b[local.clone()].to_vec();
        let mut p_loc: Vec<f64> = r.clone();

        let matvec_local = |comm: &mut Comm, p_loc: &[f64]| -> Vec<f64> {
            let blocks = comm.allgather(p_loc);
            let p_full: Vec<f64> = blocks.into_iter().flatten().collect();
            rows.clone()
                .map(|row| a.row(row).map(|(c, v)| v * p_full[c]).sum())
                .collect()
        };

        let dot = |comm: &mut Comm, u: &[f64], v: &[f64]| -> f64 {
            let local: f64 = u.iter().zip(v.iter()).map(|(a, b)| a * b).sum();
            comm.allreduce_sum(local)
        };

        let mut rho = dot(&mut comm, &r, &r);
        let b_norm = dot(&mut comm, &b[local.clone()], &b[local.clone()]).sqrt();
        let threshold = tol * b_norm.max(1e-300);
        let mut iterations = 0usize;
        let mut converged = rho.sqrt() <= threshold;

        while !converged && iterations < max_iters {
            let q = matvec_local(&mut comm, &p_loc);
            let pq = dot(&mut comm, &p_loc, &q);
            let alpha = rho / pq;
            for ((xi, pi), (ri, qi)) in x
                .iter_mut()
                .zip(p_loc.iter())
                .zip(r.iter_mut().zip(q.iter()))
            {
                *xi += alpha * pi;
                *ri -= alpha * qi;
            }
            let rho_new = dot(&mut comm, &r, &r);
            iterations += 1;
            if rho_new.sqrt() <= threshold {
                rho = rho_new;
                converged = true;
                break;
            }
            let beta = rho_new / rho;
            rho = rho_new;
            for (pi, &ri) in p_loc.iter_mut().zip(r.iter()) {
                *pi = ri + beta * *pi;
            }
        }

        // Return the local solution block; rank 0's tail carries the
        // iteration count via a side channel is ugly — instead append
        // metadata to every rank's result uniformly.
        let mut out = x;
        out.push(iterations as f64);
        out.push(rho.sqrt());
        out.push(if converged { 1.0 } else { 0.0 });
        out
    });

    let mut x = Vec::with_capacity(n);
    let mut iterations = 0usize;
    let mut residual_norm = 0.0;
    let mut converged = false;
    for part in &run.results {
        let (sol, meta) = part.split_at(part.len() - 3);
        x.extend_from_slice(sol);
        iterations = meta[0] as usize;
        residual_norm = meta[1];
        converged = meta[2] == 1.0;
    }
    (
        SpmdCgResult {
            x,
            iterations,
            residual_norm,
            converged,
        },
        run,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_sparse::gen;

    #[test]
    fn spmd_matvec_matches_serial() {
        let a = gen::random_spd(40, 4, 17);
        let p: Vec<f64> = (0..40).map(|i| (i % 5) as f64 - 2.0).collect();
        let want = a.matvec(&p).unwrap();
        for np in [1, 2, 4] {
            let (q, run) = spmd_matvec(&a, &p, np);
            assert_eq!(q.len(), 40);
            for (u, v) in q.iter().zip(want.iter()) {
                assert!((u - v).abs() < 1e-12, "np={np}");
            }
            if np > 1 {
                assert!(run.total_messages() > 0);
            } else {
                assert_eq!(run.total_messages(), 0);
            }
        }
    }

    #[test]
    fn spmd_cg_solves_poisson() {
        let a = gen::poisson_2d(8, 8);
        let (x_true, b) = gen::rhs_for_known_solution(&a);
        let (res, _run) = spmd_cg(&a, &b, 1e-10, 500, 4);
        assert!(res.converged, "CG must converge on SPD Poisson");
        for (u, v) in res.x.iter().zip(x_true.iter()) {
            assert!((u - v).abs() < 1e-6, "{u} vs {v}");
        }
    }

    #[test]
    fn spmd_cg_iteration_count_independent_of_np() {
        let a = gen::poisson_2d(6, 6);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let (r1, _) = spmd_cg(&a, &b, 1e-10, 500, 1);
        let (r4, _) = spmd_cg(&a, &b, 1e-10, 500, 4);
        // Same algorithm; reduction orders differ slightly but iteration
        // counts should match on this well-conditioned system.
        assert_eq!(r1.iterations, r4.iterations);
    }

    #[test]
    fn spmd_traffic_scales_with_iterations() {
        let a = gen::poisson_2d(8, 8);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let (res, run) = spmd_cg(&a, &b, 1e-10, 300, 4);
        // Per iteration: 1 allgather (each rank sends n/np to np-1 peers)
        // + ~2 allreduces. Words must grow with iterations.
        assert!(run.total_words_sent() as usize >= res.iterations * 64 / 4 * 3);
    }

    #[test]
    fn spmd_cg_nonconvergence_reported() {
        let a = gen::poisson_2d(8, 8);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let (res, _) = spmd_cg(&a, &b, 1e-14, 2, 2);
        assert!(!res.converged);
        assert_eq!(res.iterations, 2);
    }
}
