//! Property tests over the HPF runtime: distributed operations compute
//! exactly what their serial counterparts compute, for arbitrary
//! matrices, vectors, processor counts and (where applicable) layouts —
//! and FORALL/Bernstein semantics hold on arbitrary access patterns.

use hpf_core::ext::PrivateRegion;
use hpf_core::forall::{bernstein_check, forall_assign, IterationAccess};
use hpf_core::{ColwiseCsc, DataArrayLayout, DistVector, RowwiseCsr};
use hpf_dist::{ArrayDescriptor, DistSpec};
use hpf_machine::{CostModel, Machine, Topology};
use hpf_sparse::{CooMatrix, CscMatrix, CsrMatrix};
use proptest::prelude::*;

fn machine(np: usize) -> Machine {
    Machine::new(np, Topology::Hypercube, CostModel::mpp_1995())
}

/// A random square sparse matrix with unique coordinates.
fn arb_square(n_max: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>)> {
    (2usize..n_max).prop_flat_map(|n| {
        let cell = (0..n, 0..n, -10.0f64..10.0);
        proptest::collection::vec(cell, 0..60).prop_map(move |mut v| {
            v.sort_by_key(|&(i, j, _)| (i, j));
            v.dedup_by_key(|&mut (i, j, _)| (i, j));
            (n, v)
        })
    })
}

fn arb_layout(n: usize, np: usize, seed: u64) -> ArrayDescriptor {
    match seed % 3 {
        0 => ArrayDescriptor::block(n, np),
        1 => ArrayDescriptor::cyclic(n, np),
        _ => ArrayDescriptor::new(n, np, DistSpec::CyclicK(1 + (seed as usize % 4))),
    }
}

proptest! {
    /// SAXPY / AYPX / dot on any layout equal their serial versions.
    #[test]
    fn vector_ops_match_serial(
        n in 1usize..150,
        np in 1usize..9,
        seed in any::<u64>(),
        alpha in -4.0f64..4.0,
    ) {
        let desc = arb_layout(n, np, seed);
        let xs: Vec<f64> = (0..n).map(|i| ((i * 31 + 7) % 13) as f64 - 6.0).collect();
        let ys: Vec<f64> = (0..n).map(|i| ((i * 17 + 3) % 11) as f64 - 5.0).collect();

        let mut m = machine(np);
        let mut y = DistVector::from_global(desc.clone(), &ys);
        let x = DistVector::from_global(desc.clone(), &xs);
        y.axpy(&mut m, alpha, &x);
        let want: Vec<f64> = ys.iter().zip(xs.iter()).map(|(yi, xi)| yi + alpha * xi).collect();
        prop_assert_eq!(y.to_global(), want);

        let mut p = DistVector::from_global(desc.clone(), &ys);
        p.aypx(&mut m, alpha, &x);
        let want2: Vec<f64> = ys.iter().zip(xs.iter()).map(|(yi, xi)| alpha * yi + xi).collect();
        for (u, v) in p.to_global().iter().zip(want2.iter()) {
            prop_assert!((u - v).abs() < 1e-12);
        }

        let got = x.dot(&mut m, &DistVector::from_global(desc, &ys));
        let want3: f64 = xs.iter().zip(ys.iter()).map(|(a, b)| a * b).sum();
        prop_assert!((got - want3).abs() < 1e-9 * want3.abs().max(1.0));
    }

    /// Scenario 1 and Scenario 2 matvecs (all variants) equal the dense
    /// reference for any matrix and processor count.
    #[test]
    fn distributed_matvecs_match_reference(
        (n, trips) in arb_square(16),
        np in 1usize..7,
        layout_elem in any::<bool>(),
    ) {
        let coo = CooMatrix::from_triplets(n, n, trips).unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        let csc = CscMatrix::from_coo(&coo);
        let x: Vec<f64> = (0..n).map(|i| ((i * 7 + 1) % 9) as f64 - 4.0).collect();
        let want = csr.matvec(&x).unwrap();
        let p = DistVector::from_global(ArrayDescriptor::block(n, np), &x);

        let layout = if layout_elem {
            DataArrayLayout::ElementBlock
        } else {
            DataArrayLayout::RowAligned
        };
        let mut m = machine(np);
        let row_op = RowwiseCsr::block(csr.clone(), np, layout);
        let (q1, _) = row_op.matvec(&mut m, &p);
        for (u, v) in q1.to_global().iter().zip(want.iter()) {
            prop_assert!((u - v).abs() < 1e-10);
        }

        let col_op = ColwiseCsc::block(csc, np);
        let mut m2 = machine(np);
        let (q2, _) = col_op.matvec_serial(&mut m2, &p);
        let mut m3 = machine(np);
        let (q3, _) = col_op.matvec_temp2d(&mut m3, &p);
        for i in 0..n {
            prop_assert!((q2.to_global()[i] - want[i]).abs() < 1e-10);
            prop_assert!((q3.to_global()[i] - want[i]).abs() < 1e-10);
        }

        // Transpose direction.
        let want_t = csr.matvec_transpose(&x).unwrap();
        let mut m4 = machine(np);
        let (qt, _) = row_op.matvec_transpose(&mut m4, &p);
        for (u, v) in qt.to_global().iter().zip(want_t.iter()) {
            prop_assert!((u - v).abs() < 1e-10);
        }
    }

    /// The PRIVATE/MERGE CSC matvec equals the serial kernel for any
    /// matrix and any processor count.
    #[test]
    fn private_merge_matches_serial(
        (n, trips) in arb_square(20),
        np in 1usize..9,
    ) {
        let coo = CooMatrix::from_triplets(n, n, trips).unwrap();
        let csc = CscMatrix::from_coo(&coo);
        let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let want = csc.matvec(&x).unwrap();
        let mut m = machine(np);
        let (got, stats) =
            PrivateRegion::csc_matvec(&mut m, csc.col_ptr(), csc.row_idx(), csc.values(), &x);
        // The private region sizes q by the max row index present.
        for (i, w) in want.iter().enumerate() {
            let g = got.get(i).copied().unwrap_or(0.0);
            prop_assert!((g - w).abs() < 1e-10, "row {i}: {g} vs {w}");
        }
        prop_assert_eq!(stats.private_storage_words, np * got.len());
    }

    /// FORALL either fully applies or leaves the target untouched, and
    /// accepts exactly the injective index maps.
    #[test]
    fn forall_all_or_nothing(
        n in 1usize..40,
        offsets in proptest::collection::vec(0usize..40, 1..40),
    ) {
        let count = offsets.len().min(n);
        let lhs: Vec<usize> = offsets.iter().take(count).map(|&o| o % n).collect();
        let mut target = vec![-1.0f64; n];
        let before = target.clone();
        let injective = {
            let mut seen = vec![false; n];
            lhs.iter().all(|&l| {
                if seen[l] {
                    false
                } else {
                    seen[l] = true;
                    true
                }
            })
        };
        let result = forall_assign(&mut target, count, |k| lhs[k], |k| k as f64);
        prop_assert_eq!(result.is_ok(), injective);
        if result.is_err() {
            prop_assert_eq!(target, before);
        } else {
            for (k, &l) in lhs.iter().enumerate() {
                prop_assert_eq!(target[l], k as f64);
            }
        }
    }

    /// Bernstein's checker accepts iff all write sets are disjoint and
    /// no iteration reads another's writes.
    #[test]
    fn bernstein_matches_brute_force(
        writes in proptest::collection::vec(proptest::collection::vec(0usize..12, 0..3), 1..8),
        reads in proptest::collection::vec(proptest::collection::vec(0usize..12, 0..3), 1..8),
    ) {
        let k = writes.len().min(reads.len());
        let iters: Vec<IterationAccess> = (0..k)
            .map(|i| IterationAccess {
                reads: reads[i].clone(),
                writes: writes[i].clone(),
            })
            .collect();
        let got = bernstein_check(&iters).is_ok();
        // Brute force.
        let mut ok = true;
        'outer: for i in 0..k {
            for j in 0..k {
                if i == j {
                    continue;
                }
                for &w in &iters[i].writes {
                    if iters[j].writes.contains(&w) || iters[j].reads.contains(&w) {
                        ok = false;
                        break 'outer;
                    }
                }
            }
        }
        prop_assert_eq!(got, ok);
    }

    /// Machine time for the same program is independent of tracing, and
    /// numerics are independent of the cost model.
    #[test]
    fn cost_model_never_affects_numerics(
        (n, trips) in arb_square(12),
        np in 1usize..5,
    ) {
        let coo = CooMatrix::from_triplets(n, n, trips).unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let p = DistVector::from_global(ArrayDescriptor::block(n, np), &x);
        let op = RowwiseCsr::block(csr, np, DataArrayLayout::RowAligned);
        let mut m1 = Machine::new(np, Topology::Hypercube, CostModel::mpp_1995());
        let mut m2 = Machine::new(np, Topology::Ring, CostModel::lan_cluster());
        let (q1, _) = op.matvec(&mut m1, &p);
        let (q2, _) = op.matvec(&mut m2, &p);
        prop_assert_eq!(q1.to_global(), q2.to_global());
    }
}
