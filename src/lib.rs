//! # hpf — facade crate for the HPF-CG paper reproduction
//!
//! Re-exports the whole workspace: the simulated multicomputer
//! ([`machine`]), the distribution layer ([`dist`]), sparse formats
//! ([`sparse`]), the directive front-end ([`lang`]), the HPF
//! data-parallel model with the paper's proposed extensions ([`core`]),
//! the CG solver family ([`solvers`]), the solver-as-a-service layer
//! with plan caching and batching ([`service`]), the pluggable
//! `REDISTRIBUTE ... USING` partitioner registry and auto-repartitioner
//! ([`partition`]), and the observability layer — spans, per-iteration
//! telemetry, Perfetto/Prometheus exporters, trace analysis ([`obs`]).
//!
//! ```
//! use hpf::prelude::*;
//!
//! // Solve a 2-D Poisson system with distributed CG on a simulated
//! // 4-processor hypercube (the paper's Figure 2 program).
//! let a = hpf::sparse::gen::poisson_2d(8, 8);
//! let (_, b) = hpf::sparse::gen::rhs_for_known_solution(&a);
//! let mut machine = Machine::hypercube(4);
//! let op = RowwiseCsr::block(a, 4, DataArrayLayout::RowAligned);
//! let (x, stats) = cg_distributed(
//!     &mut machine, &op, &b, StopCriterion::RelativeResidual(1e-10), 500,
//! ).unwrap();
//! assert!(stats.converged);
//! assert_eq!(x.len(), 64);
//! ```

pub use hpf_core as core;
pub use hpf_dist as dist;
pub use hpf_lang as lang;
pub use hpf_machine as machine;
pub use hpf_mg as mg;
pub use hpf_obs as obs;
pub use hpf_partition as partition;
pub use hpf_service as service;
pub use hpf_solvers as solvers;
pub use hpf_sparse as sparse;

/// Commonly used items in one import.
pub mod prelude {
    pub use hpf_core::{
        ext::{MergeOp, OnProcessor, PrivateRegion, SparseFormat, SparseMatrixDirective},
        Checkerboard, ColwiseCsc, DataArrayLayout, DistVector, ProcGrid2D, RowwiseCsr,
    };
    pub use hpf_dist::{ArrayDescriptor, AtomAssignment, AtomSpec, DistSpec};
    pub use hpf_lang::{elaborate, parse_program, Env};
    pub use hpf_machine::{CostModel, FaultPlan, FaultRates, Machine, Topology};
    pub use hpf_mg::{pcg_mg_distributed, GridDims, MgHierarchy, MgPreconditioner};
    pub use hpf_obs::{ConvergenceLog, IterObserver, IterSample, Timeline};
    pub use hpf_partition::{
        cg_auto_repartition, AutoRepartitionOutcome, Partitioner, RepartitionPolicy,
    };
    pub use hpf_service::{ServiceConfig, SolveRequest, SolverKind, SolverService};
    pub use hpf_solvers::{
        bicg, bicg_distributed, bicgstab, bicgstab_distributed, cg, cg_distributed,
        cg_distributed_protected, cgs, gmres, pcg, pcg_jacobi_distributed,
        pcg_jacobi_distributed_protected, JacobiPrec, RecoveryConfig, RecoveryStats, SolveStats,
        SolverError, StopCriterion,
    };
    pub use hpf_sparse::{CooMatrix, CscMatrix, CsrMatrix, DenseMatrix};
}
