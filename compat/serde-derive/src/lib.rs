//! No-op `Serialize`/`Deserialize` derives for the offline build.
//!
//! The real `serde_derive` needs `syn`/`quote`, which are unreachable in
//! this environment. Nothing in the workspace consumes the generated
//! trait impls (structured output is written by hand — see
//! `hpf_service::metrics` and `hpf_machine::trace::Trace::to_jsonl`), so
//! the derives expand to nothing: they exist to keep `#[derive(...)]`
//! attributes compiling unchanged for the day the real crates return.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
