//! Test-runner state: configuration and the deterministic RNG.

/// How many random cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the numeric-heavy
        // suites (CG solves per case) fast while still exercising the
        // properties broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic xorshift64* generator.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        // splitmix64 scramble; avoid the all-zero fixed point.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        TestRng {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Holder of the per-test RNG (the subset of proptest's `TestRunner`
/// that strategies need).
#[derive(Debug, Clone)]
pub struct TestRunner {
    rng: TestRng,
}

impl TestRunner {
    /// Seed derived from a test's fully qualified name, so every run of
    /// a given test sees the same case sequence.
    pub fn deterministic_for(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRunner {
            rng: TestRng::from_seed(h),
        }
    }

    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

impl Default for TestRunner {
    fn default() -> Self {
        Self::deterministic_for("proptest::test_runner::TestRunner::default")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRunner::deterministic_for("x");
        let mut b = TestRunner::deterministic_for("x");
        let mut c = TestRunner::deterministic_for("y");
        let va: Vec<u64> = (0..4).map(|_| a.rng().next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.rng().next_u64()).collect();
        let vc: Vec<u64> = (0..4).map(|_| c.rng().next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::from_seed(1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
