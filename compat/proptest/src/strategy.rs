//! The `Strategy` trait and combinators (generation only, no shrinking).

use crate::test_runner::{TestRng, TestRunner};
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Regenerate until the predicate holds (up to an attempt cap).
    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }

    /// Recursive strategies: `f` receives the strategy for the previous
    /// depth level (bottoming out at `self`, the leaf). `desired_size`
    /// and `expected_branch_size` are accepted for API compatibility but
    /// unused — recursion depth alone bounds the output.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        let expand: Expander<Self::Value> = Arc::new(move |inner| f(inner).boxed());
        Recursive {
            leaf: self.boxed(),
            depth,
            expand,
        }
    }

    /// Type-erase into a clonable, shareable strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Generate a (non-shrinking) value tree — mirrors
    /// `Strategy::new_tree` for code that drives generation manually.
    #[allow(clippy::result_unit_err)]
    fn new_tree(&self, runner: &mut TestRunner) -> Result<StaticTree<Self::Value>, ()>
    where
        Self::Value: Clone,
    {
        Ok(StaticTree {
            value: self.generate(runner.rng()),
        })
    }
}

/// A generated value holder — the degenerate (no-shrinking) `ValueTree`.
pub trait ValueTree {
    type Value;

    fn current(&self) -> Self::Value;

    fn simplify(&mut self) -> bool {
        false
    }

    fn complicate(&mut self) -> bool {
        false
    }
}

/// The tree returned by [`Strategy::new_tree`].
#[derive(Debug, Clone)]
pub struct StaticTree<T: Clone> {
    value: T,
}

impl<T: Clone> ValueTree for StaticTree<T> {
    type Value = T;

    fn current(&self) -> T {
        self.value.clone()
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 10000 candidates", self.whence);
    }
}

/// Object-safe generation, used behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Clonable type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice among strategies — what `prop_oneof!` builds.
#[derive(Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// See [`Strategy::prop_recursive`].
/// Shared depth-expansion function of a [`Recursive`] strategy.
type Expander<T> = Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>;

pub struct Recursive<T> {
    leaf: BoxedStrategy<T>,
    depth: u32,
    expand: Expander<T>,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            leaf: self.leaf.clone(),
            depth: self.depth,
            expand: self.expand.clone(),
        }
    }
}

impl<T> Strategy for Recursive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        // Random depth in [0, depth]: a mix of leaves and nested values.
        let d = rng.below(self.depth as u64 + 1);
        let mut strat = self.leaf.clone();
        for _ in 0..d {
            strat = (self.expand)(strat);
        }
        strat.generate(rng)
    }
}

// ---- Range strategies -------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.unit_f64() * (hi - lo)
    }
}

// ---- Tuple strategies -------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// ---- String pattern strategy ------------------------------------------

/// `&str` as a strategy: a micro-subset of proptest's regex-based string
/// generation. Supported syntax: literal characters, `[...]` character
/// classes with ranges (e.g. `[a-z0-9_]`), and `{m}` / `{m,n}`
/// repetition after a class or literal.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0usize;
    while i < chars.len() {
        // One atom: a class or a literal.
        let class: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed '[' in pattern '{pattern}'"));
            let mut cls = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    assert!(lo <= hi, "bad class range in '{pattern}'");
                    for c in lo..=hi {
                        cls.push(char::from_u32(c).unwrap());
                    }
                    j += 3;
                } else {
                    cls.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            cls
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        assert!(!class.is_empty(), "empty character class in '{pattern}'");

        // Optional {m} / {m,n} quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed '{{' in pattern '{pattern}'"));
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("bad {m,n}"),
                    n.trim().parse::<usize>().expect("bad {m,n}"),
                ),
                None => {
                    let m = spec.trim().parse::<usize>().expect("bad {m}");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };

        let count = min + (rng.below((max - min + 1) as u64)) as usize;
        for _ in 0..count {
            out.push(class[rng.below(class.len() as u64) as usize]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRunner;

    fn rng() -> TestRunner {
        TestRunner::deterministic_for("strategy-tests")
    }

    #[test]
    fn ranges_and_tuples() {
        let mut r = rng();
        for _ in 0..200 {
            let (a, b, f) = (1usize..5, 10i64..20, -1.0f64..1.0).generate(r.rng());
            assert!((1..5).contains(&a));
            assert!((10..20).contains(&b));
            assert!((-1.0..1.0).contains(&f));
            let k = (3usize..=7).generate(r.rng());
            assert!((3..=7).contains(&k));
        }
    }

    #[test]
    fn map_filter_flat_map() {
        let mut r = rng();
        let s = (0usize..10)
            .prop_map(|x| x * 2)
            .prop_filter("nonzero", |&x| x != 0)
            .prop_flat_map(|x| (0usize..x).prop_map(move |y| (x, y)));
        for _ in 0..200 {
            let (x, y) = s.generate(r.rng());
            assert!(x % 2 == 0 && x > 0 && y < x);
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut r = rng();
        let u = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[u.generate(r.rng()) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_terminates_and_nests() {
        #[derive(Debug, Clone, PartialEq)]
        enum T {
            Leaf(u8),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(_) => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0u8..10).prop_map(T::Leaf);
        let s = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut r = rng();
        let mut max_depth = 0;
        for _ in 0..200 {
            max_depth = max_depth.max(depth(&s.generate(r.rng())));
        }
        assert!(max_depth >= 1, "recursion never fired");
        assert!(max_depth <= 3, "depth bound violated");
    }

    #[test]
    fn string_pattern_subset() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,6}".generate(r.rng());
            assert!(!s.is_empty() && s.len() <= 7, "bad len: {s}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
        let lit = "ab{2}c".generate(r.rng());
        assert_eq!(lit, "abbc");
    }

    #[test]
    fn collection_vec_lengths() {
        let mut r = rng();
        for _ in 0..100 {
            let v = crate::collection::vec(0usize..5, 2..6).generate(r.rng());
            assert!((2..6).contains(&v.len()));
            let exact = crate::collection::vec(Just(1u8), 4usize).generate(r.rng());
            assert_eq!(exact.len(), 4);
        }
    }

    #[test]
    fn new_tree_value_tree_roundtrip() {
        let mut runner = TestRunner::default();
        let tree = (5usize..6).new_tree(&mut runner).unwrap();
        assert_eq!(tree.current(), 5);
    }
}
