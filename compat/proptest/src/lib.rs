//! Offline stand-in for `proptest`.
//!
//! Implements the property-testing surface this workspace uses — the
//! [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map`/`prop_flat_map`/`prop_filter`/`prop_recursive`, range and
//! tuple strategies, a tiny character-class string strategy,
//! [`collection::vec`], [`Just`](strategy::Just), `prop_oneof!`, and
//! `any::<T>()` — as a plain deterministic random-case runner.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the panic from the test
//!   body directly (the case's inputs appear in assertion messages).
//! * **Deterministic seeding.** Each test function derives its RNG seed
//!   from its module path and name, so failures reproduce exactly and
//!   CI runs are stable.
//! * `prop_assert!`/`prop_assert_eq!` panic immediately instead of
//!   returning `Err(TestCaseError)`.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections (only `vec` is provided).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Size specification for [`vec`]: an exact `usize`, a `Range`, or a
    /// `RangeInclusive`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(strategy, len)` lookalike.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.max - self.size.min + 1;
            let len = self.size.min + (rng.next_u64() % span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait ArbitraryValue: Sized {
        fn arbitrary_from(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<T> Copy for Any<T> {}

    impl<T> std::fmt::Debug for Any<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("any")
        }
    }

    /// `proptest::prelude::any::<T>()` lookalike.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_from(rng)
        }
    }

    impl ArbitraryValue for bool {
        fn arbitrary_from(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary_from(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for f64 {
        fn arbitrary_from(rng: &mut TestRng) -> f64 {
            // Finite, well-spread values; the workspace's properties are
            // about numerics, not NaN plumbing.
            let mag = rng.unit_f64() * 1e6 - 5e5;
            if rng.next_u64() & 7 == 0 {
                mag / 1e9
            } else {
                mag
            }
        }
    }

    impl ArbitraryValue for f32 {
        fn arbitrary_from(rng: &mut TestRng) -> f32 {
            f64::arbitrary_from(rng) as f32
        }
    }

    impl ArbitraryValue for char {
        fn arbitrary_from(rng: &mut TestRng) -> char {
            // Printable ASCII keeps renderer round-trips honest.
            (b' ' + (rng.next_u64() % 95) as u8) as char
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union, ValueTree};
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use arbitrary::any;
pub use strategy::Just;

/// `prop_assert!` that panics on failure (no `TestCaseError` channel).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` that panics on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` that panics on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// The property-test entry macro: generates a plain `#[test]` fn per
/// property that runs `ProptestConfig::cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __runner = $crate::test_runner::TestRunner::deterministic_for(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    let ($($pat,)*) = (
                        $($crate::strategy::Strategy::generate(&($strat), __runner.rng()),)*
                    );
                    $body
                }
            }
        )*
    };
}
