//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so this
//! in-tree crate provides the exact subset of the `rand 0.8` API the
//! workspace uses: [`Rng::gen_range`] over integer/float ranges,
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and [`thread_rng`].
//! Generators are deterministic per seed (splitmix64-initialised
//! xorshift64*), which the matrix generators rely on for reproducible
//! fixtures.

use std::ops::{Range, RangeInclusive};

/// Uniform sampling from a range — the subset of `rand`'s
/// `SampleRange` the workspace needs.
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// Object-safe core: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Uniform f64 in [0, 1) (`rng.gen::<f64>()` is spelled
    /// `rng.gen_unit()` here to stay edition-proof: `gen` is a keyword
    /// in Rust 2024).
    fn gen_unit(&mut self) -> f64
    where
        Self: Sized,
    {
        u64_to_unit_f64(self.next_u64())
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen_unit() < p
    }
}

impl<T: RngCore> Rng for T {}

fn u64_to_unit_f64(x: u64) -> f64 {
    // 53 random mantissa bits.
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, u16, u8);

macro_rules! sint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
sint_range!(isize, i64, i32, i16, i8);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + u64_to_unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + u64_to_unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Seeding — only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xorshift64* generator seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 scramble so nearby seeds diverge immediately.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            StdRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

/// A per-call generator seeded from the system clock — kept deliberately
/// simple; use [`rngs::StdRng`] with a fixed seed for reproducibility.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    <rngs::StdRng as SeedableRng>::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1000)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let u = r.gen_range(5usize..17);
            assert!((5..17).contains(&u));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_spread() {
        let mut r = StdRng::seed_from_u64(11);
        let mean: f64 = (0..4000).map(|_| r.gen_unit()).sum::<f64>() / 4000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }
}
