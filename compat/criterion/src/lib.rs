//! Offline stand-in for `criterion`.
//!
//! Implements the harness surface the bench crate uses —
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size`/`bench_with_input`, and
//! `BenchmarkId` — with a simple median-of-samples wall-clock
//! measurement printed to stdout. No statistics engine, plots, or
//! baseline storage; enough to run `cargo bench` and compare numbers by
//! eye. When invoked by `cargo test` (which passes `--test` to
//! `harness = false` bench binaries), benchmarks run a single fast
//! iteration so the suite stays quick.

use std::time::{Duration, Instant};

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last_nanos: u128,
}

impl Bencher {
    /// Time `routine`, reporting the median of `samples` timed batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + batch sizing: aim for batches of at least ~1ms.
        let warm = Instant::now();
        std::hint::black_box(routine());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let per_batch =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 1000) as usize;

        let mut medians = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..per_batch {
                std::hint::black_box(routine());
            }
            medians.push(t.elapsed().as_nanos() / per_batch as u128);
        }
        medians.sort_unstable();
        self.last_nanos = medians[medians.len() / 2];
    }
}

fn fmt_nanos(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn is_test_mode() -> bool {
    // `cargo test` invokes harness=false bench binaries with `--test`.
    std::env::args().any(|a| a == "--test")
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: if is_test_mode() { 1 } else { 10 },
        }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: effective_samples(self.sample_size),
            last_nanos: 0,
        };
        f(&mut b);
        println!("bench {:<40} {:>12}/iter", id, fmt_nanos(b.last_nanos));
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

fn effective_samples(configured: usize) -> usize {
    if is_test_mode() {
        1
    } else {
        configured.max(1)
    }
}

/// Named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: effective_samples(self.sample_size),
            last_nanos: 0,
        };
        f(&mut b);
        println!(
            "bench {:<40} {:>12}/iter",
            format!("{}/{}", self.name, id.id),
            fmt_nanos(b.last_nanos)
        );
        self
    }

    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: effective_samples(self.sample_size),
            last_nanos: 0,
        };
        f(&mut b, input);
        println!(
            "bench {:<40} {:>12}/iter",
            format!("{}/{}", self.name, id.id),
            fmt_nanos(b.last_nanos)
        );
        self
    }

    pub fn finish(self) {}
}

/// Re-export for closures that want `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("smoke", |b| b.iter(|| ran = ran.wrapping_add(1)));
        assert!(ran > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("f", |b| b.iter(|| 2 + 2));
        group.bench_with_input(BenchmarkId::new("p", 3), &3usize, |b, &n| b.iter(|| n * n));
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
