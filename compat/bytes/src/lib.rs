//! Offline stand-in for `bytes`: the `Buf`/`BufMut`/`Bytes`/`BytesMut`
//! subset the SPMD substrate uses for message payloads. `Bytes` is a
//! cheaply clonable shared buffer with a read cursor; `BytesMut` is a
//! growable write buffer frozen into `Bytes`.

use std::sync::Arc;

/// Read-side cursor operations.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write-side append operations.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Immutable shared byte buffer with a read cursor.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    pos: usize,
}

impl Bytes {
    pub fn from_vec(data: Vec<u8>) -> Self {
        Bytes {
            data: data.into(),
            pos: 0,
        }
    }

    /// Bytes left to read (shrinks as the cursor advances, as in the
    /// real crate where reads split the buffer).
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of buffer");
        self.pos += cnt;
    }
}

/// Growable write buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        let vals = [0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, 13.37];
        let mut w = BytesMut::with_capacity(8 * vals.len());
        for &v in &vals {
            w.put_f64_le(v);
        }
        let mut r = w.freeze();
        assert_eq!(r.len(), 8 * vals.len());
        let mut out = Vec::new();
        while r.remaining() >= 8 {
            out.push(r.get_f64_le());
        }
        assert_eq!(out, vals.to_vec());
        assert!(r.is_empty());
    }

    #[test]
    fn clone_shares_storage_independent_cursor() {
        let mut w = BytesMut::new();
        w.put_u64_le(7);
        w.put_u64_le(9);
        let mut a = w.freeze();
        let mut b = a.clone();
        assert_eq!(a.get_u64_le(), 7);
        assert_eq!(b.get_u64_le(), 7);
        assert_eq!(a.get_u64_le(), 9);
        assert_eq!(b.get_u64_le(), 9);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut b = Bytes::from_vec(vec![1, 2]);
        b.advance(3);
    }
}
