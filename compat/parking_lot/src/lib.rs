//! Offline stand-in for `parking_lot`: poison-free `Mutex`/`RwLock`
//! wrappers over `std::sync`. Lock methods return guards directly (no
//! `Result`), matching the parking_lot API the workspace uses; a
//! poisoned std lock is recovered rather than propagated, which mirrors
//! parking_lot's no-poisoning semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
