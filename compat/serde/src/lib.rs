//! Offline stand-in for `serde`.
//!
//! Re-exports the in-tree no-op derives so `use serde::{Serialize,
//! Deserialize}` and `#[derive(Serialize, Deserialize)]` compile
//! unchanged. The marker traits below exist so downstream code can still
//! write `T: Serialize` bounds if it ever needs to; no impls are
//! generated, so nothing in the workspace may *rely* on them — concrete
//! serialization in this repo is hand-written (JSON/JSONL emitters in
//! `hpf-machine` and `hpf-service`).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::ser::Serialize` (no impls generated).
pub trait SerializeMarker {}

/// Marker trait mirroring `serde::de::Deserialize` (no impls generated).
pub trait DeserializeMarker {}
