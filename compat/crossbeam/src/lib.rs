//! Offline stand-in for `crossbeam`: multi-producer multi-consumer
//! channels over a `Mutex<VecDeque>` + two condvars, with crossbeam's
//! disconnection semantics. Supports the surface the workspace uses:
//! `unbounded`, `bounded` (with `try_send` backpressure), clonable
//! senders *and* receivers, and `recv_timeout`.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half. Clonable; the channel disconnects when all senders
    /// are dropped.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half. Clonable (MPMC); the channel disconnects when all
    /// receivers are dropped.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error on send into a channel with no remaining receivers.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error for [`Sender::try_send`].
    #[derive(PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// Bounded channel at capacity.
        Full(T),
        /// No remaining receivers.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "Full(..)"),
                TrySendError::Disconnected(_) => write!(f, "Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => {
                    write!(f, "sending on a disconnected channel")
                }
            }
        }
    }

    /// Error on receive from an empty, sender-less channel.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error for [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error for [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    fn shared<T>(cap: Option<usize>) -> Arc<Shared<T>> {
        Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        })
    }

    /// Channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let s = shared(None);
        (Sender { shared: s.clone() }, Receiver { shared: s })
    }

    /// Channel holding at most `cap` queued messages. `cap` of zero is
    /// modelled as capacity one (this stub has no rendezvous mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let s = shared(Some(cap.max(1)));
        (Sender { shared: s.clone() }, Receiver { shared: s })
    }

    impl<T> Sender<T> {
        /// Blocking send; errors only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = st.cap.is_some_and(|c| st.queue.len() >= c);
                if !full {
                    st.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                st = self
                    .shared
                    .not_full
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking send — the service's backpressure primitive.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if st.cap.is_some_and(|c| st.queue.len() >= c) {
                return Err(TrySendError::Full(value));
            }
            st.queue.push_back(value);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .queue
                .len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive; errors once the queue is drained and every
        /// sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = st.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .queue
                .len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            if st.senders == 0 {
                // Wake blocked receivers so they observe disconnection.
                drop(st);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.shared.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_try_send_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 9);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn disconnect_on_receiver_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
        assert!(matches!(tx.try_send(2), Err(TrySendError::Disconnected(2))));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u8>();
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
    }

    #[test]
    fn mpmc_workers_drain_everything() {
        let (tx, rx) = bounded(4);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = 0u64;
                    while let Ok(v) = rx.recv() {
                        got += v;
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        let total: u64 = (1..=100).sum();
        for v in 1..=100u64 {
            tx.send(v).unwrap();
        }
        drop(tx);
        let sum: u64 = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(sum, total);
    }

    #[test]
    fn bounded_send_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let h = std::thread::spawn(move || tx.send(2).map(|_| true).unwrap_or(false));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(h.join().unwrap());
        assert_eq!(rx.recv().unwrap(), 2);
    }
}
