//! Integration: the HPF program and the hand-coded message-passing SPMD
//! program compute the same answers with comparable traffic (E13's
//! claim, tested end to end).

use hpf::core::spmd_baseline::{spmd_cg, spmd_matvec};
use hpf::prelude::*;
use hpf::sparse::gen;

#[test]
fn matvec_results_identical() {
    let a = gen::random_spd(96, 4, 8);
    let p: Vec<f64> = (0..96).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
    let np = 4;

    // HPF (simulated machine).
    let mut m = Machine::hypercube(np);
    let op = RowwiseCsr::block(a.clone(), np, DataArrayLayout::RowAligned);
    let pv = DistVector::from_global(ArrayDescriptor::block(96, np), &p);
    let (q_hpf, _) = op.matvec(&mut m, &pv);

    // SPMD (real threads).
    let (q_spmd, _) = spmd_matvec(&a, &p, np);

    for (u, v) in q_hpf.to_global().iter().zip(q_spmd.iter()) {
        assert!((u - v).abs() < 1e-12);
    }
}

#[test]
fn cg_converges_to_same_solution() {
    let a = gen::poisson_2d(10, 10);
    let (x_true, b) = gen::rhs_for_known_solution(&a);
    let np = 4;

    let mut m = Machine::hypercube(np);
    let op = RowwiseCsr::block(a.clone(), np, DataArrayLayout::RowAligned);
    let (x_hpf, s_hpf) = cg_distributed(
        &mut m,
        &op,
        &b,
        StopCriterion::RelativeResidual(1e-10),
        2000,
    )
    .unwrap();
    let (res_spmd, _) = spmd_cg(&a, &b, 1e-10, 2000, np);

    assert!(s_hpf.converged && res_spmd.converged);
    for (u, v) in x_hpf.to_global().iter().zip(res_spmd.x.iter()) {
        assert!((u - v).abs() < 1e-7);
    }
    for (u, v) in x_hpf.to_global().iter().zip(x_true.iter()) {
        assert!((u - v).abs() < 1e-6);
    }
}

#[test]
fn traffic_volumes_within_factor_two() {
    let a = gen::random_spd(128, 4, 2);
    let (_, b) = gen::rhs_for_known_solution(&a);
    let np = 8;

    let mut m = Machine::hypercube(np);
    let op = RowwiseCsr::block(a.clone(), np, DataArrayLayout::RowAligned);
    let (_, s_hpf) =
        cg_distributed(&mut m, &op, &b, StopCriterion::RelativeResidual(1e-8), 2000).unwrap();
    let hpf_words = m.total_words_sent() as f64;

    let (res, run) = spmd_cg(&a, &b, 1e-8, 2000, np);
    let spmd_words = run.total_words_sent() as f64;

    assert!(s_hpf.converged && res.converged);
    let ratio = hpf_words / spmd_words;
    assert!(
        ratio > 0.5 && ratio < 2.0,
        "HPF {hpf_words} vs SPMD {spmd_words} (ratio {ratio})"
    );
}

#[test]
fn spmd_message_count_grows_with_np() {
    let a = gen::poisson_2d(8, 8);
    let (_, b) = gen::rhs_for_known_solution(&a);
    let mut counts = Vec::new();
    for np in [2usize, 4, 8] {
        let (res, run) = spmd_cg(&a, &b, 1e-8, 1000, np);
        assert!(res.converged);
        counts.push(run.total_messages());
    }
    assert!(counts.windows(2).all(|w| w[1] > w[0]));
}
