//! Integration: the directive front-end drives the whole stack — the
//! paper's own listings parse, elaborate against real problem sizes, and
//! the resulting layouts execute with the expected semantics and costs.

use hpf::lang::{elaborate, parse_program, Env, MergeSpec};
use hpf::prelude::*;
use hpf::sparse::gen;
use std::collections::BTreeMap;

fn extents_for(n: usize, nz: usize) -> BTreeMap<String, usize> {
    [
        ("p", n),
        ("q", n),
        ("r", n),
        ("x", n),
        ("b", n),
        ("row", n + 1),
        ("col", nz),
        ("a", nz),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v))
    .collect()
}

const FIGURE2: &str = "
!HPF$ PROCESSORS :: PROCS(NP)
!HPF$ ALIGN (:) WITH p(:) :: q, r, x, b
!HPF$ DISTRIBUTE p(BLOCK)
!HPF$ DISTRIBUTE row(CYCLIC((n+NP-1)/np))
!HPF$ ALIGN a(:) WITH col(:)
!HPF$ DISTRIBUTE col(BLOCK)
";

#[test]
fn figure2_deck_to_converged_solve() {
    let a = gen::poisson_2d(10, 10);
    let n = a.n_rows();
    let nz = a.nnz();
    let (x_true, b) = gen::rhs_for_known_solution(&a);

    let ds = parse_program(FIGURE2).unwrap();
    let env = Env::new().bind("np", 4).bind("n", n as i64);
    let elab = elaborate(&ds, &env, &extents_for(n, nz)).unwrap();
    assert_eq!(elab.np, 4);

    // The deck's vector layout is BLOCK; drive the solver with it.
    let p_desc = elab.graph.descriptor("p").unwrap();
    assert_eq!(p_desc.spec(), &hpf::dist::DistSpec::Block);
    let mut m = Machine::hypercube(elab.np);
    let op = RowwiseCsr::block(a, elab.np, DataArrayLayout::RowAligned);
    let (x, stats) = cg_distributed(
        &mut m,
        &op,
        &b,
        StopCriterion::RelativeResidual(1e-10),
        10 * n,
    )
    .unwrap();
    assert!(stats.converged);
    for (u, v) in x.to_global().iter().zip(x_true.iter()) {
        assert!((u - v).abs() < 1e-6);
    }
}

#[test]
fn all_aligned_vectors_share_layout_after_redistribute() {
    let n = 64;
    let ds = parse_program(FIGURE2).unwrap();
    let env = Env::new().bind("np", 4).bind("n", n as i64);
    let mut elab = elaborate(&ds, &env, &extents_for(n, 300)).unwrap();
    // REDISTRIBUTE p(CYCLIC) moves the whole Figure 2 vector group.
    let moved = elab
        .graph
        .redistribute("p", hpf::dist::DistSpec::Cyclic)
        .unwrap();
    assert_eq!(moved, vec!["b", "p", "q", "r", "x"]);
    for v in ["q", "r", "x", "b"] {
        assert!(elab
            .graph
            .descriptor(v)
            .unwrap()
            .same_layout(&elab.graph.descriptor("p").unwrap()));
    }
    // The CSR trio is untouched.
    assert_eq!(
        elab.graph.descriptor("col").unwrap().spec(),
        &hpf::dist::DistSpec::Block
    );
}

#[test]
fn figure5_deck_drives_private_region() {
    // Parse Figure 5's directive and use its mapping + merge spec to run
    // an actual privatised CSC matvec.
    let src = "
!EXT$ ITERATION j ON PROCESSOR(j/np), &
!EXT$ PRIVATE(q(n)) WITH MERGE(+), &
!EXT$ NEW(pj, k), PRIVATE(q(n))
";
    let a = gen::random_spd(60, 4, 2);
    let csc = CscMatrix::from_csr(&a);
    let n = a.n_rows();
    let np = 4i64;

    let ds = parse_program(src).unwrap();
    let elab = elaborate(
        &ds,
        &Env::new().bind("np", np).bind("n", n as i64),
        &BTreeMap::new(),
    )
    .unwrap();
    let im = &elab.iteration_maps[0];
    assert_eq!(im.privatises("q"), Some(MergeSpec::Sum));

    // Build the OnProcessor mapping from the parsed expression.
    let base = Env::new()
        .bind("np", (n as i64) / np.max(1))
        .bind("n", n as i64);
    // Paper's f(j) = j/np maps blocks of size np... its intent is a block
    // map; sanity-check monotonicity and range.
    let first = im.processor_of(0, &base).unwrap();
    let last = im.processor_of(n - 1, &base).unwrap();
    assert!(first <= last);
    assert!(last < elab.np);

    // And the semantic payload: privatised accumulation equals serial.
    let x = vec![1.0; n];
    let want = csc.matvec(&x).unwrap();
    let mut m = Machine::hypercube(elab.np);
    let (got, _) = hpf::core::ext::PrivateRegion::csc_matvec(
        &mut m,
        csc.col_ptr(),
        csc.row_idx(),
        csc.values(),
        &x,
    );
    for (u, v) in got.iter().zip(want.iter()) {
        assert!((u - v).abs() < 1e-12);
    }
}

#[test]
fn section4_scenario_directives_parse_and_identify() {
    // The (BLOCK,*) and (*,BLOCK) alignment fragments of Section 4.
    let s1 = hpf::lang::parse_directive("ALIGN A(:, *) WITH p(:)").unwrap();
    let s2 = hpf::lang::parse_directive("ALIGN A(*, :) WITH p(:)").unwrap();
    assert!(matches!(
        s1,
        hpf::lang::Directive::Align {
            pattern: hpf::lang::AlignPattern::FirstDim,
            ..
        }
    ));
    assert!(matches!(
        s2,
        hpf::lang::Directive::Align {
            pattern: hpf::lang::AlignPattern::SecondDim,
            ..
        }
    ));
}

#[test]
fn sparse_directive_text_to_balanced_solve() {
    // Section 5.2.2's full extension block, end to end.
    let src = "
!HPF$ PROCESSORS :: PROCS(8)
!HPF$ DISTRIBUTE col(BLOCK)
!EXT$ INDIVISABLE row(ATOM:i) :: col(i:i+1)
!HPF$ SPARSE_MATRIX (CSR) :: smA(row, col, a)
!EXT$ REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1
";
    let a = gen::power_law_spd(200, 50, 1.0, 3);
    let ds = parse_program(src).unwrap();
    let elab = elaborate(
        &ds,
        &Env::new(),
        &[
            ("col".to_string(), a.nnz()),
            ("row".to_string(), 201),
            ("a".to_string(), a.nnz()),
        ]
        .into_iter()
        .collect(),
    )
    .unwrap();
    assert_eq!(elab.sparse_matrices[0].name, "smA");
    assert_eq!(
        elab.partitioner_requests[0].partitioner,
        "CG_BALANCED_PARTITIONER_1"
    );

    // Honour the partitioner request against the runtime matrix.
    use hpf::core::ext::{SparseFormat, SparseMatrixDirective};
    let mut sm = SparseMatrixDirective::new(SparseFormat::Csr, a.row_ptr(), elab.np);
    let before = sm.imbalance();
    let mut m = Machine::hypercube(elab.np);
    sm.redistribute_balanced(&mut m);
    assert!(sm.imbalance() <= before);
    assert!(sm.trio_is_consistent());
}
