//! Cross-crate integration: generate → distribute → solve → verify, over
//! multiple matrix families, topologies, processor counts and layouts.

use hpf::prelude::*;
use hpf::solvers::{ColwiseOperator, CscVariant};
use hpf::sparse::gen;

fn rel_residual(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
    let ax = a.matvec(x).unwrap();
    let num: f64 = ax
        .iter()
        .zip(b.iter())
        .map(|(u, v)| (u - v) * (u - v))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    num / den.max(1e-300)
}

#[test]
fn distributed_cg_on_every_matrix_family() {
    let matrices: Vec<(&str, CsrMatrix)> = vec![
        ("poisson2d", gen::poisson_2d(12, 12)),
        ("poisson3d", gen::poisson_3d(6, 6, 6)),
        ("banded", gen::banded_spd(150, 5, 3)),
        ("random", gen::random_spd(150, 4, 4)),
        ("powerlaw", gen::power_law_spd(150, 40, 1.0, 5)),
        ("tridiag", gen::tridiagonal(150, 2.0, -0.9)),
    ];
    for (name, a) in matrices {
        let n = a.n_rows();
        let (_, b) = gen::rhs_for_known_solution(&a);
        let mut m = Machine::hypercube(8);
        let op = RowwiseCsr::block(a.clone(), 8, DataArrayLayout::RowAligned);
        let (x, stats) = cg_distributed(
            &mut m,
            &op,
            &b,
            StopCriterion::RelativeResidual(1e-9),
            20 * n,
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(stats.converged, "{name} did not converge");
        assert!(
            rel_residual(&a, &x.to_global(), &b) < 1e-8,
            "{name} residual too large"
        );
    }
}

#[test]
fn distributed_cg_on_every_topology() {
    let a = gen::poisson_2d(8, 8);
    let (_, b) = gen::rhs_for_known_solution(&a);
    let mut iters = Vec::new();
    for topo in [
        Topology::Hypercube,
        Topology::Mesh2D,
        Topology::Ring,
        Topology::FullyConnected,
        Topology::Bus,
    ] {
        let mut m = Machine::new(4, topo, CostModel::mpp_1995());
        let op = RowwiseCsr::block(a.clone(), 4, DataArrayLayout::RowAligned);
        let (_, stats) =
            cg_distributed(&mut m, &op, &b, StopCriterion::RelativeResidual(1e-9), 1000).unwrap();
        assert!(stats.converged, "{topo:?}");
        iters.push(stats.iterations);
        assert!(m.elapsed() > 0.0);
    }
    // Topology changes cost, never numerics.
    assert!(iters.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn distributed_cg_np_sweep_preserves_numerics() {
    let a = gen::poisson_2d(10, 10);
    let (_, b) = gen::rhs_for_known_solution(&a);
    let mut solutions = Vec::new();
    for np in [1usize, 2, 3, 5, 8, 16] {
        let mut m = Machine::hypercube(np);
        let op = RowwiseCsr::block(a.clone(), np, DataArrayLayout::RowAligned);
        let (x, stats) = cg_distributed(
            &mut m,
            &op,
            &b,
            StopCriterion::RelativeResidual(1e-10),
            1000,
        )
        .unwrap();
        assert!(stats.converged, "np={np}");
        solutions.push(x.to_global());
    }
    // The simulation computes identical results regardless of NP (same
    // serial reduction order by construction).
    for s in &solutions[1..] {
        for (u, v) in s.iter().zip(solutions[0].iter()) {
            assert!((u - v).abs() < 1e-12);
        }
    }
}

#[test]
fn scenario1_and_scenario2_solvers_agree() {
    let a = gen::random_spd(120, 4, 9);
    let (_, b) = gen::rhs_for_known_solution(&a);
    let np = 4;

    let mut m1 = Machine::hypercube(np);
    let row_op = RowwiseCsr::block(a.clone(), np, DataArrayLayout::RowAligned);
    let (x1, s1) = cg_distributed(
        &mut m1,
        &row_op,
        &b,
        StopCriterion::RelativeResidual(1e-10),
        2000,
    )
    .unwrap();

    let mut m2 = Machine::hypercube(np);
    let col_op = ColwiseOperator {
        inner: ColwiseCsc::block(CscMatrix::from_csr(&a), np),
        variant: CscVariant::Temp2d,
    };
    let (x2, s2) = cg_distributed(
        &mut m2,
        &col_op,
        &b,
        StopCriterion::RelativeResidual(1e-10),
        2000,
    )
    .unwrap();

    assert!(s1.converged && s2.converged);
    assert_eq!(s1.iterations, s2.iterations);
    for (u, v) in x1.to_global().iter().zip(x2.to_global().iter()) {
        assert!((u - v).abs() < 1e-10);
    }
    // But their cost profiles differ: scenario 2 (temp2d) moves vector-
    // length merges instead of allgathers.
    assert!(m1.elapsed() != m2.elapsed());
}

#[test]
fn element_block_layout_costs_more_but_solves_identically() {
    let a = gen::random_spd(100, 5, 11);
    let (_, b) = gen::rhs_for_known_solution(&a);
    let np = 4;
    let stop = StopCriterion::RelativeResidual(1e-9);

    let mut m_aligned = Machine::hypercube(np);
    let op_a = RowwiseCsr::block(a.clone(), np, DataArrayLayout::RowAligned);
    let (xa, sa) = cg_distributed(&mut m_aligned, &op_a, &b, stop, 2000).unwrap();

    let mut m_block = Machine::hypercube(np);
    let op_b = RowwiseCsr::block(a.clone(), np, DataArrayLayout::ElementBlock);
    let (xb, sb) = cg_distributed(&mut m_block, &op_b, &b, stop, 2000).unwrap();

    assert_eq!(sa.iterations, sb.iterations);
    for (u, v) in xa.to_global().iter().zip(xb.to_global().iter()) {
        assert_eq!(u, v);
    }
    // The naive element-block layout pays for remote a/col fetches.
    assert!(m_block.elapsed() > m_aligned.elapsed());
    assert!(m_block.total_words_sent() > m_aligned.total_words_sent());
}

#[test]
fn matrix_market_roundtrip_through_solve() {
    // Write a system to Matrix Market text, read it back, solve both.
    let a = gen::random_spd(60, 3, 21);
    let (_, b) = gen::rhs_for_known_solution(&a);
    let text = hpf::sparse::io::write_matrix_market(&a.to_coo());
    let back = CsrMatrix::from_coo(&hpf::sparse::io::read_matrix_market(&text).unwrap());
    let stop = StopCriterion::RelativeResidual(1e-10);
    let (x1, _) = cg(&a, &b, stop, 1000).unwrap();
    let (x2, _) = cg(&back, &b, stop, 1000).unwrap();
    for (u, v) in x1.iter().zip(x2.iter()) {
        assert!((u - v).abs() < 1e-9);
    }
}

#[test]
fn alignment_graph_drives_real_redistribution() {
    use hpf::dist::{redistribute, AlignmentGraph, DistSpec};
    // Build the Figure 2 alignment group, then REDISTRIBUTE p and check
    // all aligned arrays move, with data preserved.
    let n = 64;
    let np = 4;
    let mut g = AlignmentGraph::new(np);
    g.distribute("p", n, DistSpec::Block);
    for name in ["q", "r", "x", "b"] {
        g.align(name, n, "p").unwrap();
    }
    let before = g.descriptor("r").unwrap();
    let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let local_before: Vec<Vec<f64>> = (0..np)
        .map(|p| before.global_indices(p).iter().map(|&i| data[i]).collect())
        .collect();

    let moved = g.redistribute("p", DistSpec::Cyclic).unwrap();
    assert_eq!(moved.len(), 5);
    let after = g.descriptor("r").unwrap();
    let mut m = Machine::hypercube(np);
    redistribute::redistribute(&mut m, &before, &after, "group-move");
    let local_after = redistribute::permute_local_data(&before, &after, &local_before);
    for p in 0..np {
        for (off, &gidx) in after.global_indices(p).iter().enumerate() {
            assert_eq!(local_after[p][off], data[gidx]);
        }
    }
    assert!(m.total_words_sent() > 0);
}
