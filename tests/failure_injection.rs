//! Failure injection: every malformed input or numerically hostile
//! system must surface a typed error or an honest `converged = false`,
//! never a wrong answer or a hang.

use hpf::prelude::*;
use hpf::solvers::{direct, SolverError};
use hpf::sparse::{gen, io, SparseError};

#[test]
fn malformed_csr_pointers_rejected() {
    // Decreasing pointer.
    assert!(matches!(
        CsrMatrix::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]),
        Err(SparseError::MalformedPointer(_))
    ));
    // Column out of range.
    assert!(matches!(
        CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 5], vec![1.0, 2.0]),
        Err(SparseError::IndexOutOfBounds { .. })
    ));
    // Value/index arity mismatch.
    assert!(matches!(
        CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0], vec![1.0, 2.0]),
        Err(SparseError::DimensionMismatch(_))
    ));
}

#[test]
fn malformed_matrix_market_rejected() {
    for text in [
        "",                                                                // empty
        "garbage\n1 1 0\n",                                                // bad header
        "%%MatrixMarket matrix array real general\n2 2 0\n",               // not coordinate
        "%%MatrixMarket matrix coordinate real general\n2 2 5\n1 1 1.0\n", // count lie
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n", // 0-based
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 x 1.0\n", // junk field
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n9 1 1.0\n", // out of range
    ] {
        assert!(
            io::read_matrix_market(text).is_err(),
            "should reject: {text:?}"
        );
    }
}

#[test]
fn solver_dimension_mismatches_rejected() {
    let a = gen::poisson_2d(4, 4);
    let stop = StopCriterion::RelativeResidual(1e-8);
    assert!(matches!(
        cg(&a, &[1.0; 3], stop, 10),
        Err(SolverError::DimensionMismatch { .. })
    ));
    assert!(matches!(
        bicg(&a, &[1.0; 3], stop, 10),
        Err(SolverError::DimensionMismatch { .. })
    ));
    assert!(matches!(
        bicgstab(&a, &[1.0; 3], stop, 10),
        Err(SolverError::DimensionMismatch { .. })
    ));
    let d = a.to_dense();
    assert!(matches!(
        direct::solve_lu(&d, &[1.0; 3]),
        Err(SolverError::DimensionMismatch { .. })
    ));
}

#[test]
fn cg_on_indefinite_matrix_breaks_down_or_flags() {
    // diag(1, -1): p.Ap = 0 for b = (1, 1).
    let coo = CooMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (1, 1, -1.0)]).unwrap();
    let a = CsrMatrix::from_coo(&coo);
    match cg(&a, &[1.0, 1.0], StopCriterion::RelativeResidual(1e-10), 100) {
        Err(SolverError::Breakdown { .. }) => {}
        Ok((_, stats)) => assert!(!stats.converged || stats.residual_norm < 1e-8),
        Err(e) => panic!("unexpected error: {e}"),
    }
}

#[test]
fn singular_direct_solves_detected() {
    let singular = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
    assert!(matches!(
        direct::solve_lu(&singular, &[1.0, 1.0]),
        Err(SolverError::SingularMatrix { .. })
    ));
    assert!(matches!(
        direct::cholesky(&singular),
        Err(SolverError::SingularMatrix { .. })
    ));
    let nonsym = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]).unwrap();
    assert_eq!(
        direct::cholesky(&nonsym).unwrap_err(),
        SolverError::NotSymmetric
    );
}

#[test]
fn nonconvergence_is_reported_not_hidden() {
    let a = gen::poisson_2d(16, 16);
    let (_, b) = gen::rhs_for_known_solution(&a);
    let (_, stats) = cg(&a, &b, StopCriterion::RelativeResidual(1e-15), 2).unwrap();
    assert!(!stats.converged);
    assert_eq!(stats.iterations, 2);
    assert!(stats.residual_norm.is_finite());
}

#[test]
fn jacobi_on_zero_diagonal_rejected() {
    let coo = CooMatrix::from_triplets(2, 2, vec![(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
    let a = CsrMatrix::from_coo(&coo);
    assert!(matches!(
        JacobiPrec::new(&a),
        Err(SolverError::SingularMatrix { .. })
    ));
}

#[test]
fn misaligned_distributed_operands_panic_with_guidance() {
    let mut m = Machine::hypercube(4);
    let mut y = DistVector::zeros(ArrayDescriptor::block(16, 4));
    let x = DistVector::zeros(ArrayDescriptor::cyclic(16, 4));
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        y.axpy(&mut m, 1.0, &x);
    }))
    .unwrap_err();
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("ALIGN") || msg.contains("aligned"), "{msg}");
}

#[test]
fn forall_violations_do_not_corrupt_target() {
    use hpf::core::forall::forall_assign;
    let mut q = vec![1.0, 2.0, 3.0];
    // Out of bounds at k=5 — q must be untouched.
    let err = forall_assign(&mut q, 6, |k| k, |_| 9.0);
    assert!(err.is_err());
    assert_eq!(q, vec![1.0, 2.0, 3.0]);
}

#[test]
fn distributed_cg_rejects_wrong_rhs_length() {
    let a = gen::poisson_2d(4, 4);
    let mut m = Machine::hypercube(2);
    let op = RowwiseCsr::block(a, 2, DataArrayLayout::RowAligned);
    assert!(matches!(
        cg_distributed(
            &mut m,
            &op,
            &[1.0; 7],
            StopCriterion::RelativeResidual(1e-8),
            10
        ),
        Err(SolverError::DimensionMismatch { .. })
    ));
}

#[test]
fn cgs_divergence_surfaces_as_breakdown_or_unconverged() {
    // Strongly non-normal upper bidiagonal system.
    let n = 24;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 1.0).unwrap();
        if i + 1 < n {
            coo.push(i, i + 1, 3.0).unwrap();
        }
    }
    let a = CsrMatrix::from_coo(&coo);
    match cgs(
        &a,
        &vec![1.0; n],
        StopCriterion::RelativeResidual(1e-12),
        30,
    ) {
        Err(SolverError::Breakdown { .. }) => {}
        Ok((_, stats)) => {
            // If it claims convergence the residual must actually be small.
            if stats.converged {
                assert!(stats.residual_norm.is_finite());
            }
        }
        Err(e) => panic!("unexpected: {e}"),
    }
}
