//! End-to-end tests of the paper's proposed extensions: a full CG solve
//! whose matvec runs through the PRIVATE/MERGE region, the SPARSE_MATRIX
//! trio directive driving a balanced solve, and atom distributions
//! feeding descriptors.

use hpf::core::ext::{MergeOp, OnProcessor, PrivateRegion, SparseFormat, SparseMatrixDirective};
use hpf::prelude::*;
use hpf::sparse::gen;

/// A CG solve where every matvec is computed by the PRIVATE-region CSC
/// kernel (the paper's proposed parallel form of Scenario 2).
#[test]
fn cg_with_private_merge_matvec_converges() {
    let a = gen::random_spd(100, 4, 6);
    let csc = CscMatrix::from_csr(&a);
    let (x_true, b) = gen::rhs_for_known_solution(&a);
    let np = 8;
    let mut machine = Machine::hypercube(np);

    // Hand-rolled CG using the private-region matvec.
    let n = a.n_rows();
    let mut x = vec![0.0; n];
    let mut r = b.clone();
    let mut p = b.clone();
    let dot = |u: &[f64], v: &[f64]| u.iter().zip(v.iter()).map(|(a, b)| a * b).sum::<f64>();
    let b_norm = dot(&b, &b).sqrt();
    let mut rho = dot(&r, &r);
    let mut iters = 0;
    while rho.sqrt() > 1e-10 * b_norm && iters < 10 * n {
        let (q, _) =
            PrivateRegion::csc_matvec(&mut machine, csc.col_ptr(), csc.row_idx(), csc.values(), &p);
        let alpha = rho / dot(&p, &q);
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
        }
        let rho_new = dot(&r, &r);
        let beta = rho_new / rho;
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        iters += 1;
    }
    assert!(iters < 10 * n, "did not converge");
    for (u, v) in x.iter().zip(x_true.iter()) {
        assert!((u - v).abs() < 1e-6);
    }
    // The machine saw one private-merge allreduce per iteration.
    assert_eq!(machine.trace().with_label("private-merge").count(), iters);
}

#[test]
fn sparse_directive_balanced_solve_end_to_end() {
    let a = gen::power_law_spd(300, 60, 1.0, 13);
    let (_, b) = gen::rhs_for_known_solution(&a);
    let np = 8;

    // Declare the trio, balance it, and derive row cuts for the solver.
    let mut sm = SparseMatrixDirective::new(SparseFormat::Csr, a.row_ptr(), np);
    let before = sm.imbalance();
    let mut machine = Machine::hypercube(np);
    sm.redistribute_balanced(&mut machine);
    assert!(sm.imbalance() <= before);
    assert!(sm.trio_is_consistent());

    // Atom cuts -> row cuts (atoms are rows for CSR).
    let asg = sm.assignment();
    let mut row_cuts = vec![0usize; np + 1];
    row_cuts[np] = 300;
    {
        let mut atom = 0usize;
        for p in 0..np {
            row_cuts[p] = atom;
            while atom < 300 && asg.atom_owner[atom] == p {
                atom += 1;
            }
        }
    }
    let op = RowwiseCsr::with_row_cuts(a.clone(), np, row_cuts);
    let (x, stats) = cg_distributed(
        &mut machine,
        &op,
        &b,
        StopCriterion::RelativeResidual(1e-9),
        3000,
    )
    .unwrap();
    assert!(stats.converged);
    let ax = a.matvec(&x.to_global()).unwrap();
    let res: f64 = ax
        .iter()
        .zip(b.iter())
        .map(|(u, v)| (u - v) * (u - v))
        .sum::<f64>()
        .sqrt();
    let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(res / bn < 1e-8);
}

#[test]
fn atom_assignment_to_descriptor_to_vector_roundtrip() {
    use hpf::dist::atoms::{AtomAssignment, AtomSpec};
    let a = gen::random_spd(80, 3, 17);
    let atoms = AtomSpec::from_pointer_array(a.row_ptr());
    let asg = AtomAssignment::atom_block(&atoms, 4);
    let spec = asg.to_dist_spec(&atoms).unwrap();
    let desc = ArrayDescriptor::new(a.nnz(), 4, spec);
    // Distribute the value array under the atom-aligned layout and check
    // every atom's elements are co-located.
    let v = DistVector::from_global(desc.clone(), a.values());
    for atom in 0..atoms.n_atoms() {
        let owners: Vec<usize> = atoms.atom_range(atom).map(|e| desc.owner(e)).collect();
        assert!(owners.windows(2).all(|w| w[0] == w[1]), "atom {atom} split");
    }
    assert_eq!(v.to_global(), a.values());
}

#[test]
fn on_processor_table_mapping_matches_partitioner() {
    use hpf::dist::partition;
    let weights: Vec<usize> = (0..50).map(|i| (i * 7) % 13 + 1).collect();
    let cuts = partition::balanced_contiguous(&weights, 4).expect("np > 0");
    let asg = partition::assignment_from_cuts(&cuts, weights.len());
    let mapping = OnProcessor::from_table(asg.atom_owner.clone(), 4);
    for (atom, &owner) in asg.atom_owner.iter().enumerate() {
        assert_eq!(mapping.processor_of(atom), owner);
    }
    // Loads under the mapping equal the partitioner's loads.
    let mut loads = vec![0usize; 4];
    for (atom, &w) in weights.iter().enumerate() {
        loads[mapping.processor_of(atom)] += w;
    }
    assert_eq!(loads, partition::loads(&weights, &asg.atom_owner, 4));
}

#[test]
fn merge_discard_region_leaves_machine_comm_free() {
    let mut machine = Machine::hypercube(4);
    let region = PrivateRegion::new(32, OnProcessor::block(64, 4), MergeOp::Discard);
    let (out, stats) = region.run(&mut machine, 64, |_| 1, |j, q| q[j % 32] += 1.0);
    assert!(out.iter().all(|&v| v == 0.0));
    assert_eq!(stats.merge_time, 0.0);
    assert_eq!(machine.trace().total_comm_words(), 0);
}
